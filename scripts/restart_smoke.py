#!/usr/bin/env python
"""CI drill for crash-consistent warm state (PR 10 acceptance).

Starts a 3-shard replicated tier (`serve --shards 3 --replicate 2`)
and proves, from outside the process:

1. warm a working set across the ring and measure the warm-hit ratio;
2. rolling restart via the admin RPC while a concurrent client stream
   (``retries=0``) hammers the tier → **zero failed requests**, every
   shard reborn on its original port with a new pid;
3. the post-restart warm-hit ratio is **no worse** than before the
   restart (session/store state survived the roll);
4. SIGKILL one shard *and delete its store directory* → every
   previously-warm fingerprint is still served warm from a replica:
   **zero recomputes** (no ``origin: analyzed``) across the whole
   verification pass.

Run from the repo root: ``PYTHONPATH=src python scripts/restart_smoke.py``
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.lang.source import marker_line  # noqa: E402
from repro.server.client import ServerError, SliceClient  # noqa: E402
from repro.suite.loader import load_source  # noqa: E402

PROBE_INTERVAL_S = 0.3
WORKING_SET = 6
WARM_ORIGINS = ("memory", "disk", "replica", "incremental")


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def await_router_port(process: subprocess.Popen) -> int:
    deadline = time.monotonic() + 90
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line:
            fail(f"tier exited early (code {process.poll()})")
        try:
            event = json.loads(line.split("] ", 1)[-1])
        except json.JSONDecodeError:
            continue
        if event.get("event") == "listening" and event.get("role") == "router":
            return int(event["port"])
    fail("router did not report a port in time")


def warm_ratio(client: SliceClient, sources: list[str], seed: int) -> float:
    """One pass over the working set; fraction served warm."""
    warm = 0
    for source in sources:
        result = client.slice(source, seed)
        if result["origin"] in WARM_ORIGINS:
            warm += 1
    return warm / len(sources)


def main() -> int:
    cache_dir = tempfile.mkdtemp(prefix="repro-restart-")
    env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
    env.setdefault("PYTHONPATH", "src")
    tier = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--shards",
            "3",
            "--workers",
            "1",
            "--replicate",
            "2",
            "--repair-interval",
            "1",
            "--probe-interval",
            str(PROBE_INTERVAL_S),
        ],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        port = await_router_port(tier)
        threading.Thread(
            target=lambda: [None for _ in tier.stderr], daemon=True
        ).start()

        base = load_source("figure2")
        seed = marker_line(base, "tag", "seed")
        sources = [f"{base}\n// restart {i}\n" for i in range(WORKING_SET)]

        with SliceClient.connect("127.0.0.1", port) as client:
            health = client.health()
            if health["healthy_shards"] != 3:
                fail(f"expected 3 healthy shards, got {health}")

            # 1. Warm the working set, then measure the warm ratio.
            cold_lines = {}
            for source in sources:
                cold_lines[source] = client.slice(source, seed)["lines"]
            pre_ratio = warm_ratio(client, sources, seed)
            if pre_ratio < 1.0:
                fail(f"pre-restart warm ratio {pre_ratio:.2f} < 1.0")
            print(f"ok: working set warm (ratio {pre_ratio:.2f})")

            pids = {
                address: shard["pid"]
                for address, shard in client.health()["shards"].items()
            }

            # 2. Rolling restart under concurrent zero-retry traffic.
            stream_failures: list[str] = []
            stream_count = [0]
            stop = threading.Event()

            def hammer() -> None:
                with SliceClient.connect(
                    "127.0.0.1", port, retries=0
                ) as stream:
                    index = 0
                    while not stop.is_set():
                        source = sources[index % len(sources)]
                        try:
                            result = stream.slice(source, seed)
                        except ServerError as exc:
                            stream_failures.append(str(exc))
                            return
                        if result["lines"] != cold_lines[source]:
                            stream_failures.append("divergent slice")
                            return
                        stream_count[0] += 1
                        index += 1
                        time.sleep(0.02)

            worker = threading.Thread(target=hammer)
            worker.start()
            time.sleep(0.2)
            summary = client.request(
                "rolling_restart", retries=0, drain_timeout_s=30.0
            )
            stop.set()
            worker.join(timeout=30)
            if summary["failed"]:
                fail(f"rolling restart reported failures: {summary}")
            if len(summary["restarted"]) != 3:
                fail(f"expected 3 restarts, got {summary}")
            if stream_failures:
                fail(f"client stream failed during the roll: {stream_failures}")
            if stream_count[0] == 0:
                fail("concurrent stream made no requests during the roll")
            reborn = client.health()["shards"]
            for address, old_pid in pids.items():
                if reborn[address]["pid"] == old_pid:
                    fail(f"{address} kept pid {old_pid} across the restart")
            print(
                f"ok: rolling restart, {stream_count[0]} concurrent "
                "requests, zero failures, all pids changed"
            )

            # 3. Warm ratio must not regress across the roll.
            post_ratio = warm_ratio(client, sources, seed)
            if post_ratio < pre_ratio:
                fail(
                    f"warm ratio regressed: {pre_ratio:.2f} -> "
                    f"{post_ratio:.2f}"
                )
            print(f"ok: post-restart warm ratio {post_ratio:.2f}")

            # 4. Kill one shard AND delete its store: replicas must
            # serve every previously-warm key with zero recomputes.
            health = client.health()
            victim, shard = next(iter(health["shards"].items()))
            store_root = shard["last_probe"]["store"]["root"]
            if cache_dir not in store_root:
                fail(f"unexpected store root {store_root}")
            os.kill(shard["pid"], signal.SIGKILL)
            shutil.rmtree(store_root, ignore_errors=True)
            print(f"ok: killed {victim} and deleted {store_root}")

            recomputes = 0
            for source in sources:
                result = client.slice(source, seed)
                if result["origin"] == "analyzed":
                    recomputes += 1
                if result["lines"] != cold_lines[source]:
                    fail("slice diverged after store loss")
            if recomputes:
                fail(
                    f"{recomputes} recomputes after store loss — "
                    "replicas did not cover the working set"
                )
            print("ok: store loss covered by replicas, 0 recomputes")

            if client.shutdown() != {"stopping": True}:
                fail("shutdown did not acknowledge")
        if tier.wait(timeout=30) != 0:
            fail(f"tier exited {tier.returncode}")
        print("ok: tier drained and exited 0")
        print("PASS")
        return 0
    finally:
        if tier.poll() is None:
            tier.kill()
            tier.wait()
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
