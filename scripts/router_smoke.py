#!/usr/bin/env python
"""CI smoke drill for the sharded serving tier.

Starts a 2-shard local tier with one CLI command (`serve --shards 2`),
then proves the deployment story end to end, from outside the process:

1. cold slice → ``origin: analyzed``; same request again → warm hit;
2. SIGKILL one shard mid-stream → every request in the stream still
   succeeds (failover re-routes via the ring);
3. the pool respawns the dead shard on its original port: health
   heals back to 2/2 with ``respawns_total >= 1`` and a new pid, and
   the reborn shard serves traffic again;
4. ``shutdown`` drains the tier and the process exits 0.

Run from the repo root: ``PYTHONPATH=src python scripts/router_smoke.py``
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.server.client import SliceClient  # noqa: E402
from repro.suite.loader import load_source  # noqa: E402
from repro.lang.source import marker_line  # noqa: E402

PROBE_INTERVAL_S = 0.3


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def await_router_port(process: subprocess.Popen) -> int:
    deadline = time.monotonic() + 90
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line:
            fail(f"tier exited early (code {process.poll()})")
        try:
            event = json.loads(line.split("] ", 1)[-1])
        except json.JSONDecodeError:
            continue
        if event.get("event") == "listening" and event.get("role") == "router":
            return int(event["port"])
    fail("router did not report a port in time")


def main() -> int:
    cache_dir = tempfile.mkdtemp(prefix="repro-smoke-")
    env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
    env.setdefault("PYTHONPATH", "src")
    tier = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--workers",
            "1",
            "--probe-interval",
            str(PROBE_INTERVAL_S),
        ],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        port = await_router_port(tier)
        # Keep draining tier logs so no child blocks on a full pipe.
        import threading

        threading.Thread(
            target=lambda: [None for _ in tier.stderr], daemon=True
        ).start()

        base = load_source("figure2")
        seed = marker_line(base, "tag", "seed")
        with SliceClient.connect("127.0.0.1", port) as client:
            if client.ping().get("role") != "router":
                fail("frontend did not identify as a router")

            # 1. Cold then warm.
            cold = client.slice(base, seed)
            if cold["origin"] != "analyzed":
                fail(f"cold slice origin {cold['origin']!r}")
            warm = client.slice(base, seed)
            if warm["origin"] not in ("memory", "disk"):
                fail(f"warm slice origin {warm['origin']!r}")
            if warm["lines"] != cold["lines"]:
                fail("warm slice diverged from cold slice")
            print(f"ok: cold ({cold['origin']}) and warm ({warm['origin']})")

            health = client.health()
            if health["healthy_shards"] != 2:
                fail(f"expected 2 healthy shards, got {health}")
            victim, pid = next(
                (address, shard["pid"])
                for address, shard in health["shards"].items()
            )

            # 2. Kill one shard mid-stream: zero failed requests.
            sources = [f"{base}\n// smoke {i}\n" for i in range(4)]
            for index in range(12):
                if index == 4:
                    os.kill(pid, signal.SIGKILL)
                    print(f"ok: killed shard {victim} (pid {pid})")
                result = client.slice(sources[index % len(sources)], seed)
                if result["line_count"] <= 0:
                    fail(f"request {index} returned an empty slice")
            print("ok: 12/12 requests succeeded across the kill")

            # 3. The pool respawns the dead shard on its old port.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                health = client.health()
                reborn = health["shards"][victim]
                if (
                    health["healthy_shards"] == 2
                    and reborn["state"] == "healthy"
                    and reborn.get("respawns", 0) >= 1
                ):
                    break
                time.sleep(PROBE_INTERVAL_S / 2)
            else:
                fail(f"dead shard was never respawned: {health}")
            if health.get("respawns_total", 0) < 1:
                fail(f"router did not count the respawn: {health}")
            if reborn["pid"] == pid:
                fail(f"respawned shard kept the dead pid {pid}")
            if not health["healthy"]:
                fail(f"tier unhealthy after respawn: {health}")
            print(
                f"ok: shard {victim} respawned (pid {pid} -> "
                f"{reborn['pid']}), tier back to 2/2"
            )

            # The reborn shard owns its old ring slot, so the same
            # stream routes through it again without errors.
            for index in range(8):
                result = client.slice(sources[index % len(sources)], seed)
                if result["line_count"] <= 0:
                    fail(f"post-respawn request {index} empty")
            print("ok: 8/8 requests succeeded after respawn")

            # 4. Drain.
            if client.shutdown() != {"stopping": True}:
                fail("shutdown did not acknowledge")
        if tier.wait(timeout=30) != 0:
            fail(f"tier exited {tier.returncode}")
        print("ok: tier drained and exited 0")
        print("PASS")
        return 0
    finally:
        if tier.poll() is None:
            tier.kill()
            tier.wait()


if __name__ == "__main__":
    raise SystemExit(main())
