#!/usr/bin/env python
"""Seeded chaos soak for the self-healing artifact store.

The invariant under test is *zero wrong answers*: no matter what the
campaign does to the bytes on disk or to shard processes, every slice
answer must be identical to the pre-chaos truth computed on a clean
store.  Corruption may cost latency (quarantine + cold re-analysis),
never correctness.

Two phases, both time-boxed and driven by one seeded RNG:

* **Phase A — daemon path.**  A single ``serve --tcp`` daemon with a
  tiny memory LRU (so reads keep going back to disk) and a fast scrub
  timer.  Each round corrupts random ``.art`` files in the live store
  (bit flips, truncations, stale-metadata rewrites via the
  ``repro.server.faults`` helpers) and then replays every request.
  At the end the store counters must show the damage was noticed:
  ``quarantined > 0``.

* **Phase B — routed shard path.**  A ``serve --shards 2`` tier over
  the same corruptors, plus one SIGKILL of a random shard mid-stream.
  At the end the tier must be back to 2/2 healthy with
  ``respawns_total >= 1``.

* **Phase C — restart storm.**  A replicated 2-shard tier
  (``--replicate 2``) under the same corruptors, with seeded rolling
  restarts fired mid-stream between replays.  Every restart must
  complete with zero failed shards and the replay after it must still
  match the pre-chaos truth — the roll may cost latency, never an
  answer.

On any violation the script writes a failure corpus (the surviving
store bytes plus a JSON record of the divergence) under
``--corpus-dir`` and exits 1.

Run from the repo root::

    PYTHONPATH=src python scripts/chaos_soak.py --seed 1234 --budget 60
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.lang.source import marker_line  # noqa: E402
from repro.server.client import SliceClient  # noqa: E402
from repro.server.faults import (  # noqa: E402
    flip_artifact_bit,
    stale_artifact_meta,
    truncate_artifact,
)
from repro.suite.loader import load_source  # noqa: E402

PROBE_INTERVAL_S = 0.3
SOURCE_VARIANTS = 6

CORRUPTORS = (
    ("bit-flip", flip_artifact_bit),
    ("truncate", truncate_artifact),
    ("stale-meta", stale_artifact_meta),
)


class Violation(Exception):
    """A correctness invariant broke; carries the corpus record."""

    def __init__(self, message: str, record: dict) -> None:
        super().__init__(message)
        self.record = record


def spawn_tier(extra: list[str], cache_dir: str) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
    env.setdefault("PYTHONPATH", "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--tcp", "127.0.0.1:0"]
        + extra,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 90
    port = None
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line:
            raise SystemExit(
                f"FAIL: tier exited early (code {process.poll()})"
            )
        try:
            event = json.loads(line.split("] ", 1)[-1])
        except json.JSONDecodeError:
            continue
        if event.get("event") == "listening" and (
            "--shards" not in extra or event.get("role") == "router"
        ):
            port = int(event["port"])
            break
    if port is None:
        raise SystemExit("FAIL: tier did not report a port in time")
    # Keep draining logs so no child blocks on a full stderr pipe.
    threading.Thread(
        target=lambda: [None for _ in process.stderr], daemon=True
    ).start()
    return process, port


def artifact_files(cache_dir: str) -> list[Path]:
    """Every live artifact, across both store layouts: a single
    daemon's flat ``xx/*.art`` and the replicated tier's per-shard
    ``shard-N/xx/*.art`` roots.  Quarantined files are off-limits."""
    root = Path(cache_dir)
    candidates = list(root.glob("*/*.art")) + list(root.glob("*/*/*.art"))
    return sorted(
        path for path in candidates if "corrupt" not in path.parts
    )


def corrupt_some(rng: random.Random, cache_dir: str) -> list[str]:
    """Apply 1-3 random corruptors to random store files."""
    applied: list[str] = []
    files = artifact_files(cache_dir)
    if not files:
        return applied
    for _ in range(rng.randint(1, 3)):
        target = rng.choice(files)
        name, corruptor = CORRUPTORS[rng.randrange(len(CORRUPTORS))]
        try:
            corruptor(target)
        except (OSError, ValueError):
            continue  # already quarantined or too small to damage
        applied.append(f"{name}:{target.name[:12]}")
    return applied


def replay(
    client: SliceClient,
    sources: list[str],
    seed_line: int,
    truth: list[list[int]],
    context: dict,
) -> None:
    for index, source in enumerate(sources):
        try:
            result = client.slice(source, seed_line)
        except Exception as exc:  # noqa: BLE001 - any error is a violation
            raise Violation(
                f"request errored under chaos: {exc}",
                {**context, "source_index": index, "error": str(exc)},
            ) from exc
        if result["lines"] != truth[index]:
            raise Violation(
                "slice diverged from pre-chaos truth",
                {
                    **context,
                    "source_index": index,
                    "expected": truth[index],
                    "got": result["lines"],
                },
            )


def dump_corpus(corpus_dir: str, cache_dir: str, record: dict) -> None:
    corpus = Path(corpus_dir)
    corpus.mkdir(parents=True, exist_ok=True)
    (corpus / "violation.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    store_copy = corpus / "store"
    if store_copy.exists():
        shutil.rmtree(store_copy)
    shutil.copytree(cache_dir, store_copy)
    print(f"failure corpus written to {corpus}", file=sys.stderr)


def run_phase_a(
    rng: random.Random,
    sources: list[str],
    seed_line: int,
    deadline: float,
    corpus_dir: str,
) -> None:
    cache_dir = tempfile.mkdtemp(prefix="repro-chaos-a-")
    tier, port = spawn_tier(
        [
            "--workers",
            "1",
            "--memory-capacity",
            "2",
            "--scrub-interval",
            "0.5",
        ],
        cache_dir,
    )
    rounds = 0
    try:
        with SliceClient.connect("127.0.0.1", port) as client:
            truth = [
                client.slice(source, seed_line)["lines"]
                for source in sources
            ]
            while time.monotonic() < deadline:
                rounds += 1
                context = {
                    "phase": "A",
                    "round": rounds,
                    "corrupted": corrupt_some(rng, cache_dir),
                }
                try:
                    replay(client, sources, seed_line, truth, context)
                except Violation as violation:
                    dump_corpus(corpus_dir, cache_dir, violation.record)
                    raise SystemExit(f"FAIL: {violation}") from None
            health = client.health()
            store = health.get("store", {})
            if store.get("quarantined", 0) <= 0:
                dump_corpus(
                    corpus_dir,
                    cache_dir,
                    {"phase": "A", "rounds": rounds, "store": store},
                )
                raise SystemExit(
                    f"FAIL: chaos never tripped quarantine: {store}"
                )
            client.shutdown()
        tier.wait(timeout=30)
        print(
            f"ok: phase A, {rounds} rounds, zero wrong answers, "
            f"store {store}"
        )
    finally:
        if tier.poll() is None:
            tier.kill()
            tier.wait()
        shutil.rmtree(cache_dir, ignore_errors=True)


def run_phase_b(
    rng: random.Random,
    sources: list[str],
    seed_line: int,
    deadline: float,
    corpus_dir: str,
) -> None:
    cache_dir = tempfile.mkdtemp(prefix="repro-chaos-b-")
    tier, port = spawn_tier(
        [
            "--shards",
            "2",
            "--workers",
            "1",
            "--memory-capacity",
            "2",
            "--probe-interval",
            str(PROBE_INTERVAL_S),
        ],
        cache_dir,
    )
    rounds = 0
    killed = False
    try:
        with SliceClient.connect("127.0.0.1", port) as client:
            truth = [
                client.slice(source, seed_line)["lines"]
                for source in sources
            ]
            while time.monotonic() < deadline:
                rounds += 1
                context = {
                    "phase": "B",
                    "round": rounds,
                    "corrupted": corrupt_some(rng, cache_dir),
                }
                if not killed and rounds >= 2:
                    health = client.health()
                    victim, shard = rng.choice(
                        sorted(health["shards"].items())
                    )
                    os.kill(shard["pid"], signal.SIGKILL)
                    killed = True
                    context["killed"] = victim
                    print(f"ok: killed shard {victim} (pid {shard['pid']})")
                try:
                    replay(client, sources, seed_line, truth, context)
                except Violation as violation:
                    dump_corpus(corpus_dir, cache_dir, violation.record)
                    raise SystemExit(f"FAIL: {violation}") from None
            heal_deadline = time.monotonic() + 30
            while time.monotonic() < heal_deadline:
                health = client.health()
                if (
                    health["healthy_shards"] == 2
                    and health.get("respawns_total", 0) >= 1
                ):
                    break
                time.sleep(PROBE_INTERVAL_S / 2)
            else:
                dump_corpus(
                    corpus_dir,
                    cache_dir,
                    {"phase": "B", "rounds": rounds, "health": health},
                )
                raise SystemExit(
                    f"FAIL: tier never healed to 2/2 after kill: {health}"
                )
            client.shutdown()
        tier.wait(timeout=30)
        print(
            f"ok: phase B, {rounds} rounds, zero wrong answers, "
            f"respawns_total {health['respawns_total']}, 2/2 healthy"
        )
    finally:
        if tier.poll() is None:
            tier.kill()
            tier.wait()
        shutil.rmtree(cache_dir, ignore_errors=True)


def run_phase_c(
    rng: random.Random,
    sources: list[str],
    seed_line: int,
    deadline: float,
    corpus_dir: str,
) -> None:
    cache_dir = tempfile.mkdtemp(prefix="repro-chaos-c-")
    tier, port = spawn_tier(
        [
            "--shards",
            "2",
            "--workers",
            "1",
            "--memory-capacity",
            "2",
            "--replicate",
            "2",
            "--repair-interval",
            "1",
            "--probe-interval",
            str(PROBE_INTERVAL_S),
        ],
        cache_dir,
    )
    rounds = 0
    restarts = 0
    try:
        with SliceClient.connect("127.0.0.1", port) as client:
            truth = [
                client.slice(source, seed_line)["lines"]
                for source in sources
            ]
            while time.monotonic() < deadline:
                rounds += 1
                context = {
                    "phase": "C",
                    "round": rounds,
                    "corrupted": corrupt_some(rng, cache_dir),
                }
                # Seeded storm: some rounds roll the whole tier before
                # the replay, so warm state must survive the respawns.
                if restarts == 0 or rng.random() < 0.4:
                    summary = client.request(
                        "rolling_restart", retries=0, drain_timeout_s=30.0
                    )
                    if summary["failed"]:
                        dump_corpus(
                            corpus_dir,
                            cache_dir,
                            {**context, "restart": summary},
                        )
                        raise SystemExit(
                            f"FAIL: rolling restart lost a shard: {summary}"
                        )
                    restarts += len(summary["restarted"])
                    context["restarted"] = len(summary["restarted"])
                try:
                    replay(client, sources, seed_line, truth, context)
                except Violation as violation:
                    dump_corpus(corpus_dir, cache_dir, violation.record)
                    raise SystemExit(f"FAIL: {violation}") from None
            health = client.health()
            if health["healthy_shards"] != 2:
                dump_corpus(
                    corpus_dir,
                    cache_dir,
                    {"phase": "C", "rounds": rounds, "health": health},
                )
                raise SystemExit(
                    f"FAIL: tier not 2/2 after the storm: {health}"
                )
            client.shutdown()
        tier.wait(timeout=30)
        print(
            f"ok: phase C, {rounds} rounds, {restarts} shard restarts, "
            "zero wrong answers, 2/2 healthy"
        )
    finally:
        if tier.poll() is None:
            tier.kill()
            tier.wait()
        shutil.rmtree(cache_dir, ignore_errors=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument(
        "--budget",
        type=float,
        default=60.0,
        help="total campaign time box in seconds (default: 60)",
    )
    parser.add_argument(
        "--corpus-dir",
        default="chaos-corpus",
        help="where the failure corpus lands on violation",
    )
    args = parser.parse_args()

    rng = random.Random(args.seed)
    base = load_source("figure2")
    seed_line = marker_line(base, "tag", "seed")
    sources = [f"{base}\n// soak {i}\n" for i in range(SOURCE_VARIANTS)]

    start = time.monotonic()
    run_phase_a(
        rng,
        sources,
        seed_line,
        start + args.budget * 0.4,
        args.corpus_dir,
    )
    run_phase_b(
        rng,
        sources,
        seed_line,
        time.monotonic() + args.budget * 0.3,
        args.corpus_dir,
    )
    run_phase_c(
        rng,
        sources,
        seed_line,
        time.monotonic() + args.budget * 0.3,
        args.corpus_dir,
    )
    print(f"PASS (seed {args.seed}, {time.monotonic() - start:.0f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
