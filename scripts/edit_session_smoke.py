"""CI smoke: edit-session differential for the incremental engine.

Replays deterministic warm-edit sessions (one seeded
``random.Random`` per suite program) through
:func:`repro.fuzz.oracle.check_edit_session`, which demands that every
incrementally served step is **byte-identical** to a cold analysis and
that invalid edits decline instead of fabricating.  Time-boxed and
seed-pinned, so a failure here reproduces locally::

    PYTHONPATH=src python scripts/edit_session_smoke.py --seed 0

Exits non-zero on any finding; prints one line per session.
"""

from __future__ import annotations

import argparse
import random
import sys
import time


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--steps", type=int, default=6, help="edits per session"
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=120.0,
        help="wall-clock box in seconds; remaining programs are skipped",
    )
    parser.add_argument(
        "--input-budget",
        type=float,
        default=10.0,
        help="per-analysis budget in seconds",
    )
    args = parser.parse_args(argv)

    from repro.fuzz.oracle import check_edit_session
    from repro.suite.loader import load_source, program_names

    start = time.monotonic()
    findings = 0
    sessions = 0
    verified = 0
    for index, name in enumerate(program_names()):
        if time.monotonic() - start > args.budget:
            print(f"budget reached; skipped remaining programs after {name}")
            break
        rng = random.Random(args.seed * 1_000_003 + index)
        result = check_edit_session(
            load_source(name),
            rng,
            steps=args.steps,
            budget_s=args.input_budget,
        )
        sessions += 1
        verified += result.steps_verified
        status = result.verdict
        detail = (
            f"checked={result.steps_checked} verified={result.steps_verified}"
        )
        if result.failed:
            findings += 1
            print(f"FAIL {name}: {result.error_type}: {result.message}")
            if result.failing_source:
                print("---- failing source ----")
                print(result.failing_source)
                print("------------------------")
        else:
            print(f"ok   {name}: {status} {detail}")
    elapsed = time.monotonic() - start
    print(
        f"\n{sessions} sessions, {verified} steps byte-verified, "
        f"{findings} findings in {elapsed:.1f}s (seed {args.seed})"
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
