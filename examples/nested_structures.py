"""The paper's motivating scenario: deeply nested data structures.

The introduction's worst case: "a value stored in a deeply nested data
structure, e.g., a hash table which holds trees with lists at each tree
node. A backwards slice for a read from one such list must include the
statements that construct and manipulate all levels of this complex
data structure."

We build exactly that — HashMap(region) → TreeMap(user) → LinkedList of
orders — read one order back out, and compare the slices.

Run:  python examples/nested_structures.py
"""

from __future__ import annotations

from repro import analyze
from repro.lang.source import marker_line

PROGRAM = """\
class Order {
  String item;
  int quantity;

  Order(String i, int q) {
    item = i;                                        //@tag:orderitem
    quantity = q;
  }
}

class Main {
  static void main(String[] args) {
    // hash table (region) -> tree (user) -> list of orders
    HashMap regions = new HashMap();

    TreeMap west = new TreeMap();
    regions.put("west", west);
    TreeMap east = new TreeMap();
    regions.put("east", east);

    west.add("alice", new Order("anvil", 2));        //@tag:anvil
    west.add("alice", new Order("rope", 10));
    west.add("bob", new Order("tnt", 1));
    east.add("carol", new Order("magnet", 3));

    TreeMap region = (TreeMap) regions.get("west");
    Order first = (Order) region.getFirst("alice");  //@tag:retrieve
    print("first order: " + first.item);             //@tag:seed
  }
}
"""


def main() -> None:
    analyzed = analyze(PROGRAM, "nested.mj")
    result = analyzed.run([])
    print("program output:", result.output)

    seed = marker_line(PROGRAM, "tag", "seed")
    thin = analyzed.thin_slicer.slice_from_line(seed)
    trad = analyzed.traditional_slicer.slice_from_line(seed)

    print(f"\nthin slice: {len(thin.lines)} lines; "
          f"traditional: {len(trad.lines)} lines "
          f"({len(trad.lines) / len(thin.lines):.1f}x)")

    print("\n=== the thin slice (producers only) ===")
    print(thin.source_view())

    item_line = marker_line(PROGRAM, "tag", "orderitem")
    anvil_line = marker_line(PROGRAM, "tag", "anvil")
    print(
        f"\nitem field write (line {item_line}) in thin slice: "
        f"{item_line in thin.lines}"
    )
    print(
        f"the anvil insertion (line {anvil_line}) in thin slice: "
        f"{anvil_line in thin.lines}"
    )
    print(
        "three levels of container plumbing (bucket arrays, tree links,\n"
        "list nodes) appear only in the traditional slice — the exact\n"
        "pollution the paper's introduction describes."
    )


if __name__ == "__main__":
    main()
