"""Suite-wide comparison: thin vs traditional inspection cost.

Regenerates a compact view of Tables 2 and 3 (see benchmarks/ for the
full harness) and prints the aggregate ratios the paper headlines.

Run:  python examples/compare_slicers.py
"""

from __future__ import annotations

from repro.suite.bugs import bugs_for_table2
from repro.suite.casts import all_casts
from repro.suite.harness import measure_bug, measure_cast


def main() -> None:
    print(f"{'task':16s} {'thin':>6s} {'trad':>6s} {'ratio':>7s}")
    print("-" * 38)

    thin_total = trad_total = 0
    for bug in bugs_for_table2():
        m = measure_bug(bug)
        thin_total += m.thin.inspected
        trad_total += m.traditional.inspected
        print(
            f"{m.bug_id:16s} {m.thin.inspected:6d} "
            f"{m.traditional.inspected:6d} {m.ratio:7.2f}"
        )
    print(
        f"{'debugging total':16s} {thin_total:6d} {trad_total:6d} "
        f"{trad_total / thin_total:7.2f}   (paper: 3.3x)"
    )

    print()
    thin_total = trad_total = 0
    for cast in all_casts():
        m = measure_cast(cast)
        thin_total += m.thin.inspected
        trad_total += m.traditional.inspected
        print(
            f"{m.cast_id:16s} {m.thin.inspected:6d} "
            f"{m.traditional.inspected:6d} {m.ratio:7.2f}"
        )
    print(
        f"{'tough-cast total':16s} {thin_total:6d} {trad_total:6d} "
        f"{trad_total / thin_total:7.2f}   (paper: 9.4x)"
    )


if __name__ == "__main__":
    main()
