"""End-to-end SIR-style debugging session on an injected bug.

Reproduces the paper's §6.2 protocol on minixml-2 (a nanoxml-style bug):
inject the bug, run the test input to expose the failure, slice from the
failure point, and walk the BFS inspection order until the buggy
statement appears — comparing how far a thin-slice user and a
traditional-slice user must read.

Run:  python examples/debug_injected_bug.py
"""

from __future__ import annotations

from repro.analysis.pointsto import solve_points_to
from repro.frontend import compile_source
from repro.interp.interpreter import run_program
from repro.sdg.sdg import build_sdg
from repro.slicing.thin import ThinSlicer
from repro.slicing.traditional import TraditionalSlicer
from repro.suite.bugs import BUGS, resolve_task
from repro.suite.loader import load_source


def main() -> None:
    bug = BUGS["minixml-2"]
    print(f"bug: {bug.bug_id} — {bug.description}")
    print(f"injected at tag '{bug.marker}': {bug.buggy_code}")

    fixed_src = load_source(bug.program)
    buggy_src = bug.apply()

    print("\n=== expose the failure (run the test input) ===")
    for label, src in (("fixed", fixed_src), ("buggy", buggy_src)):
        compiled = compile_source(src, bug.program, include_stdlib=True)
        result = run_program(compiled.ast, compiled.table, list(bug.args))
        id_line = next((l for l in result.output if l.startswith("id:")), "?")
        print(f"  {label:6s} -> {id_line}")

    print("\n=== analyze the buggy program ===")
    compiled = compile_source(buggy_src, bug.program, include_stdlib=True)
    pts = solve_points_to(compiled.ir)
    sdg = build_sdg(compiled, pts)
    task = resolve_task(bug, compiled.source.text)
    print(f"  seed (failure point): line {task.seed}")
    print(f"  buggy statement:      line {sorted(task.desired)}")

    lines = compiled.source.lines()
    for name, slicer in (
        ("thin", ThinSlicer(compiled, sdg)),
        ("traditional", TraditionalSlicer(compiled, sdg)),
    ):
        order = slicer.slice_from_line(task.seed).traversal.lines()
        print(f"\n=== {name} slicer: BFS inspection order ===")
        for rank, line in enumerate(order, 1):
            marker = " <-- the bug!" if line in task.desired else ""
            if rank <= 8 or marker:
                print(f"  {rank:3d}. line {line:4d}  "
                      f"{lines[line - 1].strip()[:58]}{marker}")
            if marker:
                print(f"  ({name}: found after inspecting {rank} lines)")
                break


if __name__ == "__main__":
    main()
