"""Quickstart: thin-slice the paper's Figure 1 program.

The program reads full names, stores first names in a Vector, stashes
the Vector in a SessionState, and later prints the names.  A bug makes
it print "Joh" instead of "John".  We run the program to see the
failure, then compute a thin slice from the failing print and compare it
with the traditional slice.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import analyze, thin_slice, traditional_slice
from repro.lang.source import marker_line
from repro.suite.loader import load_source


def main() -> None:
    source = load_source("figure1")
    analyzed = analyze(source, "figure1.mj")

    print("=== running the program ===")
    result = analyzed.run(["John Doe", "Jane Roe"])
    for line in result.output:
        print(f"  {line}")
    print('  (bug: should print "John", prints "Joh")')

    seed = marker_line(source, "tag", "seed")
    print(f"\n=== thin slice from line {seed} (the failing print) ===")
    thin = thin_slice(analyzed, seed)
    print(thin.source_view())

    trad = traditional_slice(analyzed, seed)
    print(
        f"\nthin slice: {len(thin.lines)} lines; "
        f"traditional slice: {len(trad.lines)} lines"
    )
    buggy = marker_line(source, "tag", "buggy")
    print(f"the buggy statement (line {buggy}) is in the thin slice: "
          f"{buggy in thin.lines}")
    plumbing = marker_line(source, "tag", "setNames")
    print(
        f"the SessionState plumbing (line {plumbing}) is excluded from the "
        f"thin slice: {plumbing not in thin.lines}"
    )


if __name__ == "__main__":
    main()
