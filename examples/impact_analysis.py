"""Impact analysis with forward thin slicing and dependence navigation.

Question: if I change the buggy substring in Figure 1, what is
affected?  A forward thin slice answers with the statements the value
reaches; the navigator then explains *how* it gets to the final print.

Run:  python examples/impact_analysis.py
"""

from __future__ import annotations

from repro import analyze
from repro.lang.source import marker_line
from repro.slicing.chopping import thin_chop
from repro.slicing.forward import forward_thin_slicer
from repro.suite.loader import load_source
from repro.tooling.navigator import Navigator


def main() -> None:
    source = load_source("figure1")
    analyzed = analyze(source, "figure1.mj")
    lines = analyzed.compiled.source.lines()

    buggy = marker_line(source, "tag", "buggy")
    seed = marker_line(source, "tag", "seed")
    print(f"changing line {buggy}: {lines[buggy - 1].strip()[:60]}")

    print("\n=== forward thin slice: everything this value reaches ===")
    forward = forward_thin_slicer(analyzed.compiled, analyzed.sdg)
    impact = forward.slice_from_line(buggy)
    for line in sorted(impact.lines):
        print(f"  {line:4d}  {lines[line - 1].strip()[:64]}")

    print("\n=== how does it reach the print? (shortest producer path) ===")
    navigator = Navigator(analyzed.compiled, analyzed.sdg)
    path = navigator.why(buggy, seed)
    assert path is not None
    print(navigator.render_path(path))

    print("\n=== the thin chop (full corridor, all paths) ===")
    chop = thin_chop(analyzed.compiled, analyzed.sdg, buggy, seed)
    print(f"  {len(chop.lines)} lines: {sorted(chop.lines)}")

    print("\n=== one-hop browsing from the failing print ===")
    for step in navigator.producers_of(seed):
        kinds = ",".join(sorted(k.value for k in step.kinds))
        print(f"  <- {step.line:4d} [{kinds}] {step.text[:52]}")
    for step in navigator.explainers_of(seed):
        kinds = ",".join(sorted(k.value for k in step.kinds))
        print(f"  (explainer) {step.line:4d} [{kinds}] {step.text[:52]}")


if __name__ == "__main__":
    main()
