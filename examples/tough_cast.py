"""Understanding a tough cast (§6.3) on the Figure 5 program.

The cast `(AddNode) n` is safe because only AddNode constructors write
op code 1 — a global invariant that points-to analysis cannot verify.
The paper's workflow: follow a control dependence from the cast to the
guard, then thin-slice the tag read; the slice lands on the constructor
writes that establish the invariant.

Run:  python examples/tough_cast.py
"""

from __future__ import annotations

from repro import analyze, thin_slice
from repro.ir import instructions as ins
from repro.lang.source import marker_line
from repro.lang.types import ClassType
from repro.slicing.expansion import control_explainers
from repro.suite.loader import load_source


def main() -> None:
    source = load_source("figure5")
    analyzed = analyze(source, "figure5.mj", include_stdlib=False)
    lines = analyzed.compiled.source.lines()

    cast_line = marker_line(source, "tag", "cast")
    print(f"the tough cast, line {cast_line}: {lines[cast_line - 1].strip()}")

    # Is it verified by points-to alone?  (If yes it would not be tough.)
    cast = next(
        i
        for i in analyzed.compiled.instructions_at_line(cast_line)
        if isinstance(i, ins.Cast)
    )
    fn = analyzed.compiled.ir.function_of(cast).name
    objs = analyzed.pts.points_to(fn, cast.src)
    target = cast.target_type
    assert isinstance(target, ClassType)
    verified = all(
        o.kind == "object"
        and analyzed.compiled.table.is_subclass(o.class_name, target.name)
        for o in objs
    )
    print(f"points-to sees {sorted(o.class_name for o in objs)} at the cast")
    print(f"verified by pointer analysis alone: {verified} (tough: {not verified})")

    print("\n=== step 1: follow the control dependence from the cast ===")
    for cond in control_explainers(analyzed.sdg, cast).conditionals:
        print(f"  guard at line {cond.position.line}: "
              f"{lines[cond.position.line - 1].strip()}")

    opread_line = marker_line(source, "tag", "opread")
    print(f"\n=== step 2: thin slice from the op read (line {opread_line}) ===")
    result = thin_slice(analyzed, opread_line)
    print(result.source_view())
    print(
        "\nEvery constructor's op write is in the slice — inspecting them\n"
        "shows op==1 is written only by AddNode, so the cast cannot fail."
    )


if __name__ == "__main__":
    main()
