"""Dynamic thin slicing (§7 extension): exact dependences from a trace.

Runs Figure 1 under the tracing interpreter, which tags every runtime
value with the event that produced it.  The dynamic thin slice from the
wrong output is execution-exact: no points-to approximation, and only
the statements that actually produced this value on this run.

Run:  python examples/dynamic_slicing.py
"""

from __future__ import annotations

from repro import analyze
from repro.dynamic import trace_and_slice
from repro.lang.source import marker_line
from repro.slicing.thin import ThinSlicer
from repro.suite.loader import load_source


def main() -> None:
    source = load_source("figure1")

    print("=== trace the failing run ===")
    run = trace_and_slice(source, ["John Doe"], "figure1.mj",
                          seed_output_index=0)
    print(f"  output: {run.trace.output[0]!r}   (should end with 'John')")
    print(f"  events recorded: {run.trace.events_created}")

    lines = (source + "\n").splitlines()
    print("\n=== dynamic thin slice of the printed value ===")
    for line in sorted(run.thin.lines):
        if 1 <= line <= len(lines):
            print(f"  {line:4d}  {lines[line - 1].strip()[:64]}")

    print(
        f"\n  dynamic thin: {len(run.thin.lines)} lines, "
        f"dynamic traditional: {len(run.traditional.lines)} lines"
    )

    print("\n=== compare with the static thin slice ===")
    analyzed = analyze(source, "figure1.mj")
    seed = marker_line(source, "tag", "seed")
    static_lines = ThinSlicer(analyzed.compiled, analyzed.sdg).slice_from_line(
        seed
    ).lines
    print(f"  static thin slice: {len(static_lines)} lines")
    only_static = sorted(static_lines - run.thin.lines)
    print(
        "  statements in the static but not the dynamic slice "
        f"(may-flow that did not happen on this run): {only_static}"
    )
    buggy = marker_line(source, "tag", "buggy")
    print(f"  both contain the buggy substring (line {buggy}): "
          f"{buggy in static_lines and buggy in run.thin.lines}")


if __name__ == "__main__":
    main()
