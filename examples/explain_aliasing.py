"""Hierarchical expansion (§4.1): explaining aliasing on Figure 4.

A File is stored in a Vector, fetched through one alias and closed, then
fetched through another alias and read — throwing ClosedException.  The
thin slice alone shows *that* `open` became false but not *why* the two
accesses touch the same File; the aliasing expansion answers that with
two more (filtered) thin slices.

Run:  python examples/explain_aliasing.py
"""

from __future__ import annotations

from repro import analyze, thin_slice
from repro.ir import instructions as ins
from repro.lang.source import marker_line
from repro.slicing.expansion import control_explainers, explain_aliasing
from repro.suite.loader import load_source


def main() -> None:
    source = load_source("figure4")
    analyzed = analyze(source, "figure4.mj")

    print("=== running the program ===")
    result = analyzed.run([])
    print(f"  uncaught: {result.error}")

    seed = marker_line(source, "tag", "seed")
    print(f"\n=== step 1: thin slice from the failing condition (line {seed}) ===")
    thin = thin_slice(analyzed, seed)
    print(thin.source_view())
    print(
        "\nThe slice shows open=true (ctor), open=false (close()), and the\n"
        "read — but not WHY close() and isOpen() hit the same File."
    )

    close_line = marker_line(source, "tag", "close")
    isopen_line = marker_line(source, "tag", "isopen")
    store = next(
        i
        for i in analyzed.compiled.instructions_at_line(close_line)
        if isinstance(i, ins.FieldStore)
    )
    load = next(
        i
        for i in analyzed.compiled.instructions_at_line(isopen_line)
        if isinstance(i, ins.FieldLoad)
    )

    print("\n=== step 2: explain the aliasing (two more thin slices) ===")
    explanation = explain_aliasing(
        analyzed.compiled, analyzed.sdg, analyzed.pts, load, store
    )
    print(f"common object(s): {[str(o) for o in explanation.common_objects]}")
    lines = analyzed.compiled.source.lines()
    for line in sorted(explanation.lines()):
        if 1 <= line <= len(lines):
            print(f"  {line:4d}  {lines[line - 1].strip()}")
    print(
        "\nThe expansion reveals files.add(f) / files.get(0) / g.close() —\n"
        "the close happens on an alias fetched from the same Vector slot.\n"
        "(The Vector allocation itself is filtered out: it never carries\n"
        "the File object, matching the paper's Figure 4 discussion.)"
    )

    throw_line = marker_line(source, "tag", "throw")
    throw = next(
        i
        for i in analyzed.compiled.instructions_at_line(throw_line)
        if isinstance(i, ins.Throw)
    )
    print("\n=== step 3: control explainer for the throw (§4.2) ===")
    for cond in control_explainers(analyzed.sdg, throw).conditionals:
        line = cond.position.line
        print(f"  governed by line {line}: {lines[line - 1].strip()}")


if __name__ == "__main__":
    main()
