"""Cooperative cancellation budgets for long-running analyses.

A :class:`Budget` is a per-request token carrying a wall-clock deadline,
an optional step budget, and an explicit cancellation flag.  The
analysis hot loops (the points-to worklist, SDG assembly, tabulation)
call :meth:`Budget.poll` at their loop heads; when the deadline passes,
the step budget is exhausted, or another thread calls
:meth:`Budget.cancel`, the next poll raises :class:`BudgetExceeded` and
the whole pipeline unwinds within milliseconds — freeing the worker
thread instead of letting an abandoned request grind on forever (the
failure mode the slice daemon had before this existed).

Thin slicing exists because running a full analysis to completion is
not always affordable; a budget makes that explicit at the serving
layer: bound the work, cancel what nobody is waiting for, and shed the
rest.

The token is deliberately cheap.  ``poll`` checks the cancellation flag
on every call (a plain attribute read, so cross-thread cancellation is
observed immediately) but consults the clock only every
``CHECK_INTERVAL`` steps; ``check`` always does the full test and is
what stage boundaries and sleep loops use.
"""

from __future__ import annotations

import time

#: ``poll`` consults the wall clock every this-many steps.
CHECK_INTERVAL = 64

_MASK = CHECK_INTERVAL - 1


class BudgetExceeded(Exception):
    """An analysis outran its budget (deadline, steps, or cancellation).

    ``reason`` is a short machine-checkable tag: ``"deadline"``,
    ``"steps"``, or whatever :meth:`Budget.cancel` was given (the
    daemon uses ``"cancelled"`` for client disconnects).
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        super().__init__(detail or reason)


class Budget:
    """Deadline + step budget + cancellation flag for one request.

    A budget with neither limit never expires on its own but can still
    be cancelled — that is what frees a worker whose client vanished.
    """

    __slots__ = ("deadline", "max_steps", "steps", "cancelled", "cancel_reason")

    def __init__(
        self,
        deadline: float | None = None,
        max_steps: int | None = None,
    ) -> None:
        #: Absolute :func:`time.monotonic` instant, or None (no deadline).
        self.deadline = deadline
        self.max_steps = max_steps
        self.steps = 0
        self.cancelled = False
        self.cancel_reason = ""

    @classmethod
    def from_timeout(
        cls, seconds: float | None, max_steps: int | None = None
    ) -> "Budget":
        """A budget expiring ``seconds`` from now (None = no deadline)."""
        deadline = None if seconds is None else time.monotonic() + seconds
        return cls(deadline=deadline, max_steps=max_steps)

    # ------------------------------------------------------------------

    def cancel(self, reason: str = "cancelled") -> None:
        """Flag the budget; the owning worker aborts at its next poll.

        Safe to call from any thread (a plain attribute write)."""
        self.cancel_reason = reason
        self.cancelled = True

    def remaining(self) -> float | None:
        """Seconds until the deadline, or None when there is none."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def expired(self) -> bool:
        """Non-raising full check (deadline / steps / cancellation)."""
        if self.cancelled:
            return True
        if self.max_steps is not None and self.steps > self.max_steps:
            return True
        return self.deadline is not None and time.monotonic() > self.deadline

    # ------------------------------------------------------------------

    def check(self) -> None:
        """Full check; raises :class:`BudgetExceeded` when over."""
        if self.cancelled:
            raise BudgetExceeded(self.cancel_reason or "cancelled")
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExceeded(
                "steps", f"step budget of {self.max_steps} exhausted"
            )
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise BudgetExceeded("deadline", "wall-clock deadline exceeded")

    def poll(self) -> None:
        """Hot-loop check: cancellation every call, the clock every
        :data:`CHECK_INTERVAL` steps."""
        if self.cancelled:
            raise BudgetExceeded(self.cancel_reason or "cancelled")
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExceeded(
                "steps", f"step budget of {self.max_steps} exhausted"
            )
        if self.steps & _MASK:
            return
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise BudgetExceeded("deadline", "wall-clock deadline exceeded")

    def sleep(self, seconds: float, slice_s: float = 0.01) -> None:
        """Sleep cooperatively: wake every ``slice_s`` to re-check, so a
        cancelled or expired budget aborts the sleep within ~10 ms.
        (Used by the fault-injection harness's slow-analysis fault.)"""
        end = time.monotonic() + seconds
        while True:
            self.check()
            left = end - time.monotonic()
            if left <= 0:
                return
            time.sleep(min(slice_s, left))
