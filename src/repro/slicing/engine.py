"""Shared slicing machinery: BFS traversal over the SDG and results.

Both the thin and the traditional context-insensitive slicers are plain
backward reachability (§5.2) differing only in which edge kinds they
follow; the BFS order doubles as the simulated user-inspection order of
the evaluation methodology (§6.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.frontend import CompiledProgram
from repro.ir import instructions as ins
from repro.sdg.nodes import EdgeKind, ParamNode, SDGNode, is_statement, node_position
from repro.sdg.sdg import SDG


def counts_as_inspected(node: SDGNode) -> bool:
    """Nodes a user is charged for inspecting: statements plus the
    actual-in/out bindings sitting on call lines."""
    if is_statement(node):
        return True
    return isinstance(node, ParamNode) and node.role in ("actual_in", "actual_out")


_counts_as_inspected = counts_as_inspected  # backwards-compatible alias


@dataclass
class Traversal:
    """A backward BFS over dependence edges, in visit order."""

    order: list[SDGNode] = field(default_factory=list)
    distance: dict[SDGNode, int] = field(default_factory=dict)

    def statements(self) -> list[ins.Instruction]:
        return [n for n in self.order if is_statement(n)]

    def lines(self) -> list[int]:
        """Distinct source lines inspected, in first-seen order.

        Counts instruction nodes plus actual-in/out parameter nodes:
        when a relevant value passes through a call's argument list, the
        call statement itself is part of the slice (the paper's Figure 1
        includes ``names.add(firstName)`` for exactly this reason).
        Formal-in/out nodes are positionless plumbing and are skipped.
        """
        seen: set[int] = set()
        result: list[int] = []
        for node in self.order:
            if not _counts_as_inspected(node):
                continue
            line = node_position(node).line
            if line > 0 and line not in seen:
                seen.add(line)
                result.append(line)
        return result


def backward_bfs(
    sdg: SDG, seeds: list[SDGNode], kinds: frozenset[EdgeKind]
) -> Traversal:
    """Breadth-first backward reachability following only ``kinds``."""
    traversal = Traversal()
    queue: deque[SDGNode] = deque()
    for seed in seeds:
        if seed not in traversal.distance:
            traversal.distance[seed] = 0
            traversal.order.append(seed)
            queue.append(seed)
    while queue:
        node = queue.popleft()
        depth = traversal.distance[node]
        for dep, kind in sdg.dependencies(node):
            if kind not in kinds or dep in traversal.distance:
                continue
            traversal.distance[dep] = depth + 1
            traversal.order.append(dep)
            queue.append(dep)
    return traversal


@dataclass
class SliceResult:
    """A computed slice, with source-level views."""

    seeds: list[SDGNode]
    traversal: Traversal
    compiled: CompiledProgram

    @property
    def nodes(self) -> set[SDGNode]:
        return set(traversal_nodes(self.traversal))

    @property
    def statements(self) -> list[ins.Instruction]:
        return self.traversal.statements()

    @property
    def lines(self) -> set[int]:
        return set(self.traversal.lines())

    def source_view(self, context: int = 0) -> str:
        """Render the sliced source lines (with optional context lines)."""
        lines = self.compiled.source.lines()
        chosen = set(self.lines)
        for line in list(chosen):
            for offset in range(1, context + 1):
                chosen.add(line - offset)
                chosen.add(line + offset)
        rows = []
        for lineno in sorted(chosen):
            if 1 <= lineno <= len(lines):
                marker = "*" if lineno in self.lines else " "
                rows.append(f"{marker}{lineno:5d}  {lines[lineno - 1]}")
        return "\n".join(rows)


def traversal_nodes(traversal: Traversal) -> list[SDGNode]:
    return traversal.order


class Slicer:
    """Base class: a slicer is an SDG plus a set of edge kinds."""

    kinds: frozenset[EdgeKind] = frozenset()

    def __init__(self, compiled: CompiledProgram, sdg: SDG) -> None:
        self.compiled = compiled
        self.sdg = sdg

    def seeds_at_line(self, line: int) -> list[SDGNode]:
        seeds: list[SDGNode] = []
        for instr in self.compiled.instructions_at_line(line):
            seeds.extend(self.sdg.nodes_of_instruction(instr))
        return seeds

    def slice_from_line(self, line: int) -> SliceResult:
        seeds = self.seeds_at_line(line)
        return self.slice_from_nodes(seeds)

    def slice_from_lines(self, lines) -> SliceResult:
        seeds: list[SDGNode] = []
        for line in lines:
            seeds.extend(self.seeds_at_line(line))
        return self.slice_from_nodes(seeds)

    def slice_from_nodes(self, seeds: list[SDGNode]) -> SliceResult:
        traversal = backward_bfs(self.sdg, seeds, self.kinds)
        return SliceResult(seeds, traversal, self.compiled)
