"""Hierarchical expansion of thin slices (§4 of the paper).

Thin slices exclude *explainer* statements.  This module answers the two
expansion questions on demand:

1. **Aliasing** (§4.1): given a heap load and a heap store in a thin
   slice, why do their base pointers alias?  Answered with two more thin
   slices — from the definitions of the two base pointers — filtered to
   statements that can carry an object flowing to *both* bases.
2. **Control** (§4.2): under what condition does a statement execute?
   Answered by exposing its (transitive, one level at a time) control
   dependences, which the paper observes are almost always lexically
   close to thin-slice statements.

Repeated expansion converges to the traditional slice
(:func:`expand_once` / :func:`expand_to_fixpoint`), the property stated
at the end of §2.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.analysis.pointsto import PointsToResult
from repro.frontend import CompiledProgram
from repro.ir import instructions as ins
from repro.sdg.nodes import (
    EdgeKind,
    SDGNode,
    StmtNode,
    THIN_KINDS,
    TRADITIONAL_KINDS,
    node_position,
)
from repro.sdg.sdg import SDG
from repro.slicing.engine import Traversal, backward_bfs


@dataclass
class AliasExplanation:
    """Why a load and a store touch the same heap location."""

    load: ins.Instruction
    store: ins.Instruction
    common_objects: set
    load_base_slice: Traversal
    store_base_slice: Traversal

    def lines(self) -> set[int]:
        return set(self.load_base_slice.lines()) | set(
            self.store_base_slice.lines()
        )


def _base_defs(sdg: SDG, instr: ins.Instruction) -> list[SDGNode]:
    """Definitions of the base pointer(s) of a heap access (all instances)."""
    defs: list[SDGNode] = []
    for node in sdg.nodes_of_instruction(instr):
        defs.extend(
            dep for dep, kind in sdg.dependencies(node) if kind is EdgeKind.BASE
        )
    return defs


def _base_var(instr: ins.Instruction) -> str | None:
    return getattr(instr, "base", None)


def explain_aliasing(
    compiled: CompiledProgram,
    sdg: SDG,
    pts: PointsToResult,
    load: ins.Instruction,
    store: ins.Instruction,
) -> AliasExplanation:
    """Two filtered thin slices showing how the bases come to alias."""
    load_fn = compiled.ir.function_of(load).name
    store_fn = compiled.ir.function_of(store).name
    load_base = _base_var(load)
    store_base = _base_var(store)
    common: set = set()
    if load_base is not None and store_base is not None:
        common = pts.points_to(load_fn, load_base) & pts.points_to(
            store_fn, store_base
        )
    load_slice = _filtered_thin_bfs(sdg, pts, _base_defs(sdg, load), common)
    store_slice = _filtered_thin_bfs(sdg, pts, _base_defs(sdg, store), common)
    return AliasExplanation(load, store, common, load_slice, store_slice)


def _filtered_thin_bfs(
    sdg: SDG, pts: PointsToResult, seeds: list[SDGNode], common: set
) -> Traversal:
    """Thin-slice BFS keeping only statements able to carry an object in
    ``common`` (§4.1: "restricted to only show the flow of objects that
    can flow to both base pointers")."""
    traversal = Traversal()
    queue: deque[SDGNode] = deque()

    def admit(node: SDGNode) -> bool:
        if not common:
            return True
        if isinstance(node, StmtNode):
            var = node.instr.defined_var()
            if var is not None:
                fn = sdg.proc_of.get(node, "")
                return bool(pts.points_to(fn, var) & common)
        return True  # stores, param nodes: keep

    for seed in seeds:
        if seed not in traversal.distance and admit(seed):
            traversal.distance[seed] = 0
            traversal.order.append(seed)
            queue.append(seed)
    while queue:
        node = queue.popleft()
        depth = traversal.distance[node]
        for dep, kind in sdg.dependencies(node):
            if kind not in THIN_KINDS or dep in traversal.distance:
                continue
            if not admit(dep):
                continue
            traversal.distance[dep] = depth + 1
            traversal.order.append(dep)
            queue.append(dep)
    return traversal


# ---------------------------------------------------------------------------
# Control explainers
# ---------------------------------------------------------------------------


@dataclass
class ControlExplanation:
    """The conditionals directly governing a statement."""

    statement: ins.Instruction
    conditionals: list[ins.Instruction]

    def lines(self) -> set[int]:
        return {node_position(c).line for c in self.conditionals}


def control_explainers(sdg: SDG, instr: ins.Instruction) -> ControlExplanation:
    """One level of control dependence for ``instr`` (instances merged)."""
    conditionals: list[ins.Instruction] = []
    seen: set[int] = set()
    for node in sdg.nodes_of_instruction(instr):
        for dep, kind in sdg.dependencies(node):
            if kind is EdgeKind.CONTROL and isinstance(dep, StmtNode):
                if dep.instr.uid not in seen:
                    seen.add(dep.instr.uid)
                    conditionals.append(dep.instr)
    return ControlExplanation(instr, conditionals)


# ---------------------------------------------------------------------------
# Convergence to the traditional slice
# ---------------------------------------------------------------------------


@dataclass
class ExpansionState:
    """An expandable slice: current node set plus what was just added."""

    nodes: set[SDGNode]
    frontier: set[SDGNode] = field(default_factory=set)
    rounds: int = 0


def thin_closure(sdg: SDG, seeds) -> set[SDGNode]:
    return set(backward_bfs(sdg, list(seeds), THIN_KINDS).order)


def expand_once(sdg: SDG, state: ExpansionState) -> ExpansionState:
    """Add one level of explainers (base-pointer + control deps of the
    current slice) and close under producer flow again."""
    explainers: set[SDGNode] = set()
    for node in state.nodes:
        for dep, kind in sdg.dependencies(node):
            if kind in (EdgeKind.BASE, EdgeKind.CONTROL):
                explainers.add(dep)
    new_nodes = thin_closure(sdg, state.nodes | explainers)
    return ExpansionState(
        nodes=new_nodes,
        frontier=new_nodes - state.nodes,
        rounds=state.rounds + 1,
    )


def expand_to_fixpoint(
    sdg: SDG, seeds, max_rounds: int = 1000
) -> ExpansionState:
    """Expand until no new explainers appear.

    The result equals the traditional slice from the same seeds — the
    paper's "in the limit yielding a traditional slice".
    """
    state = ExpansionState(nodes=thin_closure(sdg, seeds))
    for _ in range(max_rounds):
        nxt = expand_once(sdg, state)
        if not nxt.frontier:
            nxt.rounds = state.rounds
            return nxt
        state = nxt
    return state


def traditional_closure(sdg: SDG, seeds) -> set[SDGNode]:
    return set(backward_bfs(sdg, list(seeds), TRADITIONAL_KINDS).order)
