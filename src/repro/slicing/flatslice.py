"""Slicing directly over a flat artifact: no object graph, ever.

:class:`FlatSlicer` runs the same backward reachability as
:class:`~repro.slicing.engine.Slicer` but walks the CSR edge arrays of
an :class:`~repro.artifact.ArtifactView` — node ids are dense ints, the
edge-kind filter is a byte-table lookup, and seeds come from the
artifact's binary-searched line index.  A warm-disk slice therefore
touches only the pages holding the arrays it traverses; the pickled
``RICH`` section (and the whole ``AnalyzedProgram`` graph it encodes)
stays cold on disk.

:class:`FlatSliceResult` duck-types :class:`~repro.slicing.engine.
SliceResult` for everything the server payloads consume — ``seeds``,
``lines``, ``statements``, ``source_view`` — and is differentially
tested to produce byte-identical ``slice`` payloads against the rich
path on every suite program.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.sdg.nodes import EdgeKind, THIN_KINDS, TRADITIONAL_KINDS
from repro.artifact.view import ArtifactView


def _kind_table(kinds: frozenset[EdgeKind]) -> bytes:
    """``EKND`` code -> 1 if the kind is followed (dense byte table)."""
    table = bytearray(len(EdgeKind))
    for kind in kinds:
        table[kind.index] = 1
    return bytes(table)


@dataclass
class FlatTraversal:
    """Backward BFS over artifact node ids, in visit order."""

    order: list[int] = field(default_factory=list)
    distance: dict[int, int] = field(default_factory=dict)


@dataclass
class FlatSliceResult:
    """A slice computed over an :class:`ArtifactView`.

    Mirrors :class:`~repro.slicing.engine.SliceResult`'s consumer-facing
    surface exactly — the server's ``slice_payload`` does not know (or
    care) which one it was handed.
    """

    seeds: list[int]
    traversal: FlatTraversal
    view: ArtifactView

    @property
    def nodes(self) -> set[int]:
        return set(self.traversal.order)

    @property
    def statements(self) -> list[int]:
        view = self.view
        return [n for n in self.traversal.order if view.is_statement(n)]

    def _inspected_lines(self) -> list[int]:
        """Distinct inspected lines in first-seen order (the flat twin
        of :meth:`repro.slicing.engine.Traversal.lines`)."""
        view = self.view
        seen: set[int] = set()
        result: list[int] = []
        for node in self.traversal.order:
            if not view.counts_as_inspected(node):
                continue
            line = view.node_line(node)
            if line > 0 and line not in seen:
                seen.add(line)
                result.append(line)
        return result

    @property
    def lines(self) -> set[int]:
        return set(self._inspected_lines())

    def source_view(self, context: int = 0) -> str:
        lines = self.view.source_lines()
        marked = self.lines
        chosen = set(marked)
        for line in list(chosen):
            for offset in range(1, context + 1):
                chosen.add(line - offset)
                chosen.add(line + offset)
        rows = []
        for lineno in sorted(chosen):
            if 1 <= lineno <= len(lines):
                marker = "*" if lineno in marked else " "
                rows.append(f"{marker}{lineno:5d}  {lines[lineno - 1]}")
        return "\n".join(rows)


class FlatSlicer:
    """Backward reachability over CSR arrays, filtered by edge kind."""

    def __init__(self, view: ArtifactView, kinds: frozenset[EdgeKind]) -> None:
        self.view = view
        self.kinds = kinds
        self._allowed = _kind_table(kinds)

    def seeds_at_line(self, line: int) -> list[int]:
        return self.view.seeds_at_line(line)

    def slice_from_line(self, line: int) -> FlatSliceResult:
        return self.slice_from_nodes(self.seeds_at_line(line))

    def slice_from_lines(self, lines) -> FlatSliceResult:
        seeds: list[int] = []
        for line in lines:
            seeds.extend(self.seeds_at_line(line))
        return self.slice_from_nodes(seeds)

    def slice_from_nodes(self, seeds: list[int]) -> FlatSliceResult:
        view = self.view
        eidx, etgt, eknd = view.eidx, view.etgt, view.eknd
        allowed = self._allowed
        traversal = FlatTraversal()
        distance = traversal.distance
        order = traversal.order
        queue: deque[int] = deque()
        for seed in seeds:
            if seed not in distance:
                distance[seed] = 0
                order.append(seed)
                queue.append(seed)
        while queue:
            node = queue.popleft()
            depth = distance[node] + 1
            for i in range(eidx[node], eidx[node + 1]):
                dep = etgt[i]
                if allowed[eknd[i]] and dep not in distance:
                    distance[dep] = depth
                    order.append(dep)
                    queue.append(dep)
        return FlatSliceResult(seeds, traversal, view)


def flat_slicer(view: ArtifactView, flavor: str) -> FlatSlicer:
    """The flat twin of ``analyzed.thin_slicer`` / ``.traditional_slicer``."""
    if flavor == "thin":
        return FlatSlicer(view, THIN_KINDS)
    if flavor == "traditional":
        return FlatSlicer(view, TRADITIONAL_KINDS)
    raise ValueError(f"unknown slice flavor: {flavor}")
