"""The traditional (full) slicer, context-insensitive variant.

Follows every dependence: producer flow plus base-pointer flow and
control dependences.  This is the baseline the paper compares thin
slicing against (identical SDG, identical traversal — the only
difference is the set of edge kinds followed)."""

from __future__ import annotations

from repro.analysis.pointsto import PointsToResult, solve_points_to
from repro.frontend import CompiledProgram
from repro.sdg.nodes import TRADITIONAL_KINDS
from repro.sdg.sdg import SDG, build_sdg
from repro.slicing.engine import Slicer


class TraditionalSlicer(Slicer):
    """Computes traditional backward slices over a direct-heap SDG."""

    kinds = TRADITIONAL_KINDS


def make_traditional_slicer(
    compiled: CompiledProgram,
    pts: PointsToResult | None = None,
    sdg: SDG | None = None,
) -> TraditionalSlicer:
    if sdg is None:
        if pts is None:
            pts = solve_points_to(compiled.ir)
        sdg = build_sdg(compiled, pts, heap_mode="direct", include_control=True)
    return TraditionalSlicer(compiled, sdg)
