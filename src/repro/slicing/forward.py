"""Forward thin slicing: impact analysis over producer edges.

The SDG stores backward dependence edges; reversing them answers the
dual question — *which statements consume values this statement
produces?* A forward thin slice follows producer kinds only, so it
shows where a value is copied and used without drowning the answer in
everything whose execution the statement might influence.

Not part of the paper's evaluation, but a natural tool extension the
dependence taxonomy supports for free.
"""

from __future__ import annotations

from collections import defaultdict, deque

from repro.frontend import CompiledProgram
from repro.sdg.nodes import EdgeKind, SDGNode, THIN_KINDS, TRADITIONAL_KINDS
from repro.sdg.sdg import SDG
from repro.slicing.engine import SliceResult, Traversal


class ForwardSlicer:
    """Forward reachability over a reversed view of the SDG."""

    def __init__(
        self,
        compiled: CompiledProgram,
        sdg: SDG,
        kinds: frozenset[EdgeKind] = THIN_KINDS,
    ) -> None:
        self.compiled = compiled
        self.sdg = sdg
        self.kinds = kinds
        self._uses: dict[SDGNode, list[tuple[SDGNode, EdgeKind]]] = defaultdict(list)
        for node, deps in sdg.deps.items():
            for dep, kind in deps:
                self._uses[dep].append((node, kind))

    def seeds_at_line(self, line: int) -> list[SDGNode]:
        seeds: list[SDGNode] = []
        for instr in self.compiled.instructions_at_line(line):
            seeds.extend(self.sdg.nodes_of_instruction(instr))
        return seeds

    def slice_from_line(self, line: int) -> SliceResult:
        return self.slice_from_nodes(self.seeds_at_line(line))

    def slice_from_nodes(self, seeds: list[SDGNode]) -> SliceResult:
        traversal = Traversal()
        queue: deque[SDGNode] = deque()
        for seed in seeds:
            if seed not in traversal.distance:
                traversal.distance[seed] = 0
                traversal.order.append(seed)
                queue.append(seed)
        while queue:
            node = queue.popleft()
            depth = traversal.distance[node]
            for user, kind in self._uses.get(node, ()):
                if kind not in self.kinds or user in traversal.distance:
                    continue
                traversal.distance[user] = depth + 1
                traversal.order.append(user)
                queue.append(user)
        return SliceResult(seeds, traversal, self.compiled)


def forward_thin_slicer(compiled: CompiledProgram, sdg: SDG) -> ForwardSlicer:
    return ForwardSlicer(compiled, sdg, THIN_KINDS)


def forward_traditional_slicer(
    compiled: CompiledProgram, sdg: SDG
) -> ForwardSlicer:
    return ForwardSlicer(compiled, sdg, TRADITIONAL_KINDS)
