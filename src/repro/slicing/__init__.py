"""Slicing: thin and traditional, context-insensitive and -sensitive."""

from repro.slicing.engine import SliceResult, Slicer, Traversal, backward_bfs
from repro.slicing.forward import (
    ForwardSlicer,
    forward_thin_slicer,
    forward_traditional_slicer,
)
from repro.slicing.expansion import (
    AliasExplanation,
    ControlExplanation,
    ExpansionState,
    control_explainers,
    expand_once,
    expand_to_fixpoint,
    explain_aliasing,
    thin_closure,
    traditional_closure,
)
from repro.slicing.inspection import (
    Comparison,
    InspectionResult,
    compare,
    count_inspected,
)
from repro.slicing.tabulation import (
    TabulationBudgetExceeded,
    TabulationSlicer,
    THIN_SAME_LEVEL,
    TRADITIONAL_SAME_LEVEL,
)
from repro.slicing.thin import ExpandedThinSlicer, ThinSlicer, make_thin_slicer
from repro.slicing.traditional import TraditionalSlicer, make_traditional_slicer

__all__ = [
    "AliasExplanation",
    "ForwardSlicer",
    "forward_thin_slicer",
    "forward_traditional_slicer",
    "Comparison",
    "ControlExplanation",
    "ExpandedThinSlicer",
    "ExpansionState",
    "InspectionResult",
    "SliceResult",
    "Slicer",
    "TabulationBudgetExceeded",
    "TabulationSlicer",
    "THIN_SAME_LEVEL",
    "TRADITIONAL_SAME_LEVEL",
    "ThinSlicer",
    "TraditionalSlicer",
    "Traversal",
    "backward_bfs",
    "compare",
    "control_explainers",
    "count_inspected",
    "expand_once",
    "expand_to_fixpoint",
    "explain_aliasing",
    "make_thin_slicer",
    "make_traditional_slicer",
    "thin_closure",
    "traditional_closure",
]
