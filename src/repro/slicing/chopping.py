"""Program chopping: slices between a source and a sink.

A *chop* is the intersection of the forward slice of a source statement
and the backward slice of a sink — the statements through which the
source can influence the sink.  With producer-only kinds this yields a
*thin chop*: the value-transmission corridor between two statements,
which answers "how does the value produced here reach there?" far more
directly than either slice alone.

Classic chopping is due to Jackson & Rollins; it composes naturally with
the thin/traditional kind split introduced by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend import CompiledProgram
from repro.sdg.nodes import (
    EdgeKind,
    SDGNode,
    THIN_KINDS,
    TRADITIONAL_KINDS,
    node_position,
)
from repro.sdg.sdg import SDG
from repro.slicing.engine import backward_bfs
from repro.slicing.forward import ForwardSlicer


@dataclass
class ChopResult:
    """Statements on some dependence path from source to sink."""

    source_seeds: list[SDGNode]
    sink_seeds: list[SDGNode]
    nodes: set[SDGNode]
    compiled: CompiledProgram

    @property
    def lines(self) -> set[int]:
        from repro.slicing.engine import counts_as_inspected

        return {
            node_position(n).line
            for n in self.nodes
            if counts_as_inspected(n) and node_position(n).line > 0
        }

    @property
    def empty(self) -> bool:
        return not self.nodes


class Chopper:
    """Computes chops over one SDG."""

    def __init__(
        self,
        compiled: CompiledProgram,
        sdg: SDG,
        kinds: frozenset[EdgeKind] = THIN_KINDS,
    ) -> None:
        self.compiled = compiled
        self.sdg = sdg
        self.kinds = kinds
        self._forward = ForwardSlicer(compiled, sdg, kinds)

    def seeds_at_line(self, line: int) -> list[SDGNode]:
        seeds: list[SDGNode] = []
        for instr in self.compiled.instructions_at_line(line):
            seeds.extend(self.sdg.nodes_of_instruction(instr))
        return seeds

    def chop(self, source_line: int, sink_line: int) -> ChopResult:
        source_seeds = self.seeds_at_line(source_line)
        sink_seeds = self.seeds_at_line(sink_line)
        forward = set(self._forward.slice_from_nodes(source_seeds).traversal.order)
        backward = set(backward_bfs(self.sdg, sink_seeds, self.kinds).order)
        return ChopResult(
            source_seeds, sink_seeds, forward & backward, self.compiled
        )


def thin_chop(
    compiled: CompiledProgram, sdg: SDG, source_line: int, sink_line: int
) -> ChopResult:
    return Chopper(compiled, sdg, THIN_KINDS).chop(source_line, sink_line)


def traditional_chop(
    compiled: CompiledProgram, sdg: SDG, source_line: int, sink_line: int
) -> ChopResult:
    return Chopper(compiled, sdg, TRADITIONAL_KINDS).chop(source_line, sink_line)
