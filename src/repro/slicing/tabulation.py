"""Context-sensitive slicing via tabulation (§5.3).

Implements the Horwitz–Reps–Binkley two-phase backward slice over an SDG
with heap parameters, using summary edges computed by the
Reps–Horwitz–Sagiv–Rosay worklist algorithm.  Interprocedural edges are
the parentheses of the partially balanced reachability problem:
``PARAM_IN`` ascends to callers, ``PARAM_OUT`` descends into callees,
and a summary edge short-circuits a callee with a same-level realizable
path from one of its formal-ins to a formal-out.

The *thin* context-sensitive variant uses the same machinery with
producer-only same-level kinds (no BASE, no CONTROL), per §5.3.

The slicer speaks the graph protocol shared by
:class:`~repro.sdg.sdg.SDG` and :class:`~repro.artifact.ArtifactView`
(``dependencies`` / ``node_role`` / ``site_of`` / ``formal_out_nodes``
/ ``graph_nodes``), so the same tabulation runs over rich SDG nodes or
over flat artifact ids straight off an mmap — pass ``compiled=None``
with a view and the result is a
:class:`~repro.slicing.flatslice.FlatSliceResult`.

Summary computation is budgeted: exceeding ``max_path_edges`` raises
:class:`TabulationBudgetExceeded`, reproducing the paper's observation
that the context-sensitive traditional slicer does not scale to the
larger benchmarks.
"""

from __future__ import annotations

from collections import defaultdict, deque

from repro.budget import Budget
from repro.frontend import CompiledProgram
from repro.sdg.nodes import EdgeKind
from repro.slicing.engine import SliceResult, Traversal
from repro.slicing.flatslice import FlatSliceResult

#: Same-level kinds for thin context-sensitive slicing.
THIN_SAME_LEVEL = frozenset({EdgeKind.FLOW, EdgeKind.HEAP, EdgeKind.CATCH})

#: Same-level kinds for traditional context-sensitive slicing.
TRADITIONAL_SAME_LEVEL = THIN_SAME_LEVEL | {EdgeKind.BASE, EdgeKind.CONTROL}


class TabulationBudgetExceeded(Exception):
    """Summary computation outgrew its budget (the scalability wall)."""

    def __init__(self, path_edges: int) -> None:
        self.path_edges = path_edges
        super().__init__(f"tabulation exceeded budget at {path_edges} path edges")


class TabulationSlicer:
    """Two-phase context-sensitive backward slicer.

    ``sdg`` is anything implementing the graph protocol — a rich
    :class:`~repro.sdg.sdg.SDG` or a flat
    :class:`~repro.artifact.ArtifactView`.  In view mode pass
    ``compiled=None``; line seeding then uses the artifact's own line
    index.
    """

    def __init__(
        self,
        compiled: CompiledProgram | None,
        sdg,
        same_level: frozenset[EdgeKind] = TRADITIONAL_SAME_LEVEL,
        max_path_edges: int | None = None,
        budget: Budget | None = None,
    ) -> None:
        self.compiled = compiled
        self.sdg = sdg
        self.same_level = same_level
        self.max_path_edges = max_path_edges
        self.budget = budget
        self.summaries: dict[object, set] = defaultdict(set)
        self.path_edge_count = 0
        self._summaries_ready = False
        # Incremental tabulation state: path edges, their index by source
        # node, and the worklist persist across calls, so summaries are
        # seeded per formal-out on demand and never recomputed.
        self._path_edges: set[tuple] = set()
        self._by_node: dict[object, set] = defaultdict(set)
        self._worklist: deque[tuple] = deque()
        self._seeded: set = set()
        # (formal_out, call site) -> actual-out style nodes at that site
        self._aouts: dict[tuple, list] = defaultdict(list)
        for node in sdg.graph_nodes():
            site = sdg.site_of(node)
            if site is None:
                continue
            for dep, kind in sdg.dependencies(node):
                if kind is EdgeKind.PARAM_OUT:
                    self._aouts[(dep, site)].append(node)

    # ------------------------------------------------------------------
    # Summary edges
    # ------------------------------------------------------------------

    def compute_summaries(self) -> None:
        """Summaries for every procedure instance (whole-program mode)."""
        if self._summaries_ready:
            return
        self._ensure_summaries(self.sdg.formal_out_nodes())
        self._summaries_ready = True

    def _propagate(self, node, formal_out) -> None:
        key = (node, formal_out)
        if key in self._path_edges:
            return
        self._path_edges.add(key)
        if (
            self.max_path_edges is not None
            and len(self._path_edges) > self.max_path_edges
        ):
            raise TabulationBudgetExceeded(len(self._path_edges))
        self._by_node[node].add(formal_out)
        self._worklist.append(key)

    def _add_summary(self, actual_out, actual_in) -> None:
        if actual_in in self.summaries[actual_out]:
            return
        self.summaries[actual_out].add(actual_in)
        for formal_out in list(self._by_node.get(actual_out, ())):
            self._propagate(actual_in, formal_out)

    def _ensure_summaries(self, formal_outs) -> None:
        """Tabulate path edges seeded at ``formal_outs`` (incremental).

        Each formal-out is seeded at most once per slicer; the path-edge
        relation is monotone, so continuing the same worklist with new
        seeds reaches the same fixpoint as seeding everything upfront —
        this is what makes demand-driven slicing spend its
        ``max_path_edges`` budget only on procedures a slice can see,
        raising the effective ceiling for single-seed slices.
        """
        for formal_out in formal_outs:
            if formal_out not in self._seeded:
                self._seeded.add(formal_out)
                self._propagate(formal_out, formal_out)

        sdg = self.sdg
        worklist = self._worklist
        budget = self.budget
        while worklist:
            if budget is not None:
                budget.poll()
            node, formal_out = worklist.popleft()
            if sdg.node_role(node) == "formal_in":
                for actual_in, kind in sdg.dependencies(node):
                    if kind is not EdgeKind.PARAM_IN:
                        continue
                    site = sdg.site_of(actual_in)
                    if site is None:
                        continue
                    for actual_out in self._aouts.get((formal_out, site), ()):
                        self._add_summary(actual_out, actual_in)
                continue
            for dep, kind in sdg.dependencies(node):
                if kind in self.same_level:
                    self._propagate(dep, formal_out)
            for actual_in in list(self.summaries.get(node, ())):
                self._propagate(actual_in, formal_out)

        self.path_edge_count = len(self._path_edges)

    def _relevant_formal_outs(self, seeds: list) -> list:
        """Formal-outs whose summaries a slice from ``seeds`` could use.

        Unconstrained backward closure over *all* raw edge kinds.  Every
        summary edge abbreviates a raw backward path (actual-out →
        formal-out → … → formal-in → actual-in), so this closure is a
        superset of everything the two-phase traversal can reach with
        any set of summary edges; formal-outs outside it can never be
        queried and need no tabulation.
        """
        sdg = self.sdg
        seen: set = set(seeds)
        stack: list = list(seeds)
        formal_outs: list = []
        while stack:
            node = stack.pop()
            if sdg.node_role(node) == "formal_out":
                formal_outs.append(node)
            for dep, _kind in sdg.dependencies(node):
                if dep not in seen:
                    seen.add(dep)
                    stack.append(dep)
        return formal_outs

    # ------------------------------------------------------------------
    # Two-phase slicing
    # ------------------------------------------------------------------

    def _neighbors(self, node, extra: EdgeKind):
        for dep, kind in self.sdg.dependencies(node):
            if kind in self.same_level or kind is extra:
                yield dep
        yield from self.summaries.get(node, ())

    def _bfs(self, seeds: list, extra: EdgeKind, traversal: Traversal) -> None:
        queue: deque = deque()
        for seed in seeds:
            if seed not in traversal.distance:
                traversal.distance[seed] = 0
                traversal.order.append(seed)
            queue.append(seed)
        while queue:
            node = queue.popleft()
            depth = traversal.distance[node]
            for dep in self._neighbors(node, extra):
                if dep in traversal.distance:
                    continue
                traversal.distance[dep] = depth + 1
                traversal.order.append(dep)
                queue.append(dep)

    def slice_from_nodes(self, seeds: list):
        if not self._summaries_ready:
            self._ensure_summaries(self._relevant_formal_outs(seeds))
        traversal = Traversal()
        # Phase 1: ascend to callers (and same-level + summaries).
        self._bfs(seeds, EdgeKind.PARAM_IN, traversal)
        # Phase 2: descend into callees from everything phase 1 marked.
        phase1_nodes = list(traversal.order)
        self._bfs(phase1_nodes, EdgeKind.PARAM_OUT, traversal)
        if self.compiled is None:
            return FlatSliceResult(seeds, traversal, self.sdg)
        return SliceResult(seeds, traversal, self.compiled)

    def seeds_at_line(self, line: int) -> list:
        if self.compiled is None:
            return self.sdg.seeds_at_line(line)
        seeds: list = []
        for instr in self.compiled.instructions_at_line(line):
            seeds.extend(self.sdg.nodes_of_instruction(instr))
        return seeds

    def slice_from_line(self, line: int):
        return self.slice_from_nodes(self.seeds_at_line(line))
