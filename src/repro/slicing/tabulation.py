"""Context-sensitive slicing via tabulation (§5.3).

Implements the Horwitz–Reps–Binkley two-phase backward slice over an SDG
with heap parameters, using summary edges computed by the
Reps–Horwitz–Sagiv–Rosay worklist algorithm.  Interprocedural edges are
the parentheses of the partially balanced reachability problem:
``PARAM_IN`` ascends to callers, ``PARAM_OUT`` descends into callees,
and a summary edge short-circuits a callee with a same-level realizable
path from one of its formal-ins to a formal-out.

The *thin* context-sensitive variant uses the same machinery with
producer-only same-level kinds (no BASE, no CONTROL), per §5.3.

Summary computation is budgeted: exceeding ``max_path_edges`` raises
:class:`TabulationBudgetExceeded`, reproducing the paper's observation
that the context-sensitive traditional slicer does not scale to the
larger benchmarks.
"""

from __future__ import annotations

from collections import defaultdict, deque

from repro.budget import Budget
from repro.frontend import CompiledProgram
from repro.ir import instructions as ins
from repro.sdg.nodes import EdgeKind, ParamNode, SDGNode, StmtNode
from repro.sdg.sdg import SDG
from repro.slicing.engine import SliceResult, Traversal

#: Same-level kinds for thin context-sensitive slicing.
THIN_SAME_LEVEL = frozenset({EdgeKind.FLOW, EdgeKind.HEAP, EdgeKind.CATCH})

#: Same-level kinds for traditional context-sensitive slicing.
TRADITIONAL_SAME_LEVEL = THIN_SAME_LEVEL | {EdgeKind.BASE, EdgeKind.CONTROL}


class TabulationBudgetExceeded(Exception):
    """Summary computation outgrew its budget (the scalability wall)."""

    def __init__(self, path_edges: int) -> None:
        self.path_edges = path_edges
        super().__init__(f"tabulation exceeded budget at {path_edges} path edges")


def _site_of(node: SDGNode) -> int | None:
    """The call-site uid a node belongs to, for actual-in/out matching."""
    if isinstance(node, ParamNode) and node.role in ("actual_in", "actual_out"):
        return node.site
    if isinstance(node, StmtNode) and isinstance(node.instr, ins.Call):
        return node.instr.uid
    return None


class TabulationSlicer:
    """Two-phase context-sensitive backward slicer."""

    def __init__(
        self,
        compiled: CompiledProgram,
        sdg: SDG,
        same_level: frozenset[EdgeKind] = TRADITIONAL_SAME_LEVEL,
        max_path_edges: int | None = None,
        budget: Budget | None = None,
    ) -> None:
        self.compiled = compiled
        self.sdg = sdg
        self.same_level = same_level
        self.max_path_edges = max_path_edges
        self.budget = budget
        self.summaries: dict[SDGNode, set[SDGNode]] = defaultdict(set)
        self.path_edge_count = 0
        self._summaries_ready = False
        # Incremental tabulation state: path edges, their index by source
        # node, and the worklist persist across calls, so summaries are
        # seeded per formal-out on demand and never recomputed.
        self._path_edges: set[tuple[SDGNode, SDGNode]] = set()
        self._by_node: dict[SDGNode, set[SDGNode]] = defaultdict(set)
        self._worklist: deque[tuple[SDGNode, SDGNode]] = deque()
        self._seeded: set[SDGNode] = set()
        # (formal_out, call site) -> actual-out style nodes at that site
        self._aouts: dict[tuple[SDGNode, int], list[SDGNode]] = defaultdict(list)
        for node in sdg.nodes:
            site = _site_of(node)
            if site is None:
                continue
            for dep, kind in sdg.dependencies(node):
                if kind is EdgeKind.PARAM_OUT:
                    self._aouts[(dep, site)].append(node)

    # ------------------------------------------------------------------
    # Summary edges
    # ------------------------------------------------------------------

    def compute_summaries(self) -> None:
        """Summaries for every procedure instance (whole-program mode)."""
        if self._summaries_ready:
            return
        self._ensure_summaries(self.sdg.formal_out.values())
        self._summaries_ready = True

    def _propagate(self, node: SDGNode, formal_out: SDGNode) -> None:
        key = (node, formal_out)
        if key in self._path_edges:
            return
        self._path_edges.add(key)
        if (
            self.max_path_edges is not None
            and len(self._path_edges) > self.max_path_edges
        ):
            raise TabulationBudgetExceeded(len(self._path_edges))
        self._by_node[node].add(formal_out)
        self._worklist.append(key)

    def _add_summary(self, actual_out: SDGNode, actual_in: SDGNode) -> None:
        if actual_in in self.summaries[actual_out]:
            return
        self.summaries[actual_out].add(actual_in)
        for formal_out in list(self._by_node.get(actual_out, ())):
            self._propagate(actual_in, formal_out)

    def _ensure_summaries(self, formal_outs) -> None:
        """Tabulate path edges seeded at ``formal_outs`` (incremental).

        Each formal-out is seeded at most once per slicer; the path-edge
        relation is monotone, so continuing the same worklist with new
        seeds reaches the same fixpoint as seeding everything upfront —
        this is what makes demand-driven slicing spend its
        ``max_path_edges`` budget only on procedures a slice can see,
        raising the effective ceiling for single-seed slices.
        """
        for formal_out in formal_outs:
            if formal_out not in self._seeded:
                self._seeded.add(formal_out)
                self._propagate(formal_out, formal_out)

        worklist = self._worklist
        budget = self.budget
        while worklist:
            if budget is not None:
                budget.poll()
            node, formal_out = worklist.popleft()
            if isinstance(node, ParamNode) and node.role == "formal_in":
                for actual_in, kind in self.sdg.dependencies(node):
                    if kind is not EdgeKind.PARAM_IN:
                        continue
                    site = _site_of(actual_in)
                    if site is None:
                        continue
                    for actual_out in self._aouts.get((formal_out, site), ()):
                        self._add_summary(actual_out, actual_in)
                continue
            for dep, kind in self.sdg.dependencies(node):
                if kind in self.same_level:
                    self._propagate(dep, formal_out)
            for actual_in in list(self.summaries.get(node, ())):
                self._propagate(actual_in, formal_out)

        self.path_edge_count = len(self._path_edges)

    def _relevant_formal_outs(self, seeds: list[SDGNode]) -> list[SDGNode]:
        """Formal-outs whose summaries a slice from ``seeds`` could use.

        Unconstrained backward closure over *all* raw edge kinds.  Every
        summary edge abbreviates a raw backward path (actual-out →
        formal-out → … → formal-in → actual-in), so this closure is a
        superset of everything the two-phase traversal can reach with
        any set of summary edges; formal-outs outside it can never be
        queried and need no tabulation.
        """
        seen: set[SDGNode] = set(seeds)
        stack: list[SDGNode] = list(seeds)
        formal_outs: list[SDGNode] = []
        while stack:
            node = stack.pop()
            if isinstance(node, ParamNode) and node.role == "formal_out":
                formal_outs.append(node)
            for dep, _kind in self.sdg.dependencies(node):
                if dep not in seen:
                    seen.add(dep)
                    stack.append(dep)
        return formal_outs

    # ------------------------------------------------------------------
    # Two-phase slicing
    # ------------------------------------------------------------------

    def _neighbors(self, node: SDGNode, extra: EdgeKind):
        for dep, kind in self.sdg.dependencies(node):
            if kind in self.same_level or kind is extra:
                yield dep
        yield from self.summaries.get(node, ())

    def _bfs(
        self, seeds: list[SDGNode], extra: EdgeKind, traversal: Traversal
    ) -> None:
        queue: deque[SDGNode] = deque()
        for seed in seeds:
            if seed not in traversal.distance:
                traversal.distance[seed] = 0
                traversal.order.append(seed)
            queue.append(seed)
        while queue:
            node = queue.popleft()
            depth = traversal.distance[node]
            for dep in self._neighbors(node, extra):
                if dep in traversal.distance:
                    continue
                traversal.distance[dep] = depth + 1
                traversal.order.append(dep)
                queue.append(dep)

    def slice_from_nodes(self, seeds: list[SDGNode]) -> SliceResult:
        if not self._summaries_ready:
            self._ensure_summaries(self._relevant_formal_outs(seeds))
        traversal = Traversal()
        # Phase 1: ascend to callers (and same-level + summaries).
        self._bfs(seeds, EdgeKind.PARAM_IN, traversal)
        # Phase 2: descend into callees from everything phase 1 marked.
        phase1_nodes = list(traversal.order)
        self._bfs(phase1_nodes, EdgeKind.PARAM_OUT, traversal)
        return SliceResult(seeds, traversal, self.compiled)

    def seeds_at_line(self, line: int) -> list[SDGNode]:
        seeds: list[SDGNode] = []
        for instr in self.compiled.instructions_at_line(line):
            seeds.extend(self.sdg.nodes_of_instruction(instr))
        return seeds

    def slice_from_line(self, line: int) -> SliceResult:
        return self.slice_from_nodes(self.seeds_at_line(line))
