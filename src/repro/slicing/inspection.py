"""The simulated-user inspection metric of §6.1.

A task is (seed statement, desired statements).  The simulated user
explores the slice in breadth-first order over the technique's own
dependence graph — statements closer to the seed first, as a CodeSurfer
user would browse — and the cost of the task is the number of distinct
source lines inspected when the *last* desired line is discovered.

Relevant control dependences are pre-determined per task (the paper does
this manually) and the same allowance is added to both techniques.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.slicing.engine import Slicer


@dataclass
class InspectionResult:
    """Outcome of simulating a user exploring one slice."""

    inspected: int  # lines read until every desired line was found
    found_all: bool
    order: list[int]  # full inspection order (lines)
    desired: frozenset[int]
    control_allowance: int = 0

    @property
    def total_slice_lines(self) -> int:
        return len(self.order)


def count_inspected(
    slicer: Slicer,
    seed_line: int | list[int],
    desired_lines: set[int],
    control_allowance: int = 0,
) -> InspectionResult:
    """BFS from the seed(s); count lines until all desired lines are seen.

    ``seed_line`` may be a list: per §4.2/§6.1, when a task's relevant
    control dependences were pre-determined, the user also thin-slices
    from those conditionals, so their lines join the seed set (for both
    techniques, keeping the comparison apples-to-apples).
    """
    if isinstance(seed_line, int):
        result = slicer.slice_from_line(seed_line)
    else:
        result = slicer.slice_from_lines(seed_line)
    order = result.traversal.lines()
    desired = frozenset(desired_lines)
    remaining = set(desired)
    inspected = 0
    for rank, line in enumerate(order, start=1):
        remaining.discard(line)
        if not remaining:
            inspected = rank
            break
    found_all = not remaining
    if not found_all:
        inspected = len(order)
    return InspectionResult(
        inspected=inspected + control_allowance,
        found_all=found_all,
        order=order,
        desired=desired,
        control_allowance=control_allowance,
    )


@dataclass
class Comparison:
    """Thin-vs-traditional inspection costs for one task (a table row)."""

    task: str
    thin: InspectionResult
    traditional: InspectionResult
    control: int

    @property
    def ratio(self) -> float:
        if self.thin.inspected == 0:
            return float("inf") if self.traditional.inspected else 1.0
        return self.traditional.inspected / self.thin.inspected


def compare(
    task: str,
    thin_slicer: Slicer,
    traditional_slicer: Slicer,
    seed_line: int | list[int],
    desired_lines: set[int],
    control_allowance: int = 0,
) -> Comparison:
    """Run both techniques on the same task (same seed, same targets)."""
    return Comparison(
        task=task,
        thin=count_inspected(
            thin_slicer, seed_line, desired_lines, control_allowance
        ),
        traditional=count_inspected(
            traditional_slicer, seed_line, desired_lines, control_allowance
        ),
        control=control_allowance,
    )
