"""The thin slicer (context-insensitive, §5.2).

A thin slice follows only *producer* flow: SSA def-use of directly used
variables, parameter/return value bindings, direct heap store→load
edges, and throw→catch flow.  Base-pointer flow dependences and control
dependences are excluded — they are *explainer* statements, recoverable
on demand via :mod:`repro.slicing.expansion`.
"""

from __future__ import annotations

from repro.analysis.pointsto import PointsToResult, solve_points_to
from repro.frontend import CompiledProgram
from repro.sdg.nodes import THIN_KINDS
from repro.sdg.sdg import SDG, build_sdg
from repro.slicing.engine import Slicer


class ThinSlicer(Slicer):
    """Computes thin slices over a direct-heap SDG."""

    kinds = THIN_KINDS


class ExpandedThinSlicer(Slicer):
    """A thin slicer that exposes ``levels`` levels of aliasing
    explainers: each path may cross at most ``levels`` base-pointer
    edges, continuing with producer flow after each.

    This is the configuration §6.2 uses for nanoxml-5 ("we ran the thin
    slicer in a configuration that included statements explaining one
    level of indirect aliasing").
    """

    kinds = THIN_KINDS

    def __init__(self, compiled, sdg, levels: int = 1) -> None:
        super().__init__(compiled, sdg)
        self.levels = levels

    def slice_from_nodes(self, seeds):
        from collections import deque

        from repro.sdg.nodes import EdgeKind
        from repro.slicing.engine import SliceResult, Traversal

        traversal = Traversal()
        best: dict = {}  # node -> fewest base edges used to reach it
        queue: deque = deque()
        for seed in seeds:
            if seed not in best:
                best[seed] = 0
                traversal.distance[seed] = 0
                traversal.order.append(seed)
                queue.append((seed, 0))
        while queue:
            node, used = queue.popleft()
            depth = traversal.distance[node]
            for dep, kind in self.sdg.dependencies(node):
                if kind is EdgeKind.BASE:
                    next_used = used + 1
                    if next_used > self.levels:
                        continue
                elif kind in THIN_KINDS:
                    next_used = used
                else:
                    continue
                if dep in best and best[dep] <= next_used:
                    continue
                best[dep] = next_used
                if dep not in traversal.distance:
                    traversal.distance[dep] = depth + 1
                    traversal.order.append(dep)
                queue.append((dep, next_used))
        return SliceResult(seeds, traversal, self.compiled)


def make_thin_slicer(
    compiled: CompiledProgram,
    pts: PointsToResult | None = None,
    sdg: SDG | None = None,
) -> ThinSlicer:
    """Build a thin slicer, running points-to/SDG construction if needed.

    The SDG is built *with* control and base edges present (they are
    simply not traversed), so the same graph can be shared with a
    traditional slicer for apples-to-apples comparisons, as in §6.1.
    """
    if sdg is None:
        if pts is None:
            pts = solve_points_to(compiled.ir)
        sdg = build_sdg(compiled, pts, heap_mode="direct", include_control=True)
    return ThinSlicer(compiled, sdg)
