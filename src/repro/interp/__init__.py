"""MJ reference interpreter (AST-walking, exact semantics)."""

from repro.interp.interpreter import Interpreter, run_program
from repro.interp.values import (
    ArrayValue,
    ExecutionResult,
    MJThrow,
    ObjectValue,
    stringify,
    values_equal,
)

__all__ = [
    "ArrayValue",
    "ExecutionResult",
    "Interpreter",
    "MJThrow",
    "ObjectValue",
    "run_program",
    "stringify",
    "values_equal",
]
