"""Native implementations of the builtin String methods.

Each native takes the receiver string and already-evaluated arguments and
either returns a value or raises :class:`NativeFault` describing the MJ
exception the interpreter should throw (e.g. an out-of-range substring).
"""

from __future__ import annotations

from repro.interp.values import MJValue


class NativeFault(Exception):
    """A native method failed; carries the MJ exception class to throw."""

    def __init__(self, exc_class: str, message: str) -> None:
        self.exc_class = exc_class
        self.message = message
        super().__init__(message)


def _check_range(receiver: str, begin: int, end: int) -> None:
    if begin < 0 or end > len(receiver) or begin > end:
        raise NativeFault(
            "StringIndexOutOfBoundsException",
            f"begin {begin}, end {end}, length {len(receiver)}",
        )


def call_native(name: str, receiver: str, args: list[MJValue]) -> MJValue:
    """Dispatch ``receiver.name(*args)`` for a builtin String method."""
    if name == "length":
        return len(receiver)
    if name == "charAt":
        (index,) = args
        if not 0 <= index < len(receiver):
            raise NativeFault(
                "StringIndexOutOfBoundsException",
                f"index {index}, length {len(receiver)}",
            )
        return receiver[index]
    if name == "substring":
        begin = args[0]
        end = args[1] if len(args) == 2 else len(receiver)
        _check_range(receiver, begin, end)
        return receiver[begin:end]
    if name == "indexOf":
        needle = args[0]
        start = args[1] if len(args) == 2 else 0
        return receiver.find(needle, max(start, 0))
    if name == "lastIndexOf":
        return receiver.rfind(args[0])
    if name == "equals":
        return args[0] is not None and receiver == args[0]
    if name == "startsWith":
        return receiver.startswith(args[0])
    if name == "endsWith":
        return receiver.endswith(args[0])
    if name == "contains":
        return args[0] in receiver
    if name == "trim":
        return receiver.strip()
    if name == "toLowerCase":
        return receiver.lower()
    if name == "toUpperCase":
        return receiver.upper()
    if name == "concat":
        return receiver + args[0]
    if name == "replace":
        return receiver.replace(args[0], args[1])
    if name == "compareTo":
        other = args[0]
        if receiver < other:
            return -1
        if receiver > other:
            return 1
        return 0
    if name == "hashCode":
        # Java's String.hashCode, for deterministic hash-based workloads.
        result = 0
        for ch in receiver:
            result = (31 * result + ord(ch)) & 0xFFFFFFFF
        if result >= 0x80000000:
            result -= 0x100000000
        return result
    if name == "isEmpty":
        return len(receiver) == 0
    raise NativeFault("UnsupportedOperationException", f"unknown native {name}")
