"""Reference interpreter for MJ, operating on the typed AST.

The interpreter implements exact semantics (dynamic dispatch, exceptions
with unwinding, short-circuit evaluation, Java-style truncated division),
independent of the IR, so it doubles as an oracle for the frontend and as
the test-runner that exposes injected bugs in the benchmark suite — the
reproduction of the SIR "run the test suite to find a failure" step.
"""

from __future__ import annotations

import sys

from repro.lang import ast
from repro.lang.symbols import ClassTable
from repro.lang.types import ArrayType, BOOLEAN, ClassType, INT, Type
from repro.interp.natives import NativeFault, call_native
from repro.interp.values import (
    ArrayValue,
    BreakSignal,
    ContinueSignal,
    ExecutionResult,
    FuelExhausted,
    MJThrow,
    MJValue,
    ObjectValue,
    ReturnSignal,
    StaticStore,
    stringify,
    values_equal,
)

_MAX_FRAMES = 900


class _Frame:
    """One activation record: ``this`` plus a stack of local scopes."""

    __slots__ = ("this", "scopes")

    def __init__(self, this: ObjectValue | None) -> None:
        self.this = this
        self.scopes: list[dict[str, MJValue]] = [{}]

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, value: MJValue) -> None:
        self.scopes[-1][name] = value

    def get(self, name: str) -> MJValue:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise KeyError(name)

    def set(self, name: str, value: MJValue) -> None:
        for scope in reversed(self.scopes):
            if name in scope:
                scope[name] = value
                return
        raise KeyError(name)


class Interpreter:
    """Executes a type-checked MJ program."""

    def __init__(
        self,
        program: ast.Program,
        table: ClassTable,
        max_steps: int = 5_000_000,
    ) -> None:
        self.program = program
        self.table = table
        self.max_steps = max_steps
        self.statics = StaticStore()
        self.output: list[str] = []
        self.steps = 0
        self._frame_depth = 0

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run_main(self, args: list[str] | None = None) -> ExecutionResult:
        """Run static initializers then ``main(String[])``."""
        self.output = []
        self.steps = 0
        main = self._find_main()
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(200_000)
        try:
            self._run_static_initializers()
            array = ArrayValue(list(args or []))
            self._invoke(main[0], main[1], None, [array])
            return ExecutionResult(self.output, steps=self.steps)
        except MJThrow as thrown:
            return ExecutionResult(
                self.output,
                error=self._render_exception(thrown.value),
                error_class=thrown.value.class_name,
                steps=self.steps,
            )
        except FuelExhausted:
            return ExecutionResult(self.output, steps=self.steps, timed_out=True)
        finally:
            sys.setrecursionlimit(old_limit)

    def call_static(self, class_name: str, method_name: str, args: list[MJValue]):
        """Invoke a static method directly (used by tests)."""
        info = self.table.info(class_name)
        method = info.methods[method_name]
        return self._invoke(class_name, method, None, args)

    def _find_main(self) -> tuple[str, ast.MethodDecl]:
        for decl in self.program.classes:
            info = self.table.info(decl.name)
            method = info.methods.get("main")
            if method is not None and method.is_static:
                return decl.name, method
        raise RuntimeError("program has no static main method")

    def _run_static_initializers(self) -> None:
        for decl in self.program.classes:
            for field_decl in decl.fields:
                if field_decl.is_static:
                    value: MJValue = self._default(field_decl.declared_type)
                    self.statics.set(decl.name, field_decl.name, value)
        for decl in self.program.classes:
            frame = _Frame(None)
            for field_decl in decl.fields:
                if field_decl.is_static and field_decl.init is not None:
                    value = self._expr(field_decl.init, frame)
                    self.statics.set(decl.name, field_decl.name, value)

    def _render_exception(self, value: ObjectValue) -> str:
        message = value.fields.get("message")
        if isinstance(message, str):
            return f"{value.class_name}: {message}"
        return value.class_name

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------

    def _default(self, declared: Type) -> MJValue:
        if declared == INT:
            return 0
        if declared == BOOLEAN:
            return False
        return None

    def construct(self, class_name: str, args: list[MJValue]) -> ObjectValue:
        fields: dict[str, MJValue] = {}
        for ancestor in self.table.ancestors(class_name):
            info = self.table.info(ancestor)
            for name, decl in info.fields.items():
                if not decl.is_static and name not in fields:
                    fields[name] = self._default(decl.declared_type)
        obj = ObjectValue(class_name, fields)
        self._run_constructor(class_name, obj, args)
        return obj

    def _run_constructor(
        self, class_name: str, obj: ObjectValue, args: list[MJValue]
    ) -> None:
        if class_name == "Object":
            return
        info = self.table.info(class_name)
        ctor = info.constructor
        superclass = info.superclass or "Object"
        frame = _Frame(obj)
        body: list[ast.Stmt] = []
        explicit_super: ast.SuperCall | None = None
        if ctor is not None:
            for param, arg in zip(ctor.params, args):
                frame.declare(param.name, arg)
            body = list(ctor.body.statements)
            if body and isinstance(body[0], ast.ExprStmt):
                first = body[0].expr
                if isinstance(first, ast.SuperCall):
                    explicit_super = first
                    body = body[1:]
        if explicit_super is not None:
            super_args = [self._expr(a, frame) for a in explicit_super.args]
            self._run_constructor(superclass, obj, super_args)
        else:
            self._run_constructor(superclass, obj, [])
        decl = info.decl
        if decl is not None:
            init_frame = _Frame(obj)
            for field_decl in decl.fields:
                if not field_decl.is_static and field_decl.init is not None:
                    obj.fields[field_decl.name] = self._expr(
                        field_decl.init, init_frame
                    )
        for stmt in body:
            try:
                self._stmt(stmt, frame)
            except ReturnSignal:
                break

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _invoke(
        self,
        owner: str,
        method: ast.MethodDecl,
        this: ObjectValue | None,
        args: list[MJValue],
    ) -> MJValue:
        self._frame_depth += 1
        if self._frame_depth > _MAX_FRAMES:
            self._frame_depth -= 1
            self._throw("StackOverflowError", f"in {owner}.{method.name}")
        frame = _Frame(this)
        for param, arg in zip(method.params, args):
            frame.declare(param.name, arg)
        try:
            self._stmt(method.body, frame)
        except ReturnSignal as signal:
            return signal.value
        finally:
            self._frame_depth -= 1
        return None

    def _throw(self, exc_class: str, message: str) -> None:
        """Raise a builtin runtime exception as an MJ object."""
        obj = ObjectValue(exc_class, {"message": message})
        raise MJThrow(obj)

    def _exception_matches(self, value: ObjectValue, exc_type: Type) -> bool:
        if not isinstance(exc_type, ClassType):
            return False
        target = exc_type.name
        if target == "Object":
            return True
        if self.table.has_class(value.class_name):
            return self.table.is_subclass(value.class_name, target)
        return value.class_name == target

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise FuelExhausted()

    def _stmt(self, stmt: ast.Stmt, frame: _Frame) -> None:
        self._tick()
        handler = getattr(self, "_stmt_" + type(stmt).__name__)
        handler(stmt, frame)

    def _stmt_Block(self, stmt: ast.Block, frame: _Frame) -> None:
        frame.push()
        try:
            for child in stmt.statements:
                self._stmt(child, frame)
        finally:
            frame.pop()

    def _stmt_VarDecl(self, stmt: ast.VarDecl, frame: _Frame) -> None:
        if stmt.init is not None:
            value = self._expr(stmt.init, frame)
        else:
            value = self._default(stmt.declared_type)
        frame.declare(stmt.name, value)

    def _stmt_ExprStmt(self, stmt: ast.ExprStmt, frame: _Frame) -> None:
        self._expr(stmt.expr, frame)

    def _stmt_Assign(self, stmt: ast.Assign, frame: _Frame) -> None:
        value = self._expr(stmt.value, frame)
        if stmt.op is not None:
            old = self._read_lvalue(stmt.target, frame)
            value = self._binop_values(stmt.op, old, value, stmt)
        self._write_lvalue(stmt.target, value, frame)

    def _stmt_If(self, stmt: ast.If, frame: _Frame) -> None:
        if self._expr(stmt.condition, frame):
            self._stmt(stmt.then_branch, frame)
        elif stmt.else_branch is not None:
            self._stmt(stmt.else_branch, frame)

    def _stmt_While(self, stmt: ast.While, frame: _Frame) -> None:
        while self._expr(stmt.condition, frame):
            self._tick()
            try:
                self._stmt(stmt.body, frame)
            except BreakSignal:
                return
            except ContinueSignal:
                continue

    def _stmt_For(self, stmt: ast.For, frame: _Frame) -> None:
        frame.push()
        try:
            if stmt.init is not None:
                self._stmt(stmt.init, frame)
            while stmt.condition is None or self._expr(stmt.condition, frame):
                self._tick()
                try:
                    self._stmt(stmt.body, frame)
                except BreakSignal:
                    return
                except ContinueSignal:
                    pass
                if stmt.update is not None:
                    self._stmt(stmt.update, frame)
        finally:
            frame.pop()

    def _stmt_Return(self, stmt: ast.Return, frame: _Frame) -> None:
        value = None
        if stmt.value is not None:
            value = self._expr(stmt.value, frame)
        raise ReturnSignal(value)

    def _stmt_Break(self, stmt: ast.Break, frame: _Frame) -> None:
        raise BreakSignal()

    def _stmt_Continue(self, stmt: ast.Continue, frame: _Frame) -> None:
        raise ContinueSignal()

    def _stmt_Throw(self, stmt: ast.Throw, frame: _Frame) -> None:
        value = self._expr(stmt.value, frame)
        if value is None:
            self._throw("NullPointerException", "throw null")
        assert isinstance(value, ObjectValue)
        raise MJThrow(value)

    def _stmt_TryCatch(self, stmt: ast.TryCatch, frame: _Frame) -> None:
        try:
            self._stmt(stmt.try_block, frame)
        except MJThrow as thrown:
            if not self._exception_matches(thrown.value, stmt.exc_type):
                raise
            frame.push()
            try:
                frame.declare(stmt.exc_name, thrown.value)
                for child in stmt.catch_block.statements:
                    self._stmt(child, frame)
            finally:
                frame.pop()

    # ------------------------------------------------------------------
    # L-values
    # ------------------------------------------------------------------

    def _read_lvalue(self, target: ast.Expr, frame: _Frame) -> MJValue:
        return self._expr(target, frame)

    def _write_lvalue(self, target: ast.Expr, value: MJValue, frame: _Frame) -> None:
        if isinstance(target, ast.VarRef):
            kind, owner = target.resolution or ("", "")
            if kind == "local":
                frame.set(target.name, value)
                return
            if kind == "field":
                assert frame.this is not None
                frame.this.fields[target.name] = value
                return
            if kind == "static_field":
                self.statics.set(owner, target.name, value)
                return
            raise RuntimeError(f"bad assignment target {target.name}")
        if isinstance(target, ast.FieldAccess):
            kind, owner = target.resolution or ("", "")
            if kind == "static_field":
                self.statics.set(owner, target.name, value)
                return
            base = self._expr(target.target, frame)
            if base is None:
                self._throw("NullPointerException", f"write to {target.name} of null")
            assert isinstance(base, ObjectValue)
            base.fields[target.name] = value
            return
        if isinstance(target, ast.ArrayAccess):
            base = self._expr(target.target, frame)
            index = self._expr(target.index, frame)
            self._array_store(base, index, value)
            return
        raise RuntimeError("bad assignment target")

    def _array_store(self, base: MJValue, index: MJValue, value: MJValue) -> None:
        if base is None:
            self._throw("NullPointerException", "store into null array")
        assert isinstance(base, ArrayValue) and isinstance(index, int)
        if not 0 <= index < len(base.elements):
            self._throw(
                "ArrayIndexOutOfBoundsException",
                f"index {index}, length {len(base.elements)}",
            )
        base.elements[index] = value

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _expr(self, expr: ast.Expr, frame: _Frame) -> MJValue:
        handler = getattr(self, "_expr_" + type(expr).__name__)
        return handler(expr, frame)

    def _expr_IntLit(self, expr: ast.IntLit, frame):
        return expr.value

    def _expr_BoolLit(self, expr: ast.BoolLit, frame):
        return expr.value

    def _expr_StringLit(self, expr: ast.StringLit, frame):
        return expr.value

    def _expr_NullLit(self, expr, frame):
        return None

    def _expr_This(self, expr, frame: _Frame):
        return frame.this

    def _expr_VarRef(self, expr: ast.VarRef, frame: _Frame):
        kind, owner = expr.resolution or ("", "")
        if kind == "local":
            return frame.get(expr.name)
        if kind == "field":
            assert frame.this is not None
            return frame.this.fields.get(expr.name)
        if kind == "static_field":
            return self.statics.get(owner, expr.name)
        raise RuntimeError(f"class name {expr.name} used as value")

    def _expr_FieldAccess(self, expr: ast.FieldAccess, frame: _Frame):
        kind, owner = expr.resolution or ("", "")
        if kind == "static_field":
            return self.statics.get(owner, expr.name)
        base = self._expr(expr.target, frame)
        if kind == "array_length":
            if base is None:
                self._throw("NullPointerException", "length of null array")
            assert isinstance(base, ArrayValue)
            return len(base.elements)
        if base is None:
            self._throw("NullPointerException", f"read {expr.name} of null")
        assert isinstance(base, ObjectValue)
        return base.fields.get(expr.name)

    def _expr_ArrayAccess(self, expr: ast.ArrayAccess, frame: _Frame):
        base = self._expr(expr.target, frame)
        index = self._expr(expr.index, frame)
        if base is None:
            self._throw("NullPointerException", "load from null array")
        assert isinstance(base, ArrayValue) and isinstance(index, int)
        if not 0 <= index < len(base.elements):
            self._throw(
                "ArrayIndexOutOfBoundsException",
                f"index {index}, length {len(base.elements)}",
            )
        return base.elements[index]

    def _expr_Call(self, expr: ast.Call, frame: _Frame):
        self._tick()
        kind, owner = expr.resolution or ("", "")
        if kind == "builtin":
            args = [self._expr(a, frame) for a in expr.args]
            if expr.name == "print":
                self.output.append(stringify(args[0]))
                return None
            raise RuntimeError(f"unknown builtin {expr.name}")
        if kind == "native":
            assert expr.receiver is not None
            receiver = self._expr(expr.receiver, frame)
            args = [self._expr(a, frame) for a in expr.args]
            if receiver is None:
                self._throw(
                    "NullPointerException", f"call {expr.name}() on null String"
                )
            assert isinstance(receiver, str)
            try:
                return call_native(expr.name, receiver, args)
            except NativeFault as fault:
                self._throw(fault.exc_class, fault.message)
        if kind == "static":
            args = [self._expr(a, frame) for a in expr.args]
            found = self.table.lookup_method(owner, expr.name)
            assert found is not None
            return self._invoke(found[0], found[1], None, args)
        # virtual
        if expr.receiver is not None:
            receiver = self._expr(expr.receiver, frame)
        else:
            receiver = frame.this
        args = [self._expr(a, frame) for a in expr.args]
        if receiver is None:
            self._throw("NullPointerException", f"call {expr.name}() on null")
        assert isinstance(receiver, ObjectValue)
        target_owner, method = self.table.resolve_virtual(
            receiver.class_name, expr.name
        )
        return self._invoke(target_owner, method, receiver, args)

    def _expr_New(self, expr: ast.New, frame: _Frame):
        self._tick()
        args = [self._expr(a, frame) for a in expr.args]
        return self.construct(expr.class_name, args)

    def _expr_NewArray(self, expr: ast.NewArray, frame: _Frame):
        length = self._expr(expr.length, frame)
        assert isinstance(length, int)
        if length < 0:
            self._throw("NegativeArraySizeException", str(length))
        return ArrayValue([self._default(expr.element_type)] * length)

    def _expr_Binary(self, expr: ast.Binary, frame: _Frame):
        op = expr.op
        if op == "&&":
            return bool(self._expr(expr.left, frame)) and bool(
                self._expr(expr.right, frame)
            )
        if op == "||":
            return bool(self._expr(expr.left, frame)) or bool(
                self._expr(expr.right, frame)
            )
        left = self._expr(expr.left, frame)
        right = self._expr(expr.right, frame)
        return self._binop_values(op, left, right, expr)

    def _binop_values(self, op: str, left: MJValue, right: MJValue, node: ast.Node):
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                return stringify(left) + stringify(right)
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                self._throw("ArithmeticException", "/ by zero")
            quotient = abs(left) // abs(right)
            return quotient if (left < 0) == (right < 0) else -quotient
        if op == "%":
            if right == 0:
                self._throw("ArithmeticException", "% by zero")
            quotient = abs(left) // abs(right)
            quotient = quotient if (left < 0) == (right < 0) else -quotient
            return left - quotient * right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "==":
            return values_equal(left, right)
        if op == "!=":
            return not values_equal(left, right)
        raise RuntimeError(f"unknown operator {op}")

    def _expr_Unary(self, expr: ast.Unary, frame: _Frame):
        value = self._expr(expr.operand, frame)
        if expr.op == "!":
            return not value
        return -value

    def _expr_Cast(self, expr: ast.Cast, frame: _Frame):
        value = self._expr(expr.expr, frame)
        target = expr.target_type
        if value is None:
            return None
        if isinstance(target, ClassType):
            if target.name == "Object":
                return value
            if target.name == "String":
                if isinstance(value, str):
                    return value
                self._throw(
                    "ClassCastException", f"{type(value).__name__} to String"
                )
            if isinstance(value, ObjectValue) and self.table.has_class(
                value.class_name
            ):
                if self.table.is_subclass(value.class_name, target.name):
                    return value
                self._throw(
                    "ClassCastException", f"{value.class_name} to {target.name}"
                )
            self._throw("ClassCastException", f"value to {target.name}")
        if isinstance(target, ArrayType):
            if isinstance(value, ArrayValue):
                return value
            self._throw("ClassCastException", f"value to {target}")
        return value

    def _expr_InstanceOf(self, expr: ast.InstanceOf, frame: _Frame):
        value = self._expr(expr.expr, frame)
        if value is None:
            return False
        if expr.class_name == "Object":
            return True
        if expr.class_name == "String":
            return isinstance(value, str)
        if isinstance(value, ObjectValue) and self.table.has_class(value.class_name):
            return self.table.is_subclass(value.class_name, expr.class_name)
        return False

    def _expr_PostfixIncDec(self, expr: ast.PostfixIncDec, frame: _Frame):
        old = self._read_lvalue(expr.target, frame)
        assert isinstance(old, int)
        delta = 1 if expr.op == "+" else -1
        self._write_lvalue(expr.target, old + delta, frame)
        return old


def run_program(
    program: ast.Program,
    table: ClassTable,
    args: list[str] | None = None,
    max_steps: int = 5_000_000,
) -> ExecutionResult:
    """Convenience: run ``main`` of a checked program."""
    return Interpreter(program, table, max_steps=max_steps).run_main(args)
