"""Runtime values and control-flow signals for the MJ interpreter.

MJ values map onto Python values: ``int``/``bool``/``str`` for primitives
and strings, ``None`` for null, plus :class:`ObjectValue` and
:class:`ArrayValue` for heap data.  Reference equality is Python object
identity, except Strings, which MJ compares by content (documented
deviation from Java — MJ programs still use ``.equals`` idiomatically).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

MJValue = object  # int | bool | str | None | ObjectValue | ArrayValue

_object_ids = itertools.count(1)


class ObjectValue:
    """An MJ heap object: its runtime class and field map."""

    __slots__ = ("class_name", "fields", "object_id")

    def __init__(self, class_name: str, fields: dict[str, MJValue]) -> None:
        self.class_name = class_name
        self.fields = fields
        self.object_id = next(_object_ids)

    def __repr__(self) -> str:
        return f"{self.class_name}@{self.object_id}"


class ArrayValue:
    """An MJ array: fixed length, element list."""

    __slots__ = ("elements", "object_id")

    def __init__(self, elements: list[MJValue]) -> None:
        self.elements = elements
        self.object_id = next(_object_ids)

    def __len__(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:
        return f"array[{len(self.elements)}]@{self.object_id}"


def stringify(value: MJValue) -> str:
    """Convert a value to its printed form (MJ's implicit toString)."""
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (ObjectValue, ArrayValue)):
        return repr(value)
    return str(value)


def values_equal(a: MJValue, b: MJValue) -> bool:
    """MJ ``==``: primitive/String content equality, reference identity."""
    if isinstance(a, (ObjectValue, ArrayValue)) or isinstance(
        b, (ObjectValue, ArrayValue)
    ):
        return a is b
    if isinstance(a, bool) != isinstance(b, bool):
        return False  # int vs boolean never compares equal
    return a == b


# ---------------------------------------------------------------------------
# Control-flow signals (Python exceptions used internally)
# ---------------------------------------------------------------------------


class BreakSignal(Exception):
    pass


class ContinueSignal(Exception):
    pass


class ReturnSignal(Exception):
    def __init__(self, value: MJValue) -> None:
        self.value = value
        super().__init__()


class MJThrow(Exception):
    """An in-flight MJ exception (an ObjectValue being thrown)."""

    def __init__(self, value: ObjectValue) -> None:
        self.value = value
        super().__init__(repr(value))


class FuelExhausted(Exception):
    """The step budget ran out (runaway loop in an MJ program)."""


@dataclass
class ExecutionResult:
    """What happened when a program ran."""

    output: list[str]
    error: str | None = None  # rendered uncaught exception, if any
    error_class: str | None = None
    steps: int = 0
    timed_out: bool = False

    @property
    def failed(self) -> bool:
        return self.error is not None or self.timed_out

    def output_text(self) -> str:
        return "\n".join(self.output)


@dataclass
class StaticStore:
    """Static field storage: (class, field) -> value."""

    values: dict[tuple[str, str], MJValue] = field(default_factory=dict)

    def get(self, class_name: str, field_name: str) -> MJValue:
        return self.values.get((class_name, field_name))

    def set(self, class_name: str, field_name: str, value: MJValue) -> None:
        self.values[(class_name, field_name)] = value
