"""Multi-core execution: a spawn-safe, warm-reusable process pool.

The daemon's worker threads serialize CPU-bound analysis under the GIL,
so N threads on N cores deliver ~1x cold throughput.  This module moves
the analysis itself into worker *processes* while keeping the serving
logic (admission, cancellation, counters) in the parent's threads:

* **Spawn-safe** — workers are started with the ``spawn`` context, so a
  heavily threaded daemon never forks a copy of its own locks.  Workers
  are warm: each survives across tasks, keeping the imported package
  and the frontend's stdlib caches, so only the first task per worker
  pays start-up cost.
* **Per-task deadline enforcement** — a :class:`repro.budget.Budget`
  cannot be polled across a process boundary, so the parent enforces it
  from outside: the thread waiting on a worker polls the budget between
  pipe reads and, when it expires (deadline or cross-thread cancel),
  **kills the worker process** and respawns a replacement in the
  background.  The waiting thread unwinds with the usual
  :class:`~repro.budget.BudgetExceeded`, so the daemon's cancellation
  accounting is identical across executors.
* **Structured error transport** — a task that raises inside a worker
  comes back as :class:`WorkerError` carrying the original exception's
  type name, message, and traceback text; a worker that dies (crash,
  OOM-kill, injected fault) surfaces as :class:`WorkerCrashed`.  Raw
  pickled exception objects never cross the boundary.

**Flat artifacts.**  Workers return *flat artifact bytes*
(:func:`repro.artifact.encode_artifact`) rather than a monolithic
pickle: the parent stores the bytes unchanged into the disk tier and
opens an :class:`~repro.artifact.ArtifactView` over them — no unpickle
of the whole object graph on the hot path.  The encoder sorts each
node's edges, so every canonical section is a pure function of
``(source, options, package version)`` — byte-identical across workers,
restarts, and machines by construction, where the retired pickle path
needed ``PYTHONHASHSEED`` pinning plus ``None``-free hash tuples to get
the same guarantee.  (The pinned seed in :data:`DEFAULT_CHILD_ENV` is
kept: it keeps worker behavior reproducible run-to-run, which the fault
drills and benchmarks still appreciate.)
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import sys
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable

from repro.budget import Budget, BudgetExceeded
from repro.resources import (
    ResourceExceeded,
    apply_memory_rlimit,
    clear_memory_rlimit,
    process_rss_mb,
)

#: Environment pinned into every worker at spawn time.  A fixed hash
#: seed makes str-keyed set iteration deterministic across worker
#: processes — no longer load-bearing for artifact bytes (the flat
#: encoder sorts its sections), just run-to-run reproducibility.
DEFAULT_CHILD_ENV = {"PYTHONHASHSEED": "0"}

#: How long to wait for a freshly spawned worker's ready handshake.
SPAWN_TIMEOUT_S = 120.0

#: Poll interval while waiting on a busy worker (budget checks and
#: crash detection happen at this cadence).
_WAIT_SLICE_S = 0.05

#: Exit code used by the injected ``worker_process_crash`` fault, so a
#: drill-induced death is recognizable in logs.
CRASH_EXIT_CODE = 23

#: Serializes the os.environ mutation around Process.start(): the
#: ``spawn`` context passes the *current* environment to the child, so
#: the pinned child env must be installed exactly for the duration of
#: the start call.
_SPAWN_ENV_LOCK = threading.Lock()


class WorkerError(RuntimeError):
    """A task failed inside a worker; the original error, transported.

    ``error_type`` is the remote exception's class name (``MJSyntaxError``,
    ``ValueError``, ...), so the daemon can answer with exactly the same
    structured error type an in-process analysis would have produced.
    """

    def __init__(
        self, error_type: str, message: str, traceback_text: str = ""
    ) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message
        self.traceback_text = traceback_text


class WorkerCrashed(WorkerError):
    """A worker process died mid-task (crash, kill, injected fault)."""

    def __init__(self, message: str) -> None:
        super().__init__("WorkerCrashed", message)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _worker_main(conn: multiprocessing.connection.Connection) -> None:
    """Task loop of one worker process: recv task, run, send result.

    Failures are transported as ``("error", {...})`` payloads; only a
    process death (never an exception) leaves the loop without a
    response, and the parent detects that as EOF on the pipe.
    """
    conn.send(("ready", os.getpid()))
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:  # graceful shutdown sentinel
            break
        fn, args, kwargs = task
        try:
            result = fn(*args, **kwargs)
        except Exception as exc:
            payload = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            }
            try:
                conn.send(("error", payload))
            except (OSError, ValueError):
                break
        else:
            try:
                conn.send(("ok", result))
            except (OSError, ValueError):
                break
    conn.close()


def analyze_artifact(
    source: str,
    filename: str = "<input>",
    options: Any = None,
    *,
    memory_limit_mb: float = 0.0,
    inject_delay_s: float = 0.0,
    inject_crash: bool = False,
    inject_alloc_mb: float = 0.0,
) -> tuple[bytes, dict | None]:
    """Pool task: one cold analysis, returned as flat artifact bytes.

    Returns ``(payload, timings)`` where ``payload`` is the
    :func:`artifact_payload` bytes (canonical sections deterministic —
    see module docstring), stamped with the request's content key, and
    ``timings`` is the run's stage profile, shipped separately because
    wall times are per-run observability data, not artifact content.

    ``memory_limit_mb`` installs the in-worker ``RLIMIT_AS`` backstop
    (with headroom — the parent's RSS poll is the primary sentinel) and
    converts the resulting ``MemoryError`` into a structured
    :class:`~repro.resources.ResourceExceeded` for transport.

    ``inject_delay_s`` / ``inject_crash`` / ``inject_alloc_mb`` are the
    process-level fault dials (see
    :class:`repro.server.faults.FaultPlan`): the delay is a plain
    *non-cooperative* sleep — only a parent-side kill can end it early —
    the crash exits the process without a response, and the allocation
    pins that much extra RSS for long enough that the parent's memory
    poll observes it.
    """
    if inject_delay_s > 0:
        time.sleep(inject_delay_s)
    if inject_crash:
        os._exit(CRASH_EXIT_CODE)
    limited = memory_limit_mb > 0 and apply_memory_rlimit(memory_limit_mb)
    try:
        ballast = None
        if inject_alloc_mb > 0:
            try:
                ballast = bytearray(int(inject_alloc_mb * 1024 * 1024))
                # Hold the ballast across several parent poll cycles so
                # the RSS sentinel (50 ms cadence) reliably observes it.
                time.sleep(0.5)
            except MemoryError:
                raise ResourceExceeded(
                    "memory",
                    f"worker exceeded the {memory_limit_mb:g} MiB memory "
                    "limit (allocation failed under the rlimit backstop)",
                    limit_mb=memory_limit_mb,
                ) from None
        from repro import AnalyzeOptions, analyze
        from repro.artifact import content_key
        from repro.ir.instructions import reset_instruction_uids

        # One analysis per task and no surviving instructions between
        # tasks, so rewinding the uid counter is safe here (and only
        # here): it keeps instruction uids — which the artifact stores
        # as call-site ids — identical across workers and restarts.
        # The parent process must never do this: its incremental edit
        # sessions (repro.incremental) hold live instructions across
        # requests and only ever advance the counter.  The two schemes
        # coexist because artifact bytes encode call sites as *ranks*
        # within the uid order, not absolute uids, so a worker's cold
        # payload and the parent's incremental payload stay
        # byte-identical.
        reset_instruction_uids()
        # The frontend's stdlib AST cache bakes the filename string into
        # positions it reuses across analyses; interning keeps a warm
        # worker from mixing last task's string into this task's graph.
        filename = sys.intern(filename)
        try:
            resolved = options or AnalyzeOptions()
            analyzed = analyze(source, filename, options=resolved)
            payload = artifact_payload(
                analyzed, key=content_key(source, resolved)
            )
        except MemoryError:
            raise ResourceExceeded(
                "memory",
                f"worker exceeded the {memory_limit_mb:g} MiB memory limit "
                "(rlimit backstop fired mid-analysis)",
                limit_mb=memory_limit_mb,
            ) from None
        del ballast
        return payload, analyzed.timings
    finally:
        if limited:
            clear_memory_rlimit()


def artifact_payload(analyzed: Any, key: str = "") -> bytes:
    """Flat artifact bytes for an :class:`~repro.AnalyzedProgram`.

    Run timings are stripped by the encoder — they vary per run and are
    not artifact content; the request-scoped budget was already stripped
    by :func:`repro.analyze`.  ``key`` (the content address) is stamped
    into the artifact's META section so readers can validate it.
    """
    from repro.artifact import encode_artifact

    return encode_artifact(analyzed, key=key)


def load_artifact(payload: bytes) -> Any:
    """Materialize the rich program from artifact bytes.

    Opens a view over ``payload`` and takes the
    ``to_analyzed_program()`` escape hatch — callers that can work from
    the view directly should do that instead (see
    :class:`repro.server.cache.CacheEntry`).
    """
    from repro.artifact import ArtifactView

    return ArtifactView.from_buffer(payload).to_analyzed_program()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


@dataclass
class _Worker:
    process: Any
    conn: multiprocessing.connection.Connection
    pid: int
    tasks_done: int = 0
    #: Highest RSS sample observed for this worker (parent-side poll).
    peak_rss_mb: float = 0.0


@dataclass
class PoolStats:
    """Monotonic counters; read via :meth:`ProcessPool.stats`."""

    spawned_total: int = 0
    respawns: int = 0
    crashes: int = 0
    kills: int = 0
    #: Kills specifically for exceeding a task's memory limit (also
    #: counted in ``kills``).
    memory_kills: int = 0
    tasks_total: int = 0
    #: Highest RSS sample ever observed across all workers (MiB).
    peak_rss_mb: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "spawned_total": self.spawned_total,
            "respawns": self.respawns,
            "crashes": self.crashes,
            "kills": self.kills,
            "memory_kills": self.memory_kills,
            "tasks_total": self.tasks_total,
            "peak_rss_mb": round(self.peak_rss_mb, 1),
        }


class ProcessPool:
    """A warm pool of spawn-context worker processes.

    Tasks are module-level callables plus picklable arguments.
    :meth:`run` is synchronous and budget-aware: the calling thread
    owns one worker for the duration of the task and enforces the
    budget from outside the process (kill + background respawn).

    Workers are spawned lazily by default — a pool that never sees a
    cold analysis never pays a spawn — and kept warm afterwards; call
    :meth:`prestart` to pay all spawn costs up front (the daemon does
    this at boot).
    """

    def __init__(
        self,
        workers: int = 2,
        child_env: dict[str, str] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.child_env = (
            dict(DEFAULT_CHILD_ENV) if child_env is None else dict(child_env)
        )
        self._ctx = multiprocessing.get_context("spawn")
        self._cond = threading.Condition()
        self._idle: list[_Worker] = []
        self._live = 0  # spawned or being spawned, including busy workers
        self._closed = False
        self.counters = PoolStats()
        #: Peak RSS per live worker pid (pruned when a worker dies);
        #: surfaced through :meth:`stats` for the health RPC.
        self._worker_peaks: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        """Start one worker (caller already reserved a ``_live`` slot)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        # The spawn context re-runs the parent's __main__ in the child
        # when it looks like a plain script.  A REPL/stdin parent has
        # __file__ == "<stdin>" (no spec), which the child cannot
        # re-run; hiding the phantom __file__ for the duration of
        # start() makes spawn skip the main-module fixup entirely.
        main_module = sys.modules.get("__main__")
        phantom_main = (
            main_module is not None
            and getattr(main_module, "__spec__", None) is None
            and hasattr(main_module, "__file__")
            and not os.path.exists(getattr(main_module, "__file__", "") or "")
        )
        with _SPAWN_ENV_LOCK:
            saved: dict[str, str | None] = {}
            for key, value in self.child_env.items():
                saved[key] = os.environ.get(key)
                os.environ[key] = value
            if phantom_main:
                saved_file = main_module.__file__
                del main_module.__file__
            try:
                process.start()
            finally:
                if phantom_main:
                    main_module.__file__ = saved_file
                for key, value in saved.items():
                    if value is None:
                        os.environ.pop(key, None)
                    else:
                        os.environ[key] = value
        child_conn.close()
        if not parent_conn.poll(SPAWN_TIMEOUT_S):
            process.kill()
            process.join(timeout=5)
            parent_conn.close()
            raise WorkerCrashed("worker failed its ready handshake")
        status, pid = parent_conn.recv()
        assert status == "ready", status
        with self._cond:
            self.counters.spawned_total += 1
        return _Worker(process=process, conn=parent_conn, pid=pid)

    def prestart(self, wait: bool = True) -> None:
        """Spawn up to ``workers`` idle workers now instead of lazily."""
        spawned: list[threading.Thread] = []
        while True:
            with self._cond:
                if self._closed or self._live >= self.workers:
                    break
                self._live += 1
            thread = threading.Thread(target=self._spawn_into_idle, daemon=True)
            thread.start()
            spawned.append(thread)
        if wait:
            for thread in spawned:
                thread.join()

    def _spawn_into_idle(self) -> None:
        try:
            worker = self._spawn_worker()
        except Exception:
            with self._cond:
                self._live -= 1
                self._cond.notify_all()
            return
        with self._cond:
            if self._closed:
                self._shutdown_worker(worker)
                self._live -= 1
            else:
                self._idle.append(worker)
            self._cond.notify_all()

    def close(self) -> None:
        """Stop every worker; busy ones are killed (shutdown semantics)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            self._cond.notify_all()
        for worker in idle:
            self._shutdown_worker(worker)

    def _shutdown_worker(self, worker: _Worker) -> None:
        try:
            worker.conn.send(None)
        except (OSError, ValueError):
            pass
        worker.process.join(timeout=2)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=5)
        worker.conn.close()
        with self._cond:
            self._worker_peaks.pop(worker.pid, None)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        /,
        *args: Any,
        budget: Budget | None = None,
        rss_limit_mb: float | None = None,
        **kwargs: Any,
    ) -> Any:
        """Run ``fn(*args, **kwargs)`` on a worker; block for the result.

        While waiting, the budget is polled every ~50 ms; on expiry or
        cross-thread cancellation the worker process is **killed**, a
        replacement is respawned in the background, and
        :class:`~repro.budget.BudgetExceeded` propagates exactly as a
        cooperative in-process cancellation would.

        ``rss_limit_mb`` arms the memory sentinel on the same cadence:
        each wake samples the worker's resident set (and records its
        peak); a worker that outgrows the limit is killed and respawned
        exactly like a deadline overrun, but the caller unwinds with a
        structured :class:`~repro.resources.ResourceExceeded` instead
        of an uncontrolled OOM kill taking the worker (or the host)
        down.  Where RSS cannot be sampled the in-worker rlimit
        backstop (see :func:`analyze_artifact`) is the only cap.
        """
        worker = self._acquire(budget)
        healthy = False
        sample_rss = True  # turned off after a failed /proc read
        try:
            try:
                worker.conn.send((fn, args, kwargs))
            except (OSError, ValueError):
                self._discard(worker, crashed=True)
                raise WorkerCrashed(
                    f"worker pid {worker.pid} died between tasks"
                ) from None
            while True:
                try:
                    if worker.conn.poll(_WAIT_SLICE_S):
                        status, payload = worker.conn.recv()
                        worker.tasks_done += 1
                        with self._cond:
                            self.counters.tasks_total += 1
                        if status == "ok":
                            healthy = True
                            return payload
                        healthy = True
                        raise WorkerError(
                            payload["type"],
                            payload["message"],
                            payload.get("traceback", ""),
                        )
                except (EOFError, OSError):
                    exit_code = self._discard(worker, crashed=True)
                    raise WorkerCrashed(
                        f"analysis worker pid {worker.pid} died mid-task "
                        f"(exit code {exit_code})"
                    ) from None
                if sample_rss:
                    rss = process_rss_mb(worker.pid)
                    if rss is None:
                        sample_rss = False
                    else:
                        self._note_rss(worker, rss)
                        if rss_limit_mb is not None and rss > rss_limit_mb:
                            self._discard(worker, crashed=False, memory=True)
                            raise ResourceExceeded(
                                "memory",
                                f"analysis worker pid {worker.pid} exceeded "
                                f"the {rss_limit_mb:g} MiB memory limit "
                                f"(observed {rss:.0f} MiB RSS); worker "
                                "killed and respawned",
                                limit_mb=rss_limit_mb,
                                observed_mb=rss,
                            )
                if budget is not None and budget.expired():
                    self._discard(worker, crashed=False)
                    budget.check()  # raises with the precise reason
                    raise BudgetExceeded(  # pragma: no cover — check() raced
                        "deadline", "budget expired while awaiting a worker"
                    )
        finally:
            if healthy:
                self._release(worker)

    def _note_rss(self, worker: _Worker, rss: float) -> None:
        """Record one RSS sample into the per-worker and pool peaks."""
        if rss <= worker.peak_rss_mb:
            return
        worker.peak_rss_mb = rss
        with self._cond:
            self._worker_peaks[worker.pid] = rss
            if rss > self.counters.peak_rss_mb:
                self.counters.peak_rss_mb = rss

    def _acquire(self, budget: Budget | None) -> _Worker:
        """Claim an idle worker, spawning one if below capacity."""
        while True:
            with self._cond:
                if self._closed:
                    raise RuntimeError("pool is closed")
                if self._idle:
                    return self._idle.pop()
                if self._live < self.workers:
                    self._live += 1
                    break
                self._cond.wait(_WAIT_SLICE_S)
            if budget is not None:
                budget.check()
        try:
            return self._spawn_worker()
        except BaseException:
            with self._cond:
                self._live -= 1
                self._cond.notify_all()
            raise

    def _release(self, worker: _Worker) -> None:
        with self._cond:
            if self._closed:
                pass  # fall through to shutdown outside the lock
            else:
                self._idle.append(worker)
                self._cond.notify_all()
                return
        self._shutdown_worker(worker)

    def _discard(
        self, worker: _Worker, crashed: bool, memory: bool = False
    ) -> int | None:
        """Kill a bad/overdue worker, free its slot, respawn in background."""
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5)
        exit_code = worker.process.exitcode
        worker.conn.close()
        with self._cond:
            self._live -= 1
            self._worker_peaks.pop(worker.pid, None)
            if crashed:
                self.counters.crashes += 1
            else:
                self.counters.kills += 1
                if memory:
                    self.counters.memory_kills += 1
            self.counters.respawns += 1
            closed = self._closed
            self._cond.notify_all()
        if not closed:
            # Replace the dead worker off the caller's critical path so
            # the daemon's slot (busy counter) frees immediately.
            with self._cond:
                if self._live < self.workers:
                    self._live += 1
                    threading.Thread(
                        target=self._spawn_into_idle, daemon=True
                    ).start()
        return exit_code

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._cond:
            return {
                "workers": self.workers,
                "live": self._live,
                "idle": len(self._idle),
                "worker_peak_rss_mb": {
                    str(pid): round(peak, 1)
                    for pid, peak in sorted(self._worker_peaks.items())
                },
                **self.counters.as_dict(),
            }

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
