"""Binary layout of the flat, mmap-able analysis artifact.

One artifact file is a header plus a table of named sections::

    offset 0   magic       8 bytes  b"REPROSDG"
    offset 8   format      u32      ARTIFACT_FORMAT
    offset 12  sections    u32      section count S
    offset 16  file_crc    u32      crc32 of the whole file with this
                                    field zeroed (torn-write detector)
    offset 20  table       S x (tag 4s, offset u64, length u64,
                                crc u32 of the payload bytes)
    ...        section payloads, 8-byte aligned, in table order

All integers are little-endian.  Section payloads are struct-of-arrays
views over the SDG — fixed-width per-node and per-edge arrays that a
reader can address directly through ``memoryview.cast`` on a read-only
``mmap`` without materializing a single Python object per node:

========  =============================================================
``META``  JSON (sorted keys): package version, cache key, filename,
          analyze options, stats counts, user-source length.
``STRS``  Interned string table: u32 count, u32 offsets[count+1],
          then the concatenated UTF-8 bytes (function names).
``KIND``  u8[N] node kind (see :data:`NODE_KINDS`).
``LINE``  i32[N] 1-based source line (0 for positionless nodes).
``SITE``  u32[N] call-site uid for actual-in/out and call statements,
          :data:`NO_SITE` otherwise (tabulation's site matching).
``EIDX``  u32[N+1] CSR row index into ``ETGT``/``EKND``.
``ETGT``  u32[E] backward edge targets (the nodes depended on).
``EKND``  u8[E] edge kind (``EdgeKind.index``).
``LKEY``  i32[L] sorted distinct seed lines.
``LIDX``  u32[L+1] CSR row index into ``LNOD``.
``LNOD``  u32[*] statement-node ids per seed line (slice seeds).
``FUNC``  u32[F*3] per-function (name ref into STRS, node start,
          node end): nodes are renumbered contiguously per function,
          so each function owns one offset-indexed id range.
``SRC ``  UTF-8 full program text (user source + appended stdlib).
``RICH``  optional pickle of the full ``AnalyzedProgram`` (timings
          stripped) — the ``to_analyzed_program()`` escape hatch.
          Never touched by the slice fast path, so its pages are
          never faulted in on a warm-disk slice.
========  =============================================================

Node ids are dense ints ``0..N-1``; edges are stored backward (the
direction every slicer walks), per-node lists sorted by (target, kind)
so the encoding is canonical: every section except ``RICH`` is a pure
function of ``(source, options, package version)``.
"""

from __future__ import annotations

import struct
import zlib

MAGIC = b"REPROSDG"

#: Version of this binary layout; bumped on any incompatible change.
#: Format 2 added the whole-file crc32 header field and per-section
#: crc32 digests in the table; format-1 files are lazily re-encoded by
#: :func:`repro.artifact.encode.migrate_flat_v1` the first time the
#: store reads them (mirroring the format-2-pickle migration path).
ARTIFACT_FORMAT = 2

#: Sentinel in ``SITE`` for nodes that belong to no call site.
NO_SITE = 0xFFFFFFFF

#: ``KIND`` codes, index-aligned with :data:`NODE_ROLES`.
KIND_STMT = 0
KIND_ENTRY = 1
KIND_FORMAL_IN = 2
KIND_FORMAL_OUT = 3
KIND_ACTUAL_IN = 4
KIND_ACTUAL_OUT = 5

#: ``KIND`` code -> tabulation role name (None for plain statements).
NODE_ROLES = (None, "entry", "formal_in", "formal_out", "actual_in", "actual_out")

#: ParamNode role -> ``KIND`` code.
KIND_OF_ROLE = {
    "entry": KIND_ENTRY,
    "formal_in": KIND_FORMAL_IN,
    "formal_out": KIND_FORMAL_OUT,
    "actual_in": KIND_ACTUAL_IN,
    "actual_out": KIND_ACTUAL_OUT,
}

_HEADER = struct.Struct("<8sIII")
_ENTRY = struct.Struct("<4sQQI")

#: Byte offset of the whole-file crc32 field inside the header.
_FILE_CRC_OFFSET = 16

#: Format-1 layout (no digests) — kept so the store can detect old
#: files and tests can fabricate them for the migration path.
_HEADER_V1 = struct.Struct("<8sII")
_ENTRY_V1 = struct.Struct("<4sQQ")

#: Sections whose bytes are canonical (everything but the pickle).
CANONICAL_TAGS = (
    b"META", b"STRS", b"KIND", b"LINE", b"SITE", b"EIDX", b"ETGT",
    b"EKND", b"LKEY", b"LIDX", b"LNOD", b"FUNC", b"SRC ",
)


class ArtifactError(ValueError):
    """A buffer that is not a valid artifact (bad magic, truncated
    sections, wrong format/package version, key mismatch)."""


class ArtifactFormatError(ArtifactError):
    """The buffer is an artifact, but from another layout version.

    Carries the ``found`` format so the store can distinguish "old
    format, migrate it" from "future format, discard it".
    """

    def __init__(self, found: int) -> None:
        super().__init__(
            f"artifact format {found} != supported format {ARTIFACT_FORMAT}"
        )
        self.found = found


class ArtifactDigestError(ArtifactError):
    """Stored bytes do not match their recorded crc32 digest —
    bit rot, a torn write, or a tampered file."""


class ArtifactStaleError(ArtifactError):
    """The artifact is intact but no longer usable — written by another
    package version or filed under the wrong cache key.  Stale files
    are discarded (re-encoded on the next miss); corrupt files are
    quarantined."""


def _pad8(length: int) -> int:
    return (8 - length % 8) % 8


def pack_sections(sections: list[tuple[bytes, bytes]]) -> bytes:
    """Assemble header + digest table + 8-byte-aligned payloads.

    Each table entry records ``crc32(payload)``; the header records a
    whole-file crc computed over the finished buffer with the crc field
    itself zeroed, so a single C-speed pass can prove the file intact
    before any section bytes are trusted.
    """
    table_size = _HEADER.size + _ENTRY.size * len(sections)
    offset = table_size + _pad8(table_size)
    entries = []
    chunks = []
    for tag, payload in sections:
        assert len(tag) == 4, tag
        entries.append(
            _ENTRY.pack(tag, offset, len(payload), zlib.crc32(payload))
        )
        chunks.append(payload)
        pad = _pad8(len(payload))
        if pad:
            chunks.append(b"\x00" * pad)
        offset += len(payload) + pad
    head = _HEADER.pack(MAGIC, ARTIFACT_FORMAT, len(sections), 0)
    parts = [head, *entries]
    pad = _pad8(table_size)
    if pad:
        parts.append(b"\x00" * pad)
    parts.extend(chunks)
    buffer = bytearray(b"".join(parts))
    struct.pack_into("<I", buffer, _FILE_CRC_OFFSET, _file_crc(buffer))
    return bytes(buffer)


def _file_crc(buffer) -> int:
    """crc32 of ``buffer`` with the header crc field treated as zero.

    Works on any buffer (bytes, memoryview, mmap) without copying it:
    the crc is streamed around the 4 header bytes being excluded.
    """
    view = memoryview(buffer)
    crc = zlib.crc32(view[:_FILE_CRC_OFFSET])
    crc = zlib.crc32(b"\x00\x00\x00\x00", crc)
    return zlib.crc32(view[_FILE_CRC_OFFSET + 4 :], crc)


def verify_file_digest(buffer) -> None:
    """Check the whole-file crc32 (the ``verify="header"`` level).

    One sequential :func:`zlib.crc32` pass over the mapping — this
    catches any random corruption anywhere in the file, including in
    the section table itself, before a single array read trusts it.
    """
    if len(buffer) < _HEADER.size:
        raise ArtifactError("buffer shorter than the artifact header")
    (recorded,) = struct.unpack_from("<I", buffer, _FILE_CRC_OFFSET)
    actual = _file_crc(buffer)
    if actual != recorded:
        raise ArtifactDigestError(
            f"file digest mismatch: crc32 {actual:#010x} != "
            f"recorded {recorded:#010x}"
        )


def verify_section_digests(buffer, sections: dict[bytes, tuple[int, int]]) -> None:
    """Check every per-section crc32 (part of ``verify="deep"``).

    Localizes corruption to one named section — the quarantine report
    says *which* array rotted, not just "the file is bad".
    """
    view = memoryview(buffer)
    for index, (tag, (offset, length)) in enumerate(sections.items()):
        (recorded,) = struct.unpack_from(
            "<I",
            buffer,
            _HEADER.size + _ENTRY.size * index + _ENTRY.size - 4,
        )
        actual = zlib.crc32(view[offset : offset + length])
        if actual != recorded:
            raise ArtifactDigestError(
                f"section {tag!r} digest mismatch: crc32 {actual:#010x}"
                f" != recorded {recorded:#010x}"
            )


def parse_sections(buffer) -> dict[bytes, tuple[int, int]]:
    """Validate the header and return ``{tag: (offset, length)}``.

    Every section must lie entirely inside ``buffer`` — a torn write
    that truncated the file fails here instead of producing a view
    whose array reads walk off the end of the mapping.  Digest checks
    are separate (:func:`verify_file_digest`,
    :func:`verify_section_digests`) so callers choose how much
    verification the open pays for.
    """
    size = len(buffer)
    if size < _HEADER.size:
        raise ArtifactError("buffer shorter than the artifact header")
    magic, fmt, count, _file_digest = _HEADER.unpack_from(buffer, 0)
    if magic != MAGIC:
        raise ArtifactError("bad magic: not an artifact file")
    if fmt != ARTIFACT_FORMAT:
        raise ArtifactFormatError(fmt)
    table_end = _HEADER.size + _ENTRY.size * count
    if size < table_end:
        raise ArtifactError("truncated section table")
    sections: dict[bytes, tuple[int, int]] = {}
    for index in range(count):
        tag, offset, length, _crc = _ENTRY.unpack_from(
            buffer, _HEADER.size + _ENTRY.size * index
        )
        if offset + length > size:
            raise ArtifactError(
                f"section {tag!r} overruns the buffer (torn write?)"
            )
        sections[tag] = (offset, length)
    return sections


# ----------------------------------------------------------------------
# Format-1 compatibility (no digests) — read side for lazy migration,
# write side for tests that fabricate old files.
# ----------------------------------------------------------------------


def pack_sections_v1(sections: list[tuple[bytes, bytes]]) -> bytes:
    """Assemble a format-1 artifact (header + digest-less table)."""
    table_size = _HEADER_V1.size + _ENTRY_V1.size * len(sections)
    offset = table_size + _pad8(table_size)
    entries = []
    chunks = []
    for tag, payload in sections:
        assert len(tag) == 4, tag
        entries.append(_ENTRY_V1.pack(tag, offset, len(payload)))
        chunks.append(payload)
        pad = _pad8(len(payload))
        if pad:
            chunks.append(b"\x00" * pad)
        offset += len(payload) + pad
    head = _HEADER_V1.pack(MAGIC, 1, len(sections))
    parts = [head, *entries]
    pad = _pad8(table_size)
    if pad:
        parts.append(b"\x00" * pad)
    parts.extend(chunks)
    return b"".join(parts)


def parse_sections_v1(buffer) -> dict[bytes, tuple[int, int]]:
    """Parse a format-1 buffer (used only by the migration path)."""
    size = len(buffer)
    if size < _HEADER_V1.size:
        raise ArtifactError("buffer shorter than the artifact header")
    magic, fmt, count = _HEADER_V1.unpack_from(buffer, 0)
    if magic != MAGIC:
        raise ArtifactError("bad magic: not an artifact file")
    if fmt != 1:
        raise ArtifactFormatError(fmt)
    table_end = _HEADER_V1.size + _ENTRY_V1.size * count
    if size < table_end:
        raise ArtifactError("truncated section table")
    sections: dict[bytes, tuple[int, int]] = {}
    for index in range(count):
        tag, offset, length = _ENTRY_V1.unpack_from(
            buffer, _HEADER_V1.size + _ENTRY_V1.size * index
        )
        if offset + length > size:
            raise ArtifactError(
                f"section {tag!r} overruns the buffer (torn write?)"
            )
        sections[tag] = (offset, length)
    return sections
