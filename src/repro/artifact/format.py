"""Binary layout of the flat, mmap-able analysis artifact.

One artifact file is a header plus a table of named sections::

    offset 0   magic       8 bytes  b"REPROSDG"
    offset 8   format      u32      ARTIFACT_FORMAT
    offset 12  sections    u32      section count S
    offset 16  table       S x (tag 4s, offset u64, length u64)
    ...        section payloads, 8-byte aligned, in table order

All integers are little-endian.  Section payloads are struct-of-arrays
views over the SDG — fixed-width per-node and per-edge arrays that a
reader can address directly through ``memoryview.cast`` on a read-only
``mmap`` without materializing a single Python object per node:

========  =============================================================
``META``  JSON (sorted keys): package version, cache key, filename,
          analyze options, stats counts, user-source length.
``STRS``  Interned string table: u32 count, u32 offsets[count+1],
          then the concatenated UTF-8 bytes (function names).
``KIND``  u8[N] node kind (see :data:`NODE_KINDS`).
``LINE``  i32[N] 1-based source line (0 for positionless nodes).
``SITE``  u32[N] call-site uid for actual-in/out and call statements,
          :data:`NO_SITE` otherwise (tabulation's site matching).
``EIDX``  u32[N+1] CSR row index into ``ETGT``/``EKND``.
``ETGT``  u32[E] backward edge targets (the nodes depended on).
``EKND``  u8[E] edge kind (``EdgeKind.index``).
``LKEY``  i32[L] sorted distinct seed lines.
``LIDX``  u32[L+1] CSR row index into ``LNOD``.
``LNOD``  u32[*] statement-node ids per seed line (slice seeds).
``FUNC``  u32[F*3] per-function (name ref into STRS, node start,
          node end): nodes are renumbered contiguously per function,
          so each function owns one offset-indexed id range.
``SRC ``  UTF-8 full program text (user source + appended stdlib).
``RICH``  optional pickle of the full ``AnalyzedProgram`` (timings
          stripped) — the ``to_analyzed_program()`` escape hatch.
          Never touched by the slice fast path, so its pages are
          never faulted in on a warm-disk slice.
========  =============================================================

Node ids are dense ints ``0..N-1``; edges are stored backward (the
direction every slicer walks), per-node lists sorted by (target, kind)
so the encoding is canonical: every section except ``RICH`` is a pure
function of ``(source, options, package version)``.
"""

from __future__ import annotations

import struct

MAGIC = b"REPROSDG"

#: Version of this binary layout; bumped on any incompatible change.
ARTIFACT_FORMAT = 1

#: Sentinel in ``SITE`` for nodes that belong to no call site.
NO_SITE = 0xFFFFFFFF

#: ``KIND`` codes, index-aligned with :data:`NODE_ROLES`.
KIND_STMT = 0
KIND_ENTRY = 1
KIND_FORMAL_IN = 2
KIND_FORMAL_OUT = 3
KIND_ACTUAL_IN = 4
KIND_ACTUAL_OUT = 5

#: ``KIND`` code -> tabulation role name (None for plain statements).
NODE_ROLES = (None, "entry", "formal_in", "formal_out", "actual_in", "actual_out")

#: ParamNode role -> ``KIND`` code.
KIND_OF_ROLE = {
    "entry": KIND_ENTRY,
    "formal_in": KIND_FORMAL_IN,
    "formal_out": KIND_FORMAL_OUT,
    "actual_in": KIND_ACTUAL_IN,
    "actual_out": KIND_ACTUAL_OUT,
}

_HEADER = struct.Struct("<8sII")
_ENTRY = struct.Struct("<4sQQ")

#: Sections whose bytes are canonical (everything but the pickle).
CANONICAL_TAGS = (
    b"META", b"STRS", b"KIND", b"LINE", b"SITE", b"EIDX", b"ETGT",
    b"EKND", b"LKEY", b"LIDX", b"LNOD", b"FUNC", b"SRC ",
)


class ArtifactError(ValueError):
    """A buffer that is not a valid artifact (bad magic, truncated
    sections, wrong format/package version, key mismatch)."""


def _pad8(length: int) -> int:
    return (8 - length % 8) % 8


def pack_sections(sections: list[tuple[bytes, bytes]]) -> bytes:
    """Assemble header + table + 8-byte-aligned payloads."""
    table_size = _HEADER.size + _ENTRY.size * len(sections)
    offset = table_size + _pad8(table_size)
    entries = []
    chunks = []
    for tag, payload in sections:
        assert len(tag) == 4, tag
        entries.append(_ENTRY.pack(tag, offset, len(payload)))
        chunks.append(payload)
        pad = _pad8(len(payload))
        if pad:
            chunks.append(b"\x00" * pad)
        offset += len(payload) + pad
    head = _HEADER.pack(MAGIC, ARTIFACT_FORMAT, len(sections))
    parts = [head, *entries]
    pad = _pad8(table_size)
    if pad:
        parts.append(b"\x00" * pad)
    parts.extend(chunks)
    return b"".join(parts)


def parse_sections(buffer) -> dict[bytes, tuple[int, int]]:
    """Validate the header and return ``{tag: (offset, length)}``.

    Every section must lie entirely inside ``buffer`` — a torn write
    that truncated the file fails here instead of producing a view
    whose array reads walk off the end of the mapping.
    """
    size = len(buffer)
    if size < _HEADER.size:
        raise ArtifactError("buffer shorter than the artifact header")
    magic, fmt, count = _HEADER.unpack_from(buffer, 0)
    if magic != MAGIC:
        raise ArtifactError("bad magic: not an artifact file")
    if fmt != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"artifact format {fmt} != supported format {ARTIFACT_FORMAT}"
        )
    table_end = _HEADER.size + _ENTRY.size * count
    if size < table_end:
        raise ArtifactError("truncated section table")
    sections: dict[bytes, tuple[int, int]] = {}
    for index in range(count):
        tag, offset, length = _ENTRY.unpack_from(
            buffer, _HEADER.size + _ENTRY.size * index
        )
        if offset + length > size:
            raise ArtifactError(
                f"section {tag!r} overruns the buffer (torn write?)"
            )
        sections[tag] = (offset, length)
    return sections
