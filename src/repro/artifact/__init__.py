"""Flat, versioned, mmap-able analysis artifacts.

The write side (:func:`encode_artifact`) flattens an
:class:`~repro.AnalyzedProgram` into struct-of-arrays sections; the read
side (:class:`ArtifactView`) maps those bytes read-only and serves the
slicers directly — see :mod:`repro.artifact.format` for the layout.
"""

from repro.artifact.format import ARTIFACT_FORMAT, MAGIC, NO_SITE, ArtifactError
from repro.artifact.encode import canonical_bytes, content_key, encode_artifact
from repro.artifact.view import ArtifactView

__all__ = [
    "ARTIFACT_FORMAT",
    "MAGIC",
    "NO_SITE",
    "ArtifactError",
    "ArtifactView",
    "canonical_bytes",
    "content_key",
    "encode_artifact",
]
