"""Flat, versioned, mmap-able analysis artifacts.

The write side (:func:`encode_artifact`) flattens an
:class:`~repro.AnalyzedProgram` into struct-of-arrays sections; the read
side (:class:`ArtifactView`) maps those bytes read-only and serves the
slicers directly — see :mod:`repro.artifact.format` for the layout.
Format 2 carries crc32 digests (whole-file + per-section) so
``ArtifactView.open(verify=...)`` rejects corrupt bytes at load time.
"""

from repro.artifact.format import (
    ARTIFACT_FORMAT,
    MAGIC,
    NO_SITE,
    ArtifactDigestError,
    ArtifactError,
    ArtifactFormatError,
    ArtifactStaleError,
    verify_file_digest,
)
from repro.artifact.encode import (
    canonical_bytes,
    content_key,
    encode_artifact,
    migrate_flat_v1,
)
from repro.artifact.view import VERIFY_LEVELS, ArtifactView

__all__ = [
    "ARTIFACT_FORMAT",
    "MAGIC",
    "NO_SITE",
    "VERIFY_LEVELS",
    "ArtifactDigestError",
    "ArtifactError",
    "ArtifactFormatError",
    "ArtifactStaleError",
    "ArtifactView",
    "canonical_bytes",
    "content_key",
    "encode_artifact",
    "migrate_flat_v1",
    "verify_file_digest",
]
