"""Encoding: :class:`~repro.AnalyzedProgram` -> flat artifact bytes.

The encoder flattens the SDG into the struct-of-arrays sections of
:mod:`repro.artifact.format`.  Nodes are renumbered densely, grouped by
owning function (sorted by name, content-sorted within a function), each
node's backward edges are sorted by ``(target, kind)``, and call-site
uids are rank-normalized — so every section except the optional ``RICH``
pickle is byte-identical across processes, hash seeds, restarts, and
machines, no matter what the encoding process compiled beforehand.
That property is what retired the ``_NIL`` hash workarounds the
serialize-once pickle path used to need (see
:mod:`repro.analysis.heapmodel`).
"""

from __future__ import annotations

import array
import hashlib
import json
import pickle
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.ir import instructions as ins
from repro.sdg.nodes import ParamNode, StmtNode, node_position
from repro.artifact.format import (
    CANONICAL_TAGS,
    KIND_OF_ROLE,
    KIND_STMT,
    NO_SITE,
    ArtifactError,
    ArtifactStaleError,
    pack_sections,
    parse_sections,
    parse_sections_v1,
)

if TYPE_CHECKING:  # pragma: no cover - the package imports us at init
    from repro import AnalyzedProgram, AnalyzeOptions


def content_key(source: str, options: "AnalyzeOptions") -> str:
    """Content address of one ``(source, options)`` analysis request.

    Hashes the package version, the options token, and the exact text
    the frontend would consume — the same key the server cache uses
    (:func:`repro.server.cache.cache_key` delegates here), so a worker
    process can stamp the key into the artifact it encodes without
    asking the parent.
    """
    from repro import __version__
    from repro.frontend import source_fingerprint

    hasher = hashlib.sha256()
    hasher.update(f"repro/{__version__}\n".encode("utf-8"))
    hasher.update(options.cache_token().encode("utf-8"))
    hasher.update(b"\n")
    hasher.update(
        source_fingerprint(source, options.include_stdlib).encode("utf-8")
    )
    return hasher.hexdigest()


def _options_meta(options: "AnalyzeOptions") -> dict:
    return {
        "include_stdlib": options.include_stdlib,
        "containers": (
            None if options.containers is None else sorted(options.containers)
        ),
        "heap_mode": options.heap_mode,
        "include_control": options.include_control,
    }


def _context_key(context) -> tuple:
    """Total, content-derived order over object-sensitivity contexts."""
    if context is None:
        return ()
    return (
        context.site,
        context.class_name,
        context.kind,
        context.label,
        _context_key(context.context),
    )


def _node_key(node) -> tuple:
    """Canonical within-function sort key, injective over node identity.

    SDG construction touches hash-ordered sets (points-to frozensets,
    instance sets), so ``add_node`` insertion order varies with the
    interpreter's hash seed; sorting by content is what makes the
    encoding a pure function of the analysis result.
    """
    if isinstance(node, StmtNode):
        return (0, node.instr.uid, "", "", _context_key(node.context))
    position = node_position(node)
    return (
        1,
        node.site,
        node.role,
        node.slot,
        _context_key(node.context),
        position.line,
        position.column,
    )


def _node_order(sdg) -> tuple[list, dict, list[tuple[str, int, int]]]:
    """Dense renumbering grouped by function.

    Functions sort by name; nodes within a function sort by
    :func:`_node_key`.  Both orders are derived from node *content*, so
    the numbering — and with it every canonical section — is identical
    across processes, hash seeds, restarts, and machines.
    """
    by_func: dict[str, list] = {}
    for node, proc in sdg.proc_of.items():
        by_func.setdefault(proc, []).append(node)
    ordered: list = []
    index: dict = {}
    functions: list[tuple[str, int, int]] = []
    for name in sorted(by_func):
        start = len(ordered)
        for node in sorted(by_func[name], key=_node_key):
            index[node] = len(ordered)
            ordered.append(node)
        functions.append((name, start, len(ordered)))
    return ordered, index, functions


def _site_of(node) -> int | None:
    if isinstance(node, ParamNode):
        if node.role in ("actual_in", "actual_out"):
            return node.site
        return None
    if isinstance(node, StmtNode) and isinstance(node.instr, ins.Call):
        return node.instr.uid
    return None


def encode_artifact(
    analyzed: "AnalyzedProgram", key: str = "", include_rich: bool = True
) -> bytes:
    """Flatten one analyzed program into artifact bytes.

    ``key`` is stamped into META so a reader can reject a store entry
    filed under the wrong content address.  ``include_rich=False`` drops
    the pickle escape hatch (smaller artifact; ``to_analyzed_program``
    then re-analyzes from the embedded source).
    """
    from repro import __version__

    sdg = analyzed.sdg
    compiled = analyzed.compiled
    nodes, index, functions = _node_order(sdg)
    count = len(nodes)

    kinds = bytearray(count)
    lines = array.array("i", bytes(4 * count))
    sites = array.array("I", bytes(4 * count))
    raw_sites: list[int | None] = [None] * count
    for fid, node in enumerate(nodes):
        if isinstance(node, StmtNode):
            kinds[fid] = KIND_STMT
        else:
            kinds[fid] = KIND_OF_ROLE[node.role]
        lines[fid] = node_position(node).line
        raw_sites[fid] = _site_of(node)
    # Call-site uids come from a process-global counter whose base
    # depends on how many programs this process compiled before (a
    # worker resets it, a thread-mode parent cannot).  The slicers only
    # ever compare sites for equality *within* one artifact, so rank
    # each distinct uid instead of storing it raw — the section becomes
    # a pure function of the analysis result.
    site_rank = {
        site: rank
        for rank, site in enumerate(
            sorted({site for site in raw_sites if site is not None})
        )
    }
    if len(site_rank) >= NO_SITE:
        raise ArtifactError(f"{len(site_rank)} call sites overflow u32")
    for fid, site in enumerate(raw_sites):
        sites[fid] = NO_SITE if site is None else site_rank[site]

    eidx = array.array("I", bytes(4 * (count + 1)))
    etgt = array.array("I")
    eknd = bytearray()
    for fid, node in enumerate(nodes):
        deps = sorted(
            ((index[dep], kind.index) for dep, kind in sdg.dependencies(node))
        )
        for target, kind_index in deps:
            etgt.append(target)
            eknd.append(kind_index)
        eidx[fid + 1] = len(etgt)

    # Seed index: statement nodes bucketed by source line, so
    # ``seeds_at_line`` is a binary search plus one CSR row — no
    # instruction objects, no per-line scans.
    buckets: dict[int, list[int]] = {}
    for fid in range(count):
        if kinds[fid] == KIND_STMT and lines[fid] > 0:
            buckets.setdefault(lines[fid], []).append(fid)
    seed_lines = sorted(buckets)
    lkey = array.array("i", seed_lines)
    lidx = array.array("I", bytes(4 * (len(seed_lines) + 1)))
    lnod = array.array("I")
    for row, line in enumerate(seed_lines):
        lnod.extend(buckets[line])
        lidx[row + 1] = len(lnod)

    strings = [name for name, _start, _end in functions]
    offsets = array.array("I", bytes(4 * (len(strings) + 2)))
    offsets[0] = len(strings)
    blob = bytearray()
    for position, text in enumerate(strings):
        blob.extend(text.encode("utf-8"))
        offsets[position + 2] = len(blob)
    func = array.array("I")
    for ref, (_name, start, end) in enumerate(functions):
        func.extend((ref, start, end))

    full_text = compiled.source.text
    options = analyzed.options
    user_len = len(full_text)
    if options.include_stdlib:
        from repro.frontend import stdlib_source

        user_len = len(full_text) - len(stdlib_source()) - 1
    graph = analyzed.pts.call_graph
    meta = {
        "version": __version__,
        "key": key,
        "filename": compiled.source.name,
        "options": _options_meta(options),
        "user_len": user_len,
        "counts": {
            "classes": len(compiled.table.classes),
            "functions_ir": len(compiled.ir.functions),
            "reachable_functions": graph.function_count(),
            "call_graph_nodes": graph.node_count(),
            "call_graph_edges": graph.edge_count(),
            "sdg_statements": sdg.statement_count(),
            "sdg_edges": sdg.edge_count(),
            "sdg_nodes": count,
        },
    }

    sections: list[tuple[bytes, bytes]] = [
        (b"META", json.dumps(meta, sort_keys=True).encode("utf-8")),
        (b"STRS", offsets.tobytes() + bytes(blob)),
        (b"KIND", bytes(kinds)),
        (b"LINE", lines.tobytes()),
        (b"SITE", sites.tobytes()),
        (b"EIDX", eidx.tobytes()),
        (b"ETGT", etgt.tobytes()),
        (b"EKND", bytes(eknd)),
        (b"LKEY", lkey.tobytes()),
        (b"LIDX", lidx.tobytes()),
        (b"LNOD", lnod.tobytes()),
        (b"FUNC", func.tobytes()),
        (b"SRC ", full_text.encode("utf-8")),
    ]
    if include_rich:
        rich = pickle.dumps(
            replace(analyzed, timings=None), protocol=pickle.HIGHEST_PROTOCOL
        )
        sections.append((b"RICH", rich))
    return pack_sections(sections)


def migrate_flat_v1(payload: bytes, key: str) -> bytes:
    """Re-encode a format-1 (digest-less) artifact as format 2.

    Mirrors the pickle migration in ``DiskStore._load_legacy``: decode
    the old envelope back to an :class:`AnalyzedProgram` (the embedded
    ``RICH`` pickle if present, else a re-analysis of the embedded
    source) and run it through the current encoder, which stamps the
    digests.  Raises :class:`ArtifactError` if the old bytes are stale
    (other package version, key mismatch) or corrupt — callers decide
    whether that means discard or quarantine.
    """
    from repro import __version__

    sections = parse_sections_v1(payload)
    try:
        meta = json.loads(
            bytes(payload[slice(*_span(sections, b"META"))])
        )
    except (KeyError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"bad META section: {exc}") from None
    if meta.get("version") != __version__:
        raise ArtifactStaleError(
            f"artifact from package {meta.get('version')!r} != {__version__!r}"
        )
    if key and meta.get("key") != key:
        raise ArtifactStaleError("artifact key mismatch")
    rich_span = sections.get(b"RICH")
    if rich_span is not None:
        offset, length = rich_span
        try:
            analyzed = pickle.loads(payload[offset : offset + length])
        except Exception as exc:
            raise ArtifactError(f"bad RICH section: {exc}") from None
    else:
        analyzed = _reanalyze_from_meta(payload, sections, meta)
    return encode_artifact(analyzed, key=key)


def _span(sections: dict, tag: bytes) -> tuple[int, int]:
    offset, length = sections[tag]
    return offset, offset + length


def _reanalyze_from_meta(payload: bytes, sections: dict, meta: dict):
    from repro import AnalyzeOptions, analyze

    try:
        text = bytes(payload[slice(*_span(sections, b"SRC "))]).decode("utf-8")
    except (KeyError, UnicodeDecodeError) as exc:
        raise ArtifactError(f"bad SRC section: {exc}") from None
    recorded = meta.get("options", {})
    containers = recorded.get("containers")
    options = AnalyzeOptions(
        include_stdlib=bool(recorded.get("include_stdlib", True)),
        containers=None if containers is None else frozenset(containers),
        heap_mode=recorded.get("heap_mode", "direct"),
        include_control=bool(recorded.get("include_control", True)),
    )
    user_source = text[: meta.get("user_len", len(text))]
    analyzed = analyze(
        user_source, meta.get("filename", "<input>"), options=options
    )
    analyzed.timings = None
    return analyzed


def canonical_bytes(payload: bytes) -> bytes:
    """The canonical portion of an artifact: every section but ``RICH``.

    Two encodings of the same ``(source, options, version)`` agree on
    this digest input even across processes; only the ``RICH`` pickle
    may differ (object memo topology is process-dependent now that the
    ``_NIL`` hash substitutions are retired).
    """
    sections = parse_sections(payload)
    parts = []
    for tag in CANONICAL_TAGS:
        if tag in sections:
            offset, length = sections[tag]
            parts.append(tag)
            parts.append(payload[offset : offset + length])
    return b"".join(parts)
