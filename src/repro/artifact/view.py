"""Zero-copy read side: :class:`ArtifactView` over bytes or an mmap.

A view wraps one artifact buffer and exposes the SDG as dense int node
ids plus typed array accessors (``memoryview.cast`` over the mapped
pages — nothing is copied or deserialized up front).  Opening a view
costs one header parse and one small JSON decode; the node/edge arrays
are faulted in lazily by the kernel as a slice walks them, and the
``RICH`` pickle section is only ever touched by
:meth:`to_analyzed_program`.

Because shards and pool workers open the same store files, the kernel
shares one page-cache copy of each artifact across every process — the
"one read-only mapping for all shards" the sharded tier wants — where
the pickle store gave each process its own private unpickled object
graph.

The view implements the same graph protocol as
:class:`repro.sdg.sdg.SDG` (``dependencies`` / ``node_role`` /
``site_of`` / ``formal_out_nodes`` / ``graph_nodes`` /
``seeds_at_line``), which is what lets
:class:`repro.slicing.tabulation.TabulationSlicer` and the flat
thin/traditional slicers run directly over a warm-disk artifact without
reconstructing a single SDG object.
"""

from __future__ import annotations

import json
import mmap
import pickle
import threading
from bisect import bisect_left, bisect_right
from pathlib import Path

from repro.sdg.nodes import EdgeKind
from repro.artifact.format import (
    KIND_ACTUAL_IN,
    KIND_ACTUAL_OUT,
    KIND_FORMAL_OUT,
    KIND_STMT,
    NO_SITE,
    NODE_ROLES,
    ArtifactError,
    ArtifactStaleError,
    parse_sections,
    verify_file_digest,
    verify_section_digests,
)

#: ``EKND`` code -> EdgeKind member (index-aligned with EdgeKind.index).
EDGE_KINDS = tuple(EdgeKind)

#: Verification levels, cheapest first.  ``none`` trusts the bytes
#: (structural section-table parse only); ``header`` adds one C-speed
#: crc32 pass over the whole file (catches any random corruption —
#: the serving default); ``deep`` additionally re-checks every
#: per-section digest and runs :meth:`ArtifactView.verify_structure`
#: (the scrubber's level).
VERIFY_LEVELS = ("none", "header", "deep")


class ArtifactView:
    """Lazily-materializing, read-only view of one flat artifact."""

    def __init__(
        self,
        buffer,
        *,
        mapped: mmap.mmap | None = None,
        verify: str = "none",
    ) -> None:
        if verify not in VERIFY_LEVELS:
            raise ValueError(f"unknown verify level {verify!r}")
        self._buffer = memoryview(buffer)
        self._mmap = mapped
        try:
            self._init_sections()
            if verify != "none":
                verify_file_digest(self._buffer)
            if verify == "deep":
                verify_section_digests(self._buffer, self._sections)
                self.verify_structure()
        except ArtifactError:
            # Drop every buffer export before the caller sees the error,
            # or closing the mmap underneath would raise BufferError.
            self.close()
            raise

    def _init_sections(self) -> None:
        sections = self._sections = parse_sections(self._buffer)
        try:
            self._meta = json.loads(bytes(self._section(sections, b"META")))
        except (KeyError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ArtifactError(f"bad META section: {exc}") from None
        try:
            self.kind = self._section(sections, b"KIND").cast("B")
            self.line = self._section(sections, b"LINE").cast("i")
            self.site = self._section(sections, b"SITE").cast("I")
            self.eidx = self._section(sections, b"EIDX").cast("I")
            self.etgt = self._section(sections, b"ETGT").cast("I")
            self.eknd = self._section(sections, b"EKND").cast("B")
            self._lkey = self._section(sections, b"LKEY").cast("i")
            self._lidx = self._section(sections, b"LIDX").cast("I")
            self._lnod = self._section(sections, b"LNOD").cast("I")
            self._func = self._section(sections, b"FUNC").cast("I")
            self._strs = self._section(sections, b"STRS")
            self._src = self._section(sections, b"SRC ")
        except KeyError as exc:
            raise ArtifactError(f"missing section {exc}") from None
        self._rich = sections.get(b"RICH")
        self.node_count = len(self.kind)
        if (
            len(self.eidx) != self.node_count + 1
            or len(self.line) != self.node_count
            or len(self.site) != self.node_count
            or len(self.etgt) != len(self.eknd)
            or len(self._lidx) != len(self._lkey) + 1
        ):
            raise ArtifactError("inconsistent section lengths")
        self._text: str | None = None
        self._lines: list[str] | None = None
        self._formal_outs: list[int] | None = None
        self._program = None
        self._lock = threading.Lock()

    def _section(self, sections, tag: bytes):
        offset, length = sections[tag]
        return self._buffer[offset : offset + length]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path, verify: str = "header") -> "ArtifactView":
        """Map ``path`` read-only and wrap it (zero-copy).

        The mapping — not a private heap copy — backs every array
        accessor, so concurrent opens of one store file share pages.
        ``verify`` (see :data:`VERIFY_LEVELS`) defaults to ``header``:
        bytes that came off a disk are checked against their whole-file
        digest before any slicer trusts them.
        """
        with open(path, "rb") as handle:
            try:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError as exc:  # empty file
                raise ArtifactError(f"unmappable artifact: {exc}") from None
        try:
            return cls(mapped, mapped=mapped, verify=verify)
        except ArtifactError:
            mapped.close()
            raise

    @classmethod
    def from_buffer(cls, payload: bytes, verify: str = "none") -> "ArtifactView":
        """Wrap in-memory artifact bytes (e.g. a worker's payload).

        Defaults to ``verify="none"``: in-memory bytes were encoded by
        this process tree moments ago and never crossed a disk.
        """
        return cls(payload, verify=verify)

    def close(self) -> None:
        """Release the array views and the mapping (idempotent)."""
        for name in (
            "kind", "line", "site", "eidx", "etgt", "eknd",
            "_lkey", "_lidx", "_lnod", "_func", "_strs", "_src",
        ):
            if hasattr(self, name):
                delattr(self, name)
        buffer, self._buffer = getattr(self, "_buffer", None), None
        if buffer is not None:
            buffer.release()
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None

    # ------------------------------------------------------------------
    # Identity / metadata
    # ------------------------------------------------------------------

    @property
    def meta(self) -> dict:
        return self._meta

    @property
    def key(self) -> str:
        return self._meta.get("key", "")

    @property
    def package_version(self) -> str:
        return self._meta.get("version", "")

    @property
    def filename(self) -> str:
        return self._meta.get("filename", "<input>")

    @property
    def counts(self) -> dict:
        return self._meta.get("counts", {})

    def validate(self, key: str | None = None) -> None:
        """Reject artifacts from another package version or cache key."""
        from repro import __version__

        if self.package_version != __version__:
            raise ArtifactStaleError(
                f"artifact from package {self.package_version!r} != "
                f"{__version__!r}"
            )
        if key is not None and self.key != key:
            raise ArtifactStaleError("artifact key mismatch")

    def verify_structure(self) -> None:
        """Bounds-check every index array (part of ``verify="deep"``).

        Digests prove the bytes are the ones the encoder wrote; this
        proves the arrays the encoder wrote are a well-formed graph —
        a defense against encoder bugs and crafted files alike.  After
        it passes, no slicer walk can index out of range.
        """
        n = self.node_count
        eidx, etgt, eknd = self.eidx, self.etgt, self.eknd
        if eidx[0] != 0 or eidx[n] != len(etgt):
            raise ArtifactError("EIDX does not span ETGT")
        prev = 0
        for value in eidx:
            if value < prev:
                raise ArtifactError("EIDX not monotonic")
            prev = value
        if len(etgt) and max(etgt) >= n:
            raise ArtifactError("ETGT edge target out of node range")
        if len(eknd) and max(eknd) >= len(EDGE_KINDS):
            raise ArtifactError("EKND edge kind out of range")
        if n and max(self.kind) >= len(NODE_ROLES):
            raise ArtifactError("KIND node kind out of range")
        lkey, lidx, lnod = self._lkey, self._lidx, self._lnod
        for row in range(1, len(lkey)):
            if lkey[row] <= lkey[row - 1]:
                raise ArtifactError("LKEY seed lines not strictly sorted")
        if lidx[0] != 0 or lidx[len(lkey)] != len(lnod):
            raise ArtifactError("LIDX does not span LNOD")
        prev = 0
        for value in lidx:
            if value < prev:
                raise ArtifactError("LIDX not monotonic")
            prev = value
        if len(lnod) and max(lnod) >= n:
            raise ArtifactError("LNOD seed node out of node range")
        strs = self._strs
        if len(strs) < 8:
            raise ArtifactError("STRS table truncated")
        count = strs[:4].cast("I")[0]
        base = 4 * (count + 2)
        if base > len(strs):
            raise ArtifactError("STRS offset table truncated")
        offsets = strs[:base].cast("I")
        if offsets[1] != 0:
            raise ArtifactError("STRS first offset not zero")
        for ref in range(1, count + 1):
            if offsets[ref + 1] < offsets[ref]:
                raise ArtifactError("STRS offsets not monotonic")
        if base + offsets[count + 1] > len(strs):
            raise ArtifactError("STRS blob overruns the section")
        func = self._func
        if len(func) % 3 != 0:
            raise ArtifactError("FUNC table length not a multiple of 3")
        cursor = 0
        for row in range(len(func) // 3):
            ref, start, end = func[row * 3], func[row * 3 + 1], func[row * 3 + 2]
            if ref >= count:
                raise ArtifactError("FUNC name ref out of string range")
            if start != cursor or end < start:
                raise ArtifactError("FUNC node ranges not contiguous")
            cursor = end
        if cursor != n:
            raise ArtifactError("FUNC ranges do not cover all nodes")

    # ------------------------------------------------------------------
    # Graph protocol (shared with repro.sdg.sdg.SDG)
    # ------------------------------------------------------------------

    def graph_nodes(self):
        return range(self.node_count)

    def dependencies(self, node: int) -> list[tuple[int, EdgeKind]]:
        start = self.eidx[node]
        end = self.eidx[node + 1]
        etgt, eknd, kinds = self.etgt, self.eknd, EDGE_KINDS
        return [(etgt[i], kinds[eknd[i]]) for i in range(start, end)]

    def node_role(self, node: int) -> str | None:
        return NODE_ROLES[self.kind[node]]

    def site_of(self, node: int) -> int | None:
        site = self.site[node]
        return None if site == NO_SITE else site

    def formal_out_nodes(self) -> list[int]:
        if self._formal_outs is None:
            kind = self.kind
            self._formal_outs = [
                n for n in range(self.node_count) if kind[n] == KIND_FORMAL_OUT
            ]
        return self._formal_outs

    def seeds_at_line(self, line: int) -> list[int]:
        row = bisect_left(self._lkey, line)
        if row == len(self._lkey) or self._lkey[row] != line:
            return []
        return list(self._lnod[self._lidx[row] : self._lidx[row + 1]])

    def node_line(self, node: int) -> int:
        return self.line[node]

    def is_statement(self, node: int) -> bool:
        return self.kind[node] == KIND_STMT

    def counts_as_inspected(self, node: int) -> bool:
        """Statements plus actual-in/out bindings, mirroring
        :func:`repro.slicing.engine.counts_as_inspected`."""
        return self.kind[node] in (KIND_STMT, KIND_ACTUAL_IN, KIND_ACTUAL_OUT)

    def function_of(self, node: int) -> str:
        """Owning function name, via the per-function id ranges."""
        func = self._func
        starts = [func[i * 3 + 1] for i in range(len(func) // 3)]
        row = bisect_right(starts, node) - 1
        return self.string(func[row * 3])

    def string(self, ref: int) -> str:
        # Cast only the offsets prefix: the UTF-8 blob that follows it
        # is not u32-aligned, so casting the whole section would raise.
        strs = self._strs
        count = strs[:4].cast("I")[0]
        base = 4 * (count + 2)
        if not 0 <= ref < count:
            raise ArtifactError(f"string ref {ref} out of range")
        offsets = strs[:base].cast("I")
        start = base + offsets[ref + 1]
        end = base + offsets[ref + 2]
        return bytes(strs[start:end]).decode("utf-8")

    # ------------------------------------------------------------------
    # Source text
    # ------------------------------------------------------------------

    @property
    def text(self) -> str:
        if self._text is None:
            self._text = bytes(self._src).decode("utf-8")
        return self._text

    def source_lines(self) -> list[str]:
        if self._lines is None:
            self._lines = self.text.splitlines()
        return self._lines

    # ------------------------------------------------------------------
    # Escape hatch
    # ------------------------------------------------------------------

    def to_analyzed_program(self):
        """Materialize the rich object graph (memoized, thread-safe).

        Prefers the embedded ``RICH`` pickle; an artifact encoded
        without one is re-analyzed from the embedded user source with
        the recorded options.  The slice fast path never calls this.
        """
        if self._program is not None:
            return self._program
        with self._lock:
            if self._program is None:
                if self._rich is not None:
                    offset, length = self._rich
                    self._program = pickle.loads(
                        self._buffer[offset : offset + length]
                    )
                else:
                    self._program = self._reanalyze()
        return self._program

    def _reanalyze(self):
        from repro import AnalyzeOptions, analyze

        recorded = self._meta.get("options", {})
        containers = recorded.get("containers")
        options = AnalyzeOptions(
            include_stdlib=bool(recorded.get("include_stdlib", True)),
            containers=None if containers is None else frozenset(containers),
            heap_mode=recorded.get("heap_mode", "direct"),
            include_control=bool(recorded.get("include_control", True)),
        )
        user_source = self.text[: self._meta.get("user_len", len(self.text))]
        analyzed = analyze(user_source, self.filename, options=options)
        analyzed.timings = None  # parity with the RICH pickle
        return analyzed
