"""One-call pipeline from MJ source text to analyzed IR.

:func:`compile_source` is the entry point used by the slicers, the
benchmark suite, and the examples.  It optionally prepends the MJ
standard library (containers and exception classes), so programs can use
``Vector``/``HashMap`` the way the paper's Java benchmarks use
``java.util``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.budget import Budget
from repro.lang import ast
from repro.lang.errors import MJError
from repro.lang.lexer import tokenize
from repro.lang.parser import Parser, parse_program
from repro.lang.source import Position, SourceFile
from repro.lang.tokens import Token
from repro.lang.symbols import ClassTable
from repro.lang.typechecker import check_program
from repro.ir.builder import build_program
from repro.ir.cfg import IRProgram
from repro.ir.dominance import DominatorInfo
from repro.ir.ssa import to_ssa
from repro.profiling import StageProfiler


class _DemandSSAFunctions(dict):
    """``IRProgram.functions`` view that SSA-converts on first access.

    Reads that need a body (``[...]``, ``.get``, ``.items``,
    ``.values``) run the pending conversion hook for that function;
    key-only operations (``in``, ``len``, iteration, ``sorted``) do
    not.  Pickling forces every pending conversion first, so persisted
    programs are always fully SSA-converted plain dicts.
    """

    pending: dict

    def __getitem__(self, name):
        function = dict.__getitem__(self, name)
        convert = self.pending.pop(name, None)
        if convert is not None:
            convert(function)
        return function

    def get(self, name, default=None):
        if dict.__contains__(self, name):
            return self[name]
        return default

    def values(self):
        return [self[name] for name in dict.keys(self)]

    def items(self):
        return [(name, self[name]) for name in dict.keys(self)]

    def __reduce__(self):
        for name in list(self.pending):
            _ = self[name]
        return (dict, (dict(self),))


@dataclass
class CompiledProgram:
    """Everything the analyses need about one program."""

    source: SourceFile
    ast: ast.Program
    table: ClassTable
    ir: IRProgram
    dominators: dict[str, DominatorInfo]

    def instructions_at_line(self, line: int):
        return self.ir.instructions_at_line(self.source.name, line)


def stdlib_source() -> str:
    """The MJ standard library source (containers, exceptions)."""
    from repro.suite.loader import load_stdlib

    return load_stdlib()


#: Offset-free (kind, text, line, column) records for the stdlib token
#: stream, lexed once per process.  The stdlib rides along with every
#: ``include_stdlib=True`` compile, so re-scanning its characters is
#: pure waste; only the line offset and filename differ per program.
_stdlib_token_template: list[tuple] | None = None

#: Parsed stdlib class declarations per (filename, line offset).  The
#: stdlib source is fixed, so its AST only varies in the positions baked
#: into the nodes; every compile of the same program reuses one parse.
#: Sharing is safe because nothing mutates AST structure after parsing —
#: the type checker only rewrites its (deterministic) annotations.
_stdlib_ast_cache: dict[tuple[str, int], list[ast.ClassDecl]] = {}


def _stdlib_classes(filename: str, offset: int) -> list[ast.ClassDecl]:
    global _stdlib_token_template
    cached = _stdlib_ast_cache.get((filename, offset))
    if cached is not None:
        return cached
    if _stdlib_token_template is None:
        _stdlib_token_template = [
            (t.kind, t.text, t.position.line, t.position.column)
            for t in tokenize(stdlib_source(), "<stdlib>")
        ]
    tokens = [
        Token(kind, value, Position(line + offset, column, filename))
        for kind, value, line, column in _stdlib_token_template
    ]
    classes = Parser(tokens).parse_program().classes
    if len(_stdlib_ast_cache) >= 64:
        _stdlib_ast_cache.clear()
    _stdlib_ast_cache[(filename, offset)] = classes
    return classes


def _parse_with_stdlib(text: str, full_text: str, filename: str) -> ast.Program:
    """Parse ``text`` + stdlib, reusing the cached stdlib parse.

    Parsing the user program alone and appending the stdlib's class
    declarations yields exactly what parsing the concatenated text
    would: the grammar is a flat sequence of classes, so a clean user
    parse cannot be influenced by what follows.  Inputs where that does
    not hold — a lex or parse error in the user text, whose diagnostic
    can depend on the appended stdlib — fall back to the concatenated
    scan so errors are bit-identical to the reference path.
    """
    try:
        program = Parser(tokenize(text, filename)).parse_program()
    except MJError:
        return parse_program(full_text, filename)
    program.classes.extend(
        _stdlib_classes(filename, text.count("\n") + 1)
    )
    return program


def normalize_source(text: str) -> str:
    """Canonicalize line endings and trailing whitespace.

    The one normalization shared by every content-addressing layer:
    :func:`source_fingerprint` (the whole-source cache key), the
    per-function unit fingerprints of :mod:`repro.incremental`, and
    :func:`compile_source` itself — which consumes the normalized text,
    so the bytes an artifact embeds in ``SRC`` are exactly the bytes the
    keys were derived from.  If only the fingerprints normalized, two
    sources differing in ``\\r\\n`` vs ``\\n`` would collide on one key
    while producing different artifact bytes.
    """
    if "\r" in text:
        text = text.replace("\r\n", "\n").replace("\r", "\n")
    if " \n" in text or "\t\n" in text or text.endswith((" ", "\t")):
        text = "\n".join(line.rstrip(" \t") for line in text.split("\n"))
    return text


def source_fingerprint(text: str, include_stdlib: bool = False) -> str:
    """SHA-256 over exactly the text :func:`compile_source` would consume.

    The text is passed through :func:`normalize_source` first — the same
    helper the compiler and the per-function fingerprints use, so the
    two key levels can never disagree about the same source.  With
    ``include_stdlib=True`` the stdlib source participates in the
    digest, so a stdlib change invalidates cached analyses even though
    the user-visible source text is unchanged.
    """
    hasher = hashlib.sha256()
    hasher.update(normalize_source(text).encode("utf-8"))
    if include_stdlib:
        hasher.update(b"\x00stdlib\x00")
        hasher.update(stdlib_source().encode("utf-8"))
    return hasher.hexdigest()


def compile_source(
    text: str,
    filename: str = "<input>",
    include_stdlib: bool = False,
    profiler: StageProfiler | None = None,
    budget: "Budget | None" = None,
) -> CompiledProgram:
    """Parse, type-check, lower to IR, and convert to SSA.

    With ``include_stdlib=True`` the MJ standard library is appended to
    the program text (as later classes, so user line numbers are stable).
    A :class:`~repro.profiling.StageProfiler` records per-stage wall
    time (``parse``/``typecheck``/``ir``/``ssa``) when provided.

    ``budget`` is checked at every stage boundary, so a cancelled or
    timed-out request aborts between stages with
    :class:`~repro.budget.BudgetExceeded`.  (The budget is *not*
    captured by the demand-SSA conversion hooks: those can fire long
    after this request completes, against a cached program, and must
    not observe a stale request-scoped token.)
    """
    if profiler is None:
        profiler = StageProfiler()
    text = normalize_source(text)
    full_text = text
    if include_stdlib:
        full_text = text + "\n" + stdlib_source()
    if budget is not None:
        budget.check()
    # The parser bounds syntactic nesting (see
    # repro.lang.parser.MAX_NESTING), but an adversarial input can still
    # be *wide* in ways that recurse deeply downstream — e.g. a
    # thousand-term `a+a+...` chain parses iteratively yet builds a
    # left-leaning AST that the recursive type checker and IR builder
    # walk one frame per term.  Convert any such stack exhaustion into
    # the same structured MJError a syntactic overrun produces: part of
    # the hardening contract that no input crashes the pipeline.
    try:
        with profiler.stage("parse"):
            if include_stdlib:
                program = _parse_with_stdlib(text, full_text, filename)
            else:
                program = parse_program(full_text, filename)
        if budget is not None:
            budget.check()
        with profiler.stage("typecheck"):
            table = check_program(program)
        if budget is not None:
            budget.check()
        with profiler.stage("ir"):
            ir_program = build_program(program, table)
    except RecursionError:
        raise MJError(
            "program structure exceeds the analyzer's recursion limits"
        ) from None
    if budget is not None:
        budget.check()
    with profiler.stage("ssa"):
        dominators: dict[str, DominatorInfo] = {}

        def _convert(function, _dom=dominators, _prof=profiler) -> None:
            with _prof.stage("ssa"):
                _dom[function.name] = to_ssa(function)

        lazy = _DemandSSAFunctions(ir_program.functions)
        lazy.pending = {name: _convert for name in lazy}
        ir_program.functions = lazy
        # Analysis roots convert eagerly; everything else converts the
        # first time an analysis asks for its body.  Cold programs only
        # reach a fraction of the stdlib, so the unreachable remainder
        # never pays for phi placement and renaming.
        for root in ir_program.entry_points():
            _ = ir_program.functions[root]
    profiler.add_count("classes", len(table.classes))
    profiler.add_count("functions", len(ir_program.functions))
    return CompiledProgram(
        source=SourceFile(filename, full_text),
        ast=program,
        table=table,
        ir=ir_program,
        dominators=dominators,
    )
