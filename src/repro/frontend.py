"""One-call pipeline from MJ source text to analyzed IR.

:func:`compile_source` is the entry point used by the slicers, the
benchmark suite, and the examples.  It optionally prepends the MJ
standard library (containers and exception classes), so programs can use
``Vector``/``HashMap`` the way the paper's Java benchmarks use
``java.util``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.source import SourceFile
from repro.lang.symbols import ClassTable
from repro.lang.typechecker import check_program
from repro.ir.builder import build_program
from repro.ir.cfg import IRProgram
from repro.ir.dominance import DominatorInfo
from repro.ir.ssa import to_ssa


@dataclass
class CompiledProgram:
    """Everything the analyses need about one program."""

    source: SourceFile
    ast: ast.Program
    table: ClassTable
    ir: IRProgram
    dominators: dict[str, DominatorInfo]

    def instructions_at_line(self, line: int):
        return self.ir.instructions_at_line(self.source.name, line)


def stdlib_source() -> str:
    """The MJ standard library source (containers, exceptions)."""
    from repro.suite.loader import load_stdlib

    return load_stdlib()


def source_fingerprint(text: str, include_stdlib: bool = False) -> str:
    """SHA-256 over exactly the text :func:`compile_source` would consume.

    With ``include_stdlib=True`` the stdlib source participates in the
    digest, so a stdlib change invalidates cached analyses even though
    the user-visible source text is unchanged.
    """
    hasher = hashlib.sha256()
    hasher.update(text.encode("utf-8"))
    if include_stdlib:
        hasher.update(b"\x00stdlib\x00")
        hasher.update(stdlib_source().encode("utf-8"))
    return hasher.hexdigest()


def compile_source(
    text: str,
    filename: str = "<input>",
    include_stdlib: bool = False,
) -> CompiledProgram:
    """Parse, type-check, lower to IR, and convert to SSA.

    With ``include_stdlib=True`` the MJ standard library is appended to
    the program text (as later classes, so user line numbers are stable).
    """
    full_text = text
    if include_stdlib:
        full_text = text + "\n" + stdlib_source()
    program = parse_program(full_text, filename)
    table = check_program(program)
    ir_program = build_program(program, table)
    dominators = {
        name: to_ssa(function)
        for name, function in ir_program.functions.items()
    }
    return CompiledProgram(
        source=SourceFile(filename, full_text),
        ast=program,
        table=table,
        ir=ir_program,
        dominators=dominators,
    )
