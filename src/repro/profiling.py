"""Lightweight pipeline stage profiler.

Every cold analysis walks the same pipeline — parse, typecheck, IR
lowering, SSA, points-to, SDG construction, and (for context-sensitive
slicing) tabulation summaries.  :class:`StageProfiler` records wall time
and a few size counters per stage so that perf work has a measured
baseline instead of folklore: the CLI exposes it as ``--timings``, the
server aggregates it in the ``stats`` RPC, and
``benchmarks/bench_pointsto.py`` persists it per suite program.

The profiler is cheap enough to be always on inside :func:`repro.analyze`
(two ``perf_counter`` calls per stage), so the timings ride along with
cached analysis artifacts too.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

#: Canonical stage order for display; unknown stages sort after these.
PIPELINE_STAGES = (
    "parse",
    "typecheck",
    "ir",
    "ssa",
    "pointsto",
    "sdg",
    "summaries",
)


class StageProfiler:
    """Accumulates per-stage wall time (ms) and integer counters."""

    def __init__(self) -> None:
        self.stages_ms: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        # Open-stage child-time accumulators: stages record *exclusive*
        # time, so demand-driven work (e.g. SSA conversion triggered
        # inside the points-to stage) is attributed to its own stage
        # without being double counted in the enclosing one.
        self._open: list[float] = []

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        self._open.append(0.0)
        try:
            yield
        finally:
            elapsed = (time.perf_counter() - start) * 1000
            children = self._open.pop()
            self.stages_ms[name] = self.stages_ms.get(name, 0.0) + (
                elapsed - children
            )
            if self._open:
                self._open[-1] += elapsed

    def add_count(self, name: str, value: int) -> None:
        self.counts[name] = self.counts.get(name, 0) + int(value)

    def total_ms(self) -> float:
        return sum(self.stages_ms.values())

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def _ordered_stages(self) -> list[str]:
        known = [s for s in PIPELINE_STAGES if s in self.stages_ms]
        extra = sorted(s for s in self.stages_ms if s not in PIPELINE_STAGES)
        return known + extra

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot (the shape stored on analyses)."""
        return {
            "stages_ms": {
                name: round(self.stages_ms[name], 3)
                for name in self._ordered_stages()
            },
            "counts": dict(sorted(self.counts.items())),
            "total_ms": round(self.total_ms(), 3),
        }

    def render(self) -> str:
        """Human-readable table for the CLI's ``--timings``."""
        rows = []
        total = self.total_ms()
        for name in self._ordered_stages():
            ms = self.stages_ms[name]
            share = (100 * ms / total) if total else 0.0
            rows.append(f"  {name:<10} {ms:8.1f} ms  {share:5.1f}%")
        rows.append(f"  {'total':<10} {total:8.1f} ms")
        if self.counts:
            counters = "  ".join(
                f"{k}={v}" for k, v in sorted(self.counts.items())
            )
            rows.append(f"  [{counters}]")
        return "\n".join(rows)


def render_timings(timings: dict[str, Any]) -> str:
    """Render an :meth:`StageProfiler.as_dict` snapshot as a table."""
    stages = timings.get("stages_ms", {})
    total = timings.get("total_ms", sum(stages.values()))
    known = [s for s in PIPELINE_STAGES if s in stages]
    extra = sorted(s for s in stages if s not in PIPELINE_STAGES)
    rows = []
    for name in known + extra:
        ms = stages[name]
        share = (100 * ms / total) if total else 0.0
        rows.append(f"  {name:<10} {ms:8.1f} ms  {share:5.1f}%")
    rows.append(f"  {'total':<10} {total:8.1f} ms")
    counts = timings.get("counts", {})
    if counts:
        counters = "  ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        rows.append(f"  [{counters}]")
    return "\n".join(rows)


def merge_timing_dicts(
    aggregate: dict[str, Any], timings: dict[str, Any]
) -> None:
    """Fold one :meth:`StageProfiler.as_dict` snapshot into ``aggregate``.

    ``aggregate`` has the shape ``{"analyses": int, "stages_ms": {...},
    "counts": {...}, "total_ms": float}`` and is what the server's
    ``stats`` RPC reports under ``"pipeline"``.
    """
    aggregate["analyses"] = aggregate.get("analyses", 0) + 1
    stages = aggregate.setdefault("stages_ms", {})
    for name, ms in timings.get("stages_ms", {}).items():
        stages[name] = round(stages.get(name, 0.0) + ms, 3)
    counts = aggregate.setdefault("counts", {})
    for name, value in timings.get("counts", {}).items():
        counts[name] = counts.get(name, 0) + value
    aggregate["total_ms"] = round(
        aggregate.get("total_ms", 0.0) + timings.get("total_ms", 0.0), 3
    )
