"""Line-level dependence navigation — a CodeSurfer-flavoured API.

The paper's evaluation simulates a user browsing the dependence graph
(§6.1 cites CodeSurfer's dependence navigation).  :class:`Navigator`
packages that workflow at source-line granularity:

* ``producers_of(line)`` — one step of producer flow (what a thin-slice
  user expands next);
* ``explainers_of(line)`` — the base-pointer and control explainers the
  thin view hides (what expansion would reveal);
* ``consumers_of(line)`` — one step forward;
* ``why(source_line, sink_line)`` — a shortest producer-flow path
  explaining how a value travels between two lines, rendered on source.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.frontend import CompiledProgram
from repro.sdg.nodes import EdgeKind, SDGNode, THIN_KINDS, node_position
from repro.sdg.sdg import SDG


@dataclass
class LineStep:
    """One navigation hop: a line plus the edge kinds that led to it."""

    line: int
    kinds: set[EdgeKind] = field(default_factory=set)
    text: str = ""


class Navigator:
    """Dependence navigation over one analyzed program."""

    def __init__(self, compiled: CompiledProgram, sdg: SDG) -> None:
        self.compiled = compiled
        self.sdg = sdg
        self._uses: dict[SDGNode, list[tuple[SDGNode, EdgeKind]]] = {}
        for node, deps in sdg.deps.items():
            for dep, kind in deps:
                self._uses.setdefault(dep, []).append((node, kind))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _nodes_at(self, line: int) -> list[SDGNode]:
        nodes: list[SDGNode] = []
        for instr in self.compiled.instructions_at_line(line):
            nodes.extend(self.sdg.nodes_of_instruction(instr))
        return nodes

    def _line_text(self, line: int) -> str:
        return self.compiled.source.line_text(line).strip()

    def _collect(self, pairs) -> list[LineStep]:
        by_line: dict[int, LineStep] = {}
        for node, kind in pairs:
            line = node_position(node).line
            if line <= 0:
                continue
            step = by_line.setdefault(
                line, LineStep(line, set(), self._line_text(line))
            )
            step.kinds.add(kind)
        return [by_line[line] for line in sorted(by_line)]

    # ------------------------------------------------------------------
    # One-step queries
    # ------------------------------------------------------------------

    def producers_of(self, line: int) -> list[LineStep]:
        """Lines one producer-flow hop behind ``line``."""
        pairs = []
        for node in self._nodes_at(line):
            for dep, kind in self.sdg.dependencies(node):
                if kind in THIN_KINDS:
                    pairs.append((dep, kind))
        return self._collect(pairs)

    def explainers_of(self, line: int) -> list[LineStep]:
        """Base-pointer and control explainers of ``line`` (§2)."""
        pairs = []
        for node in self._nodes_at(line):
            for dep, kind in self.sdg.dependencies(node):
                if kind in (EdgeKind.BASE, EdgeKind.CONTROL):
                    pairs.append((dep, kind))
        return self._collect(pairs)

    def consumers_of(self, line: int) -> list[LineStep]:
        """Lines one producer-flow hop ahead of ``line``."""
        pairs = []
        for node in self._nodes_at(line):
            for user, kind in self._uses.get(node, ()):
                if kind in THIN_KINDS:
                    pairs.append((user, kind))
        return self._collect(pairs)

    # ------------------------------------------------------------------
    # Path explanation
    # ------------------------------------------------------------------

    def why(
        self,
        source_line: int,
        sink_line: int,
        kinds: frozenset[EdgeKind] = THIN_KINDS,
    ) -> list[LineStep] | None:
        """A shortest dependence path from sink back to source.

        Returns the hops in execution order (source first), or None when
        the source cannot reach the sink through ``kinds``.
        """
        sources = set(self._nodes_at(source_line))
        if not sources:
            return None
        parents: dict[SDGNode, tuple[SDGNode | None, EdgeKind | None]] = {}
        queue: deque[SDGNode] = deque()
        for seed in self._nodes_at(sink_line):
            parents[seed] = (None, None)
            queue.append(seed)
        hit: SDGNode | None = None
        while queue and hit is None:
            node = queue.popleft()
            if node in sources:
                hit = node
                break
            for dep, kind in self.sdg.dependencies(node):
                if kind in kinds and dep not in parents:
                    parents[dep] = (node, kind)
                    queue.append(dep)
                    if dep in sources:
                        hit = dep
                        queue.clear()
                        break
        if hit is None:
            return None
        steps: list[LineStep] = []
        cursor: SDGNode | None = hit
        incoming: EdgeKind | None = None
        while cursor is not None:
            line = node_position(cursor).line
            if line > 0 and (not steps or steps[-1].line != line):
                steps.append(
                    LineStep(
                        line,
                        {incoming} if incoming else set(),
                        self._line_text(line),
                    )
                )
            cursor, incoming = parents[cursor]
        return steps

    def render_path(self, steps: list[LineStep]) -> str:
        rows = []
        for index, step in enumerate(steps):
            arrow = "    " if index == 0 else " -> "
            kinds = ",".join(sorted(k.value for k in step.kinds)) or "seed"
            rows.append(f"{arrow}{step.line:5d} [{kinds:9s}] {step.text[:60]}")
        return "\n".join(rows)
