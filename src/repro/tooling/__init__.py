"""Tooling on top of the slicers: dependence navigation and export."""

from repro.tooling.navigator import LineStep, Navigator

__all__ = ["LineStep", "Navigator"]
