"""The fuzz oracle: the analyzer's no-crash/no-hang contract.

For *any* input text, running the full pipeline (and slicing from a few
seed lines) under a :class:`repro.budget.Budget` must end in exactly one
of two ways:

* **ok** — the program analyzed and sliced;
* **structured error** — an :class:`repro.lang.errors.MJError`
  (lex/parse/type/IR/analysis diagnostics, including the recursion
  sentinels), a :class:`repro.budget.BudgetExceeded` (the budget fired),
  or a :class:`repro.resources.ResourceExceeded` (the memory sentinel).

Anything else is a finding: an uncaught exception is a **crash**, and an
input whose wall-clock blows through the budget by a wide margin is a
**hang** (the cooperative-cancellation polls missed a hot loop).

:func:`check_source` returns a :class:`OracleResult` whose
``signature`` (verdict + exception type + a message prefix) is what the
campaign de-duplicates and the minimizer preserves while shrinking.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass

from repro import AnalyzeOptions, analyze
from repro.budget import Budget, BudgetExceeded
from repro.lang.errors import MJError
from repro.resources import ResourceExceeded

#: Wall-clock slack: duration beyond ``budget * factor + 1s`` is a hang.
HANG_FACTOR = 3.0

#: Default per-input analysis budget, seconds.
DEFAULT_INPUT_BUDGET_S = 5.0

#: Slice from these seed lines after a successful analysis (both
#: flavors); out-of-range lines simply produce empty slices.
_SLICE_LINES = (1, 5, 12)


@dataclass
class OracleResult:
    verdict: str  # "ok" | "error" | "crash" | "hang"
    error_type: str | None
    message: str
    duration_s: float
    traceback: str = ""

    @property
    def failed(self) -> bool:
        return self.verdict in ("crash", "hang")

    @property
    def signature(self) -> str:
        """Stable identity of a failure, for dedup and minimization."""
        if self.verdict == "hang":
            return "hang"
        return f"{self.verdict}:{self.error_type}:{self.message[:80]}"


def check_source(
    source: str,
    *,
    budget_s: float = DEFAULT_INPUT_BUDGET_S,
    filename: str = "<fuzz>",
) -> OracleResult:
    """Run one input through the oracle contract."""
    start = time.monotonic()

    def done(verdict: str, error_type: str | None, message: str,
             tb: str = "") -> OracleResult:
        duration = time.monotonic() - start
        if duration > budget_s * HANG_FACTOR + 1.0:
            # Whatever else happened, the budget failed to bound it.
            return OracleResult(
                "hang",
                error_type,
                f"analysis ran {duration:.1f}s against a {budget_s:g}s "
                f"budget (then: {message or verdict})",
                duration,
                tb,
            )
        return OracleResult(verdict, error_type, message, duration, tb)

    options = AnalyzeOptions(budget=Budget.from_timeout(budget_s))
    try:
        analyzed = analyze(source, filename, options=options)
        for line in _SLICE_LINES:
            analyzed.thin_slicer.slice_from_line(line)
            analyzed.traditional_slicer.slice_from_line(line)
    except MJError as exc:
        return done("error", type(exc).__name__, str(exc))
    except BudgetExceeded as exc:
        return done("error", "BudgetExceeded", str(exc))
    except ResourceExceeded as exc:
        return done("error", "ResourceExceeded", str(exc))
    except Exception as exc:  # the finding the fuzzer exists to catch
        return done(
            "crash", type(exc).__name__, str(exc), traceback.format_exc()
        )
    return done("ok", None, "")
