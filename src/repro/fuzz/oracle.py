"""The fuzz oracle: the analyzer's no-crash/no-hang contract.

For *any* input text, running the full pipeline (and slicing from a few
seed lines) under a :class:`repro.budget.Budget` must end in exactly one
of two ways:

* **ok** — the program analyzed and sliced;
* **structured error** — an :class:`repro.lang.errors.MJError`
  (lex/parse/type/IR/analysis diagnostics, including the recursion
  sentinels), a :class:`repro.budget.BudgetExceeded` (the budget fired),
  or a :class:`repro.resources.ResourceExceeded` (the memory sentinel).

Anything else is a finding: an uncaught exception is a **crash**, and an
input whose wall-clock blows through the budget by a wide margin is a
**hang** (the cooperative-cancellation polls missed a hot loop).

:func:`check_source` returns a :class:`OracleResult` whose
``signature`` (verdict + exception type + a message prefix) is what the
campaign de-duplicates and the minimizer preserves while shrinking.
"""

from __future__ import annotations

import random
import time
import traceback
from dataclasses import dataclass

from repro import AnalyzeOptions, analyze
from repro.budget import Budget, BudgetExceeded
from repro.lang.errors import MJError
from repro.resources import ResourceExceeded

#: Wall-clock slack: duration beyond ``budget * factor + 1s`` is a hang.
HANG_FACTOR = 3.0

#: Default per-input analysis budget, seconds.
DEFAULT_INPUT_BUDGET_S = 5.0

#: Slice from these seed lines after a successful analysis (both
#: flavors); out-of-range lines simply produce empty slices.
_SLICE_LINES = (1, 5, 12)


@dataclass
class OracleResult:
    verdict: str  # "ok" | "error" | "crash" | "hang"
    error_type: str | None
    message: str
    duration_s: float
    traceback: str = ""

    @property
    def failed(self) -> bool:
        return self.verdict in ("crash", "hang")

    @property
    def signature(self) -> str:
        """Stable identity of a failure, for dedup and minimization."""
        if self.verdict == "hang":
            return "hang"
        return f"{self.verdict}:{self.error_type}:{self.message[:80]}"


def check_source(
    source: str,
    *,
    budget_s: float = DEFAULT_INPUT_BUDGET_S,
    filename: str = "<fuzz>",
) -> OracleResult:
    """Run one input through the oracle contract."""
    start = time.monotonic()

    def done(verdict: str, error_type: str | None, message: str,
             tb: str = "") -> OracleResult:
        duration = time.monotonic() - start
        if duration > budget_s * HANG_FACTOR + 1.0:
            # Whatever else happened, the budget failed to bound it.
            return OracleResult(
                "hang",
                error_type,
                f"analysis ran {duration:.1f}s against a {budget_s:g}s "
                f"budget (then: {message or verdict})",
                duration,
                tb,
            )
        return OracleResult(verdict, error_type, message, duration, tb)

    options = AnalyzeOptions(budget=Budget.from_timeout(budget_s))
    try:
        analyzed = analyze(source, filename, options=options)
        for line in _SLICE_LINES:
            analyzed.thin_slicer.slice_from_line(line)
            analyzed.traditional_slicer.slice_from_line(line)
    except MJError as exc:
        return done("error", type(exc).__name__, str(exc))
    except BudgetExceeded as exc:
        return done("error", "BudgetExceeded", str(exc))
    except ResourceExceeded as exc:
        return done("error", "ResourceExceeded", str(exc))
    except Exception as exc:  # the finding the fuzzer exists to catch
        return done(
            "crash", type(exc).__name__, str(exc), traceback.format_exc()
        )
    return done("ok", None, "")


@dataclass
class EditSessionResult(OracleResult):
    """Oracle result for a warm-edit session, plus the failing text."""

    #: The edited source at the step that produced the finding (empty
    #: when the session passed) — the repro input the campaign records.
    failing_source: str = ""
    steps_checked: int = 0
    #: Steps served incrementally and confirmed byte-identical to cold
    #: (the rest were declines, where cold fallback is the contract).
    steps_verified: int = 0


def check_edit_session(
    source: str,
    rng: random.Random,
    *,
    steps: int = 6,
    budget_s: float = DEFAULT_INPUT_BUDGET_S,
    filename: str = "<fuzz-edit>",
) -> EditSessionResult:
    """Differential oracle for the incremental engine.

    Replays an :func:`repro.fuzz.mutate.edit_session` against a live
    :class:`repro.incremental.IncrementalSession` and, at every step,
    against a cold analysis of the same text.  The contract:

    * cold succeeds → the session either *declines* (cold fallback is
      always sound) or returns a payload **byte-identical** to the cold
      artifact;
    * cold fails structurally → the session must not fabricate a
      result: anything but a decline is a finding;
    * the session must never die on an unexpected exception
      (:class:`repro.incremental.SessionDeadError`).

    Findings surface as verdict ``"crash"`` with error types
    ``IncrementalMismatch`` / ``IncrementalAcceptedInvalid`` /
    ``SessionDead:<cause>``, so the campaign de-duplicates them like
    any other crash signature.
    """
    from repro.artifact import content_key, encode_artifact
    from repro.fuzz.mutate import edit_session
    from repro.incremental import (
        DeclinedError,
        IncrementalSession,
        SessionDeadError,
    )

    start = time.monotonic()
    checked = verified = 0

    def done(
        verdict: str,
        error_type: str | None,
        message: str,
        tb: str = "",
        failing: str = "",
    ) -> EditSessionResult:
        return EditSessionResult(
            verdict,
            error_type,
            message,
            time.monotonic() - start,
            tb,
            failing,
            checked,
            verified,
        )

    options = AnalyzeOptions(budget=Budget.from_timeout(budget_s))
    try:
        cold = analyze(source, filename, options=options)
    except (MJError, BudgetExceeded, ResourceExceeded) as exc:
        return done(
            "error", type(exc).__name__, f"seed did not analyze: {exc}"
        )
    except Exception as exc:
        # check_source territory, but classify rather than propagate.
        return done(
            "crash", type(exc).__name__, str(exc), traceback.format_exc()
        )
    try:
        session = IncrementalSession.from_analyzed(
            cold,
            source,
            payload=encode_artifact(
                cold, key=content_key(source, options), include_rich=False
            ),
        )
    except DeclinedError as exc:
        return done(
            "error", "IncrementalDeclined", f"seed declined: {exc.reason}"
        )

    for label, edited in edit_session(source, rng, steps=steps):
        checked += 1
        cold_error: Exception | None = None
        step_options = AnalyzeOptions(budget=Budget.from_timeout(budget_s))
        try:
            step_cold = analyze(edited, filename, options=step_options)
        except MJError as exc:
            cold_error = exc
        except (BudgetExceeded, ResourceExceeded) as exc:
            return done("error", type(exc).__name__, str(exc))
        except Exception as exc:
            return done(
                "crash",
                type(exc).__name__,
                f"cold analysis crashed at step {checked} ({label}): {exc}",
                traceback.format_exc(),
                failing=edited,
            )
        try:
            outcome = session.apply_edit(
                edited, filename, budget=Budget.from_timeout(budget_s)
            )
        except DeclinedError:
            # Cold fallback; keep the session aligned with the newest
            # good text so later steps stay comparable.
            if cold_error is None:
                session = IncrementalSession.from_analyzed(
                    step_cold,
                    edited,
                    payload=encode_artifact(
                        step_cold,
                        key=content_key(edited, step_options),
                        include_rich=False,
                    ),
                )
            continue
        except BudgetExceeded as exc:
            return done("error", "BudgetExceeded", str(exc))
        except SessionDeadError as exc:
            cause = type(exc.__cause__).__name__
            return done(
                "crash",
                f"SessionDead:{cause}",
                f"session died at step {checked} ({label}): {exc.__cause__}",
                traceback.format_exc(),
                failing=edited,
            )
        if cold_error is not None:
            return done(
                "crash",
                "IncrementalAcceptedInvalid",
                f"step {checked} ({label}): incremental produced tier="
                f"{outcome.tier} but cold raised "
                f"{type(cold_error).__name__}: {cold_error}",
                failing=edited,
            )
        want = encode_artifact(
            step_cold,
            key=content_key(edited, step_options),
            include_rich=False,
        )
        if outcome.payload != want:
            return done(
                "crash",
                "IncrementalMismatch",
                f"step {checked} ({label}): tier={outcome.tier} payload "
                f"({len(outcome.payload)} bytes) != cold ({len(want)} bytes)",
                failing=edited,
            )
        verified += 1
    return done("ok", None, "")
