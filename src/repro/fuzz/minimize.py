"""Delta-debugging minimizer for failing fuzz inputs.

Classic ddmin over lines: repeatedly try removing chunks (halving the
chunk size as removals stop working) while the oracle keeps reporting
the *same failure signature*, then a final pass drops single lines.
The result is the small repro that lands in the crash directory — a
crasher a human can read, not the 200-line fuzz soup that found it.

Each candidate costs one full oracle run, so :func:`minimize_source`
takes a ``max_checks`` cap; minimization is best-effort and the
original input is always a valid fallback.
"""

from __future__ import annotations

from typing import Callable


def minimize_source(
    source: str,
    still_fails: Callable[[str], bool],
    *,
    max_checks: int = 200,
) -> str:
    """Shrink ``source`` while ``still_fails`` holds.

    ``still_fails`` must return True for ``source`` itself (the caller
    checks the failure signature, not just "any failure", so the
    minimizer cannot wander onto a different bug).
    """
    lines = source.split("\n")
    checks = 0

    def fails(candidate: list[str]) -> bool:
        nonlocal checks
        if checks >= max_checks:
            return False
        checks += 1
        return still_fails("\n".join(candidate))

    chunk = max(1, len(lines) // 2)
    while chunk >= 1 and checks < max_checks:
        removed_any = False
        start = 0
        while start < len(lines) and checks < max_checks:
            candidate = lines[:start] + lines[start + chunk:]
            if candidate and fails(candidate):
                lines = candidate
                removed_any = True
                # Same start index now addresses the next chunk.
            else:
                start += chunk
        if not removed_any:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return "\n".join(lines)
