"""Seeded grammar-based MJ program generator.

Produces syntactically valid, *mostly* well-typed MJ programs straight
from the language grammar: a handful of classes (fields, constructors,
methods, occasional inheritance) plus a ``Main.main`` exercising loops,
conditionals, arrays, casts, ``instanceof``, try/throw/catch, and calls
into the generated classes.  The point is to reach deep into the
pipeline — SSA, points-to, SDG construction, tabulation — with inputs
no human wrote, under the fuzz oracle's no-crash/no-hang contract.

Determinism is load-bearing: ``generate_program(seed)`` is a pure
function of the seed (one private ``random.Random`` per call, no global
RNG), so every crash the fuzzer reports can be regenerated from its
seed alone.

``scale`` multiplies the *upper bounds* of the size dials (classes,
methods per class, statements per body) without touching the lower
bounds or the draw order, so ``scale=1.0`` reproduces exactly the
programs earlier releases generated from the same seed — old fuzzer
crash seeds stay regenerable — while ``scale=8.0`` yields programs
whose analyses run well past the hand-written suite, for the perf
guards and the scale corpus under ``tests/scale/``.

The generator tracks declared variables by type while emitting code, so
expressions are type-correct by construction; *invalid* inputs are the
mutation fuzzer's job (:mod:`repro.fuzz.mutate`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: Nesting the generator will not exceed — comfortably below the
#: parser's MAX_NESTING guard so generated programs always parse.
MAX_DEPTH = 6

_INT = "int"
_BOOL = "boolean"
_INT_ARRAY = "int[]"


@dataclass
class _Method:
    name: str
    params: list[str]  # parameter types
    returns: str  # _INT, _BOOL, or "void"


@dataclass
class _Class:
    name: str
    base: str | None = None
    int_fields: list[str] = field(default_factory=list)
    ref_fields: list[tuple[str, str]] = field(default_factory=list)  # (name, class)
    methods: list[_Method] = field(default_factory=list)
    ctor_params: int = 0


class _Scope:
    """Variables visible at the emission point, grouped by type.

    Child scopes (``_Scope(parent)``) copy the visible names but share
    the fresh-name counter, so declarations inside a nested block never
    leak into the enclosing scope and names never collide anywhere.
    """

    def __init__(self, parent: "_Scope | None" = None) -> None:
        if parent is None:
            self.by_type: dict[str, list[str]] = {}
            self._counter = [0]
        else:
            self.by_type = {k: list(v) for k, v in parent.by_type.items()}
            self._counter = parent._counter

    def fresh(self, type_name: str) -> str:
        self._counter[0] += 1
        name = f"v{self._counter[0]}"
        self.by_type.setdefault(type_name, []).append(name)
        return name

    def pick(self, rng: random.Random, type_name: str) -> str | None:
        names = self.by_type.get(type_name)
        return rng.choice(names) if names else None


class ProgramGenerator:
    """One seeded generation run; use :func:`generate_program`."""

    def __init__(self, seed: int, scale: float = 1.0) -> None:
        if scale < 1.0:
            raise ValueError("scale must be >= 1.0")
        self.rng = random.Random(seed)
        self.scale = scale
        self.classes: list[_Class] = []
        self.lines: list[str] = []
        self.indent = 0

    # -- emission ------------------------------------------------------

    def _emit(self, text: str) -> None:
        self.lines.append("  " * self.indent + text)

    def _count(self, low: int, high: int) -> int:
        """A size draw whose upper bound grows with ``scale``.

        At ``scale=1.0`` this is exactly ``randint(low, high)`` — same
        bounds, same single draw — so the RNG stream (and therefore
        every seed's output) is unchanged from before the dial existed.
        """
        return self.rng.randint(low, max(low, round(high * self.scale)))

    # -- class shapes --------------------------------------------------

    def _plan_classes(self) -> None:
        rng = self.rng
        count = self._count(1, 3)
        for index in range(count):
            cls = _Class(name=f"C{index}")
            if index > 0 and rng.random() < 0.4:
                cls.base = rng.choice(self.classes).name
            for f in range(self._count(1, 3)):
                cls.int_fields.append(f"f{f}")
            if self.classes and rng.random() < 0.6:
                target = rng.choice(self.classes).name
                cls.ref_fields.append(("ref", target))
            cls.ctor_params = rng.randint(0, min(2, len(cls.int_fields)))
            for m in range(self._count(1, 2)):
                cls.methods.append(
                    _Method(
                        # Class-qualified so a subclass never collides
                        # with a parent method of a different signature.
                        name=f"m{index}_{m}",
                        params=[_INT] * rng.randint(0, 2),
                        returns=rng.choice([_INT, _INT, _BOOL, "void"]),
                    )
                )
            self.classes.append(cls)

    def _all_int_fields(self, cls: _Class) -> list[str]:
        fields = list(cls.int_fields)
        base = cls.base
        while base is not None:
            parent = next(c for c in self.classes if c.name == base)
            fields.extend(parent.int_fields)
            base = parent.base
        return fields

    def _emit_class(self, cls: _Class) -> None:
        head = f"class {cls.name}"
        if cls.base is not None:
            head += f" extends {cls.base}"
        self._emit(head + " {")
        self.indent += 1
        for f in cls.int_fields:
            self._emit(f"int {f};")
        for name, target in cls.ref_fields:
            self._emit(f"{target} {name};")
        self._emit_ctor(cls)
        for method in cls.methods:
            self._emit_method(cls, method)
        self.indent -= 1
        self._emit("}")
        self._emit("")

    def _emit_ctor(self, cls: _Class) -> None:
        rng = self.rng
        params = ", ".join(f"int p{i}" for i in range(cls.ctor_params))
        self._emit(f"{cls.name}({params}) {{")
        self.indent += 1
        if cls.base is not None:
            parent = next(c for c in self.classes if c.name == cls.base)
            args = ", ".join(
                str(rng.randint(0, 9)) for _ in range(parent.ctor_params)
            )
            self._emit(f"super({args});")
        for index, f in enumerate(cls.int_fields):
            if index < cls.ctor_params:
                self._emit(f"this.{f} = p{index};")
            else:
                self._emit(f"this.{f} = {rng.randint(0, 99)};")
        self.indent -= 1
        self._emit("}")

    def _emit_method(self, cls: _Class, method: _Method) -> None:
        scope = _Scope()
        params = []
        for index, ptype in enumerate(method.params):
            name = f"a{index}"
            scope.by_type.setdefault(ptype, []).append(name)
            params.append(f"{ptype} {name}")
        for f in self._all_int_fields(cls):
            scope.by_type.setdefault(_INT, []).append(f)
        self._emit(f"{method.returns} {method.name}({', '.join(params)}) {{")
        self.indent += 1
        for _ in range(self._count(1, 3)):
            self._emit_stmt(scope, depth=0, in_loop=False)
        if method.returns == _INT:
            self._emit(f"return {self._int_expr(scope, 1)};")
        elif method.returns == _BOOL:
            self._emit(f"return {self._bool_expr(scope, 1)};")
        self.indent -= 1
        self._emit("}")

    # -- statements ----------------------------------------------------

    def _emit_stmt(self, scope: _Scope, depth: int, in_loop: bool) -> None:
        rng = self.rng
        roll = rng.random()
        if depth >= MAX_DEPTH:
            roll = 1.0  # force a flat statement at the depth limit
        if roll < 0.22:
            self._emit_decl(scope)
        elif roll < 0.40:
            self._emit_assign(scope)
        elif roll < 0.52 and depth < MAX_DEPTH:
            self._emit_if(scope, depth, in_loop)
        elif roll < 0.62 and depth < MAX_DEPTH:
            self._emit_loop(scope, depth)
        elif roll < 0.70 and depth < MAX_DEPTH:
            self._emit_try(scope, depth)
        elif roll < 0.78 and in_loop:
            self._emit(rng.choice(["break;", "continue;"]))
        else:
            self._emit(f"print({self._int_expr(scope, depth + 1)});")

    def _emit_decl(self, scope: _Scope) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.45:
            # Build the initializer before registering the name, so the
            # new variable cannot appear in its own initializer.
            init = self._int_expr(scope, 1)
            self._emit(f"int {scope.fresh(_INT)} = {init};")
        elif roll < 0.6:
            init = self._bool_expr(scope, 1)
            self._emit(f"boolean {scope.fresh(_BOOL)} = {init};")
        elif roll < 0.75 and self.classes:
            cls = rng.choice(self.classes)
            name = scope.fresh(cls.name)
            self._emit(f"{cls.name} {name} = {self._new_expr(cls)};")
        else:
            name = scope.fresh(_INT_ARRAY)
            size = rng.randint(1, 8)
            self._emit(f"int[] {name} = new int[{size}];")

    def _emit_assign(self, scope: _Scope) -> None:
        rng = self.rng
        target = scope.pick(rng, _INT)
        if target is None:
            self._emit_decl(scope)
            return
        array = scope.pick(rng, _INT_ARRAY)
        obj = self._pick_object(scope)
        roll = rng.random()
        if roll < 0.2:
            op = rng.choice(["+=", "-="])
            self._emit(f"{target} {op} {self._int_expr(scope, 1)};")
        elif roll < 0.35 and array is not None:
            self._emit(
                f"{array}[{rng.randint(0, 3)}] = {self._int_expr(scope, 1)};"
            )
        elif roll < 0.5 and obj is not None:
            name, cls = obj
            fields = self._all_int_fields(cls)
            if fields:
                self._emit(
                    f"{name}.{rng.choice(fields)} = {self._int_expr(scope, 1)};"
                )
                return
            self._emit(f"{target} = {self._int_expr(scope, 1)};")
        elif roll < 0.6:
            self._emit(f"{target}{rng.choice(['++', '--'])};")
        else:
            self._emit(f"{target} = {self._int_expr(scope, 1)};")

    def _emit_if(self, scope: _Scope, depth: int, in_loop: bool) -> None:
        self._emit(f"if ({self._bool_expr(scope, depth + 1)}) {{")
        self.indent += 1
        inner = _Scope(scope)
        for _ in range(self.rng.randint(1, 2)):
            self._emit_stmt(inner, depth + 1, in_loop)
        self.indent -= 1
        if self.rng.random() < 0.4:
            self._emit("} else {")
            self.indent += 1
            self._emit_stmt(_Scope(scope), depth + 1, in_loop)
            self.indent -= 1
        self._emit("}")

    def _emit_loop(self, scope: _Scope, depth: int) -> None:
        rng = self.rng
        bound = rng.randint(2, 10)
        use_for = rng.random() < 0.5
        inner = _Scope(scope)
        if use_for:
            # The loop variable lives only in the loop body's scope.
            name = inner.fresh(_INT)
            self._emit(f"for (int {name} = 0; {name} < {bound}; {name}++) {{")
        else:
            name = scope.fresh(_INT)
            self._emit(f"int {name} = 0;")
            self._emit(f"while ({name} < {bound}) {{")
        self.indent += 1
        for _ in range(rng.randint(1, 2)):
            self._emit_stmt(inner, depth + 1, in_loop=True)
        if not use_for:
            self._emit(f"{name} = {name} + 1;")
        self.indent -= 1
        self._emit("}")

    def _emit_try(self, scope: _Scope, depth: int) -> None:
        if not self.classes:
            self._emit_decl(scope)
            return
        cls = self.rng.choice(self.classes)
        self._emit("try {")
        self.indent += 1
        if self.rng.random() < 0.5:
            self._emit(f"throw {self._new_expr(cls)};")
        else:
            self._emit_stmt(_Scope(scope), depth + 1, in_loop=False)
        self.indent -= 1
        self._emit(f"}} catch ({cls.name} e{depth}) {{")
        self.indent += 1
        fields = self._all_int_fields(cls)
        if fields:
            self._emit(f"print(e{depth}.{self.rng.choice(fields)});")
        else:
            self._emit(f"print({self.rng.randint(0, 9)});")
        self.indent -= 1
        self._emit("}")

    # -- expressions ---------------------------------------------------

    def _pick_object(self, scope: _Scope) -> tuple[str, _Class] | None:
        candidates = [
            (name, cls)
            for cls in self.classes
            for name in scope.by_type.get(cls.name, [])
        ]
        return self.rng.choice(candidates) if candidates else None

    def _new_expr(self, cls: _Class) -> str:
        args = ", ".join(
            str(self.rng.randint(0, 9)) for _ in range(cls.ctor_params)
        )
        return f"new {cls.name}({args})"

    def _int_expr(self, scope: _Scope, depth: int) -> str:
        rng = self.rng
        if depth >= MAX_DEPTH:
            return str(rng.randint(0, 99))
        roll = rng.random()
        if roll < 0.3:
            return str(rng.randint(0, 99))
        if roll < 0.5:
            name = scope.pick(rng, _INT)
            return name if name is not None else str(rng.randint(0, 99))
        if roll < 0.62:
            array = scope.pick(rng, _INT_ARRAY)
            if array is not None:
                if rng.random() < 0.3:
                    return f"{array}.length"
                return f"{array}[{rng.randint(0, 3)}]"
        if roll < 0.75:
            obj = self._pick_object(scope)
            if obj is not None:
                name, cls = obj
                fields = self._all_int_fields(cls)
                int_methods = [
                    m for m in cls.methods if m.returns == _INT
                ]
                if int_methods and rng.random() < 0.5:
                    method = rng.choice(int_methods)
                    args = ", ".join(
                        self._int_expr(scope, depth + 1)
                        for _ in method.params
                    )
                    return f"{name}.{method.name}({args})"
                if fields:
                    return f"{name}.{rng.choice(fields)}"
        op = rng.choice(["+", "-", "*", "/", "%"])
        left = self._int_expr(scope, depth + 1)
        right = self._int_expr(scope, depth + 1)
        if op in ("/", "%"):
            # Static analysis never divides, but keep the programs
            # honest for the interpreter too.
            right = f"({right} + 1)"
        return f"({left} {op} {right})"

    def _bool_expr(self, scope: _Scope, depth: int) -> str:
        rng = self.rng
        if depth >= MAX_DEPTH:
            return rng.choice(["true", "false"])
        roll = rng.random()
        if roll < 0.15:
            return rng.choice(["true", "false"])
        if roll < 0.25:
            name = scope.pick(rng, _BOOL)
            if name is not None:
                return name
        if roll < 0.4:
            op = rng.choice(["&&", "||"])
            return (
                f"({self._bool_expr(scope, depth + 1)} {op} "
                f"{self._bool_expr(scope, depth + 1)})"
            )
        if roll < 0.5:
            return f"!({self._bool_expr(scope, depth + 1)})"
        if roll < 0.6:
            obj = self._pick_object(scope)
            if obj is not None:
                name, cls = obj
                subs = [
                    c.name
                    for c in self.classes
                    if c.base == cls.name or c.name == cls.name
                ]
                return f"{name} instanceof {rng.choice(subs)}"
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return (
            f"{self._int_expr(scope, depth + 1)} {op} "
            f"{self._int_expr(scope, depth + 1)}"
        )

    # -- entry ---------------------------------------------------------

    def generate(self) -> str:
        self._plan_classes()
        self._emit("// fuzz-generated MJ program")
        for cls in self.classes:
            self._emit_class(cls)
        self._emit("class Main {")
        self.indent += 1
        self._emit("static void main(String[] args) {")
        self.indent += 1
        scope = _Scope()
        for cls in self.classes:
            name = scope.fresh(cls.name)
            self._emit(f"{cls.name} {name} = {self._new_expr(cls)};")
        for _ in range(self._count(4, 10)):
            self._emit_stmt(scope, depth=0, in_loop=False)
        self._emit(f"print({self._int_expr(scope, 1)});")
        self.indent -= 1
        self._emit("}")
        self.indent -= 1
        self._emit("}")
        return "\n".join(self.lines) + "\n"


def generate_program(seed: int, scale: float = 1.0) -> str:
    """Deterministically generate one MJ program from ``seed``.

    ``scale`` (>= 1.0) multiplies the generator's size upper bounds;
    ``scale=1.0`` is byte-identical to the pre-dial generator.
    """
    return ProgramGenerator(seed, scale=scale).generate()
