"""Mutation fuzzer: corrupt known-good MJ sources in grammar-aware ways.

Where :mod:`repro.fuzz.grammar` generates *valid* programs to exercise
the deep pipeline, the mutator starts from real corpus programs (the
paper suite, checked-in regression crashers) and damages them — the
inputs a hardened frontend actually has to survive: unbalanced braces,
truncated files, spliced fragments, mangled literals, stray operator
soup.  The oracle's contract for these is not "analyzes fine" but
"fails *structurally*": an :class:`repro.lang.errors.MJError` with a
position, never an uncaught exception, hang, or interpreter-level
crash.

:func:`edit_session` is the third mode: instead of one corrupted input
it produces a *sequence* of mostly-valid single-function edits, the
workload of the incremental engine — its oracle
(:func:`repro.fuzz.oracle.check_edit_session`) demands byte-identical
incremental-vs-cold artifacts at every step.

All mutations draw from the supplied ``random.Random`` only, so a
mutated input is reproducible from ``(corpus, seed)``.
"""

from __future__ import annotations

import random

#: Characters the lexer cares about — injected verbatim to probe
#: tokenizer and parser edges.
_PUNCT = "{}()[];,.=+-*/%!<>&|\"'"

_KEYWORDS = (
    "class extends static void int boolean if else while for return "
    "break continue new this super null true false instanceof throw "
    "try catch"
).split()


def _delete_lines(rng: random.Random, lines: list[str]) -> list[str]:
    if not lines:
        return lines
    start = rng.randrange(len(lines))
    span = min(len(lines) - start, rng.randint(1, 5))
    return lines[:start] + lines[start + span:]


def _duplicate_line(rng: random.Random, lines: list[str]) -> list[str]:
    if not lines:
        return lines
    index = rng.randrange(len(lines))
    return lines[: index + 1] + [lines[index]] + lines[index + 1:]


def _swap_lines(rng: random.Random, lines: list[str]) -> list[str]:
    if len(lines) < 2:
        return lines
    a, b = rng.sample(range(len(lines)), 2)
    lines = list(lines)
    lines[a], lines[b] = lines[b], lines[a]
    return lines


def _truncate(rng: random.Random, lines: list[str]) -> list[str]:
    if not lines:
        return lines
    return lines[: rng.randrange(len(lines))]


def _insert_punct(rng: random.Random, lines: list[str]) -> list[str]:
    text = "\n".join(lines)
    if not text:
        return [rng.choice(_PUNCT)]
    pos = rng.randrange(len(text))
    burst = "".join(rng.choice(_PUNCT) for _ in range(rng.randint(1, 6)))
    return (text[:pos] + burst + text[pos:]).split("\n")


def _flip_char(rng: random.Random, lines: list[str]) -> list[str]:
    text = "\n".join(lines)
    if not text:
        return lines
    pos = rng.randrange(len(text))
    repl = chr(rng.randrange(32, 127))
    return (text[:pos] + repl + text[pos + 1:]).split("\n")


def _mangle_number(rng: random.Random, lines: list[str]) -> list[str]:
    candidates = [
        (i, j)
        for i, line in enumerate(lines)
        for j, ch in enumerate(line)
        if ch.isdigit()
    ]
    if not candidates:
        return lines
    i, j = rng.choice(candidates)
    big = rng.choice(["999999999999999999999", "-1", "2147483648", "0"])
    lines = list(lines)
    lines[i] = lines[i][:j] + big + lines[i][j + 1:]
    return lines


def _keyword_swap(rng: random.Random, lines: list[str]) -> list[str]:
    candidates = [
        i for i, line in enumerate(lines)
        if any(kw in line for kw in _KEYWORDS)
    ]
    if not candidates:
        return lines
    i = rng.choice(candidates)
    present = [kw for kw in _KEYWORDS if kw in lines[i]]
    old = rng.choice(present)
    lines = list(lines)
    lines[i] = lines[i].replace(old, rng.choice(_KEYWORDS), 1)
    return lines


def _unbalance(rng: random.Random, lines: list[str]) -> list[str]:
    bracket = rng.choice("{}()")
    candidates = [i for i, line in enumerate(lines) if bracket in line]
    if not candidates:
        return lines + [bracket]
    i = rng.choice(candidates)
    lines = list(lines)
    lines[i] = lines[i].replace(bracket, "", 1)
    return lines


def _splice(
    rng: random.Random, lines: list[str], donor: list[str]
) -> list[str]:
    if not donor:
        return lines
    dstart = rng.randrange(len(donor))
    dspan = min(len(donor) - dstart, rng.randint(1, 8))
    at = rng.randrange(len(lines) + 1)
    return lines[:at] + donor[dstart : dstart + dspan] + lines[at:]


_SINGLE = (
    _delete_lines,
    _duplicate_line,
    _swap_lines,
    _truncate,
    _insert_punct,
    _flip_char,
    _mangle_number,
    _keyword_swap,
    _unbalance,
)


def mutate_source(
    source: str,
    rng: random.Random,
    donors: list[str] | None = None,
) -> str:
    """Apply 1–4 random mutations to ``source``; deterministic in rng."""
    lines = source.split("\n")
    for _ in range(rng.randint(1, 4)):
        if donors and rng.random() < 0.2:
            donor = rng.choice(donors)
            lines = _splice(rng, lines, donor.split("\n"))
        else:
            lines = rng.choice(_SINGLE)(rng, lines)
    return "\n".join(lines)


def edit_session(
    source: str,
    rng: random.Random,
    steps: int = 6,
) -> list[tuple[str, str]]:
    """A warm-edit session: successive single-function edits of ``source``.

    Where :func:`mutate_source` damages a program once, this models the
    workload the incremental engine (:mod:`repro.incremental`) serves: a
    developer editing one function at a time.  Each step edits the
    *previous* step's text — mostly validity-preserving statement
    inserts, comment/blank-line shifts, and whitespace churn, plus the
    occasional statement deletion that may break the program (the
    incremental path must then fail exactly like a cold analysis).

    Returns up to ``steps`` ``(label, edited_source)`` pairs — fewer if
    the text stops splitting into units.  Deterministic in ``rng``.
    """
    from repro.incremental import DeclinedError, split_units

    out: list[tuple[str, str]] = []
    current = source
    for step in range(steps):
        try:
            shape = split_units(current)
        except DeclinedError:
            break
        units = shape.units
        if not units:
            break
        lines = current.split("\n")
        # Multi-line function bodies are where statement edits can land.
        bodies = [
            u
            for u in units
            if u.kind in ("method", "constructor")
            and u.end_line > u.start_line
        ]
        roll = rng.random()
        if bodies and roll < 0.40:
            label = "stmt-insert"
            m = rng.choice(bodies)
            at = rng.randrange(m.start_line, m.end_line)
            stmt = f'        String __fz{step} = "s{rng.randrange(100)}";'
            lines.insert(at, stmt)
        elif bodies and roll < 0.55:
            m = rng.choice(bodies)
            interior = range(m.start_line, m.end_line - 1)
            if interior:
                label = "stmt-dup"
                at = rng.choice(interior)
                lines.insert(at, lines[at])
            else:
                label = "stmt-insert"
                lines.insert(m.start_line, f'        String __fz{step} = "d";')
        elif bodies and roll < 0.60:
            # Destructive on purpose: both paths must reject identically.
            label = "stmt-del"
            m = rng.choice(bodies)
            interior = range(m.start_line, m.end_line - 1)
            if interior:
                del lines[rng.choice(interior)]
            else:
                del lines[m.start_line]
        elif roll < 0.78:
            label = "comment-shift"
            u = rng.choice(units)
            lines.insert(u.start_line - 1, f"// edit-session probe {step}")
        elif roll < 0.90:
            label = "blank-shift"
            u = rng.choice(units)
            lines.insert(u.start_line - 1, "")
        else:
            label = "trailing-ws"
            u = rng.choice(units)
            at = u.start_line - 1
            lines[at] = lines[at] + "  "
        current = "\n".join(lines)
        out.append((label, current))
    return out
