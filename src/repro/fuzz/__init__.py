"""Grammar-based and mutation fuzzing for the MJ analysis pipeline.

The oracle contract under test: any input text, valid or garbage, must
end in a slice or a structured error (``MJError`` /
``BudgetExceeded`` / ``ResourceExceeded``) — never an uncaught
exception, never a hang the budget cannot bound.  Warm-edit sessions
add a differential contract on top: the incremental engine's artifact
must be byte-identical to a cold analysis at every step.  See
``docs/HARDENING.md`` and the ``repro fuzz`` CLI subcommand.
"""

from repro.fuzz.grammar import ProgramGenerator, generate_program
from repro.fuzz.minimize import minimize_source
from repro.fuzz.mutate import edit_session, mutate_source
from repro.fuzz.oracle import (
    EditSessionResult,
    OracleResult,
    check_edit_session,
    check_source,
)
from repro.fuzz.runner import (
    CrashRecord,
    FuzzReport,
    default_corpus,
    run_campaign,
)

__all__ = [
    "CrashRecord",
    "EditSessionResult",
    "FuzzReport",
    "OracleResult",
    "ProgramGenerator",
    "check_edit_session",
    "check_source",
    "default_corpus",
    "edit_session",
    "generate_program",
    "minimize_source",
    "mutate_source",
    "run_campaign",
]
