"""The fuzz campaign: generate, mutate, check, minimize, report.

One call to :func:`run_campaign` drives a time-boxed loop that
alternates grammar-generated programs (:mod:`repro.fuzz.grammar`) with
mutated corpus programs (:mod:`repro.fuzz.mutate`), runs every input
through the oracle (:mod:`repro.fuzz.oracle`), and for each *novel*
failure signature shrinks the input with ddmin
(:mod:`repro.fuzz.minimize`) and writes a repro pair to the crash
directory::

    crash-<sig12>.mj    the minimized input
    crash-<sig12>.txt   verdict, error type, message, traceback

The whole campaign is a pure function of ``(seed, corpus, budgets)``:
input k is generated from ``random.Random(seed * 1_000_003 + k)``, so
a failure found by a CI run is reproducible locally from the seed in
the report.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.fuzz.grammar import generate_program
from repro.fuzz.minimize import minimize_source
from repro.fuzz.mutate import mutate_source
from repro.fuzz.oracle import (
    DEFAULT_INPUT_BUDGET_S,
    check_edit_session,
    check_source,
)

#: Of every 8 inputs: this many grammar-generated, one warm-edit
#: session against the incremental engine, the rest mutated.
_GENERATED_PER_CYCLE = 4
_CYCLE = 8
_EDIT_SESSION_SLOT = 7


@dataclass
class CrashRecord:
    signature: str
    seed: int
    kind: str  # "generated" | "mutated"
    verdict: str
    error_type: str | None
    message: str
    source: str
    minimized: str
    path: str | None = None


@dataclass
class FuzzReport:
    seed: int
    budget_s: float
    executed: int = 0
    generated: int = 0
    mutated: int = 0
    edit_sessions: int = 0
    #: Edit steps confirmed byte-identical incremental-vs-cold.
    edit_steps_verified: int = 0
    ok: int = 0
    structured_errors: int = 0
    crashes: list[CrashRecord] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def failed(self) -> bool:
        return bool(self.crashes)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget_s": self.budget_s,
            "executed": self.executed,
            "generated": self.generated,
            "mutated": self.mutated,
            "edit_sessions": self.edit_sessions,
            "edit_steps_verified": self.edit_steps_verified,
            "ok": self.ok,
            "structured_errors": self.structured_errors,
            "elapsed_s": round(self.elapsed_s, 2),
            "crashes": [
                {
                    "signature": c.signature,
                    "seed": c.seed,
                    "kind": c.kind,
                    "verdict": c.verdict,
                    "error_type": c.error_type,
                    "message": c.message,
                    "path": c.path,
                }
                for c in self.crashes
            ],
        }


def default_corpus() -> list[str]:
    """Known-good seeds for mutation: the paper suite programs."""
    from repro.suite.loader import load_source, program_names

    return [load_source(name) for name in program_names()]


def run_campaign(
    budget_s: float = 60.0,
    seed: int = 0,
    *,
    corpus: list[str] | None = None,
    crash_dir: str | Path | None = None,
    input_budget_s: float = DEFAULT_INPUT_BUDGET_S,
    max_inputs: int | None = None,
    minimize_checks: int = 200,
    progress: "callable | None" = None,
) -> FuzzReport:
    """Fuzz until ``budget_s`` wall-clock seconds (or ``max_inputs``)."""
    if corpus is None:
        corpus = default_corpus()
    report = FuzzReport(seed=seed, budget_s=budget_s)
    seen: set[str] = set()
    start = time.monotonic()
    index = 0
    while time.monotonic() - start < budget_s:
        if max_inputs is not None and index >= max_inputs:
            break
        input_seed = seed * 1_000_003 + index
        slot = index % _CYCLE
        if slot < _GENERATED_PER_CYCLE or not corpus:
            source = generate_program(input_seed)
            kind = "generated"
            report.generated += 1
        elif slot == _EDIT_SESSION_SLOT:
            rng = random.Random(input_seed)
            source = rng.choice(corpus)
            kind = "edit-session"
            report.edit_sessions += 1
        else:
            rng = random.Random(input_seed)
            source = mutate_source(rng.choice(corpus), rng, donors=corpus)
            kind = "mutated"
            report.mutated += 1
        index += 1
        report.executed += 1
        if kind == "edit-session":
            result = check_edit_session(
                source, rng, budget_s=input_budget_s
            )
            report.edit_steps_verified += result.steps_verified
            # A session finding reproduces from the failing *edited*
            # text plus its lineage, not from one input text — record
            # that step's source verbatim instead of ddmin shrinking.
            source = result.failing_source or source
        else:
            result = check_source(source, budget_s=input_budget_s)
        if result.verdict == "ok":
            report.ok += 1
        elif not result.failed:
            report.structured_errors += 1
        elif result.signature not in seen:
            seen.add(result.signature)
            record = _record_crash(
                source,
                result,
                input_seed,
                kind,
                crash_dir,
                input_budget_s,
                minimize_checks,
            )
            report.crashes.append(record)
            if progress is not None:
                progress(record)
    report.elapsed_s = time.monotonic() - start
    return report


def _record_crash(
    source: str,
    result,
    input_seed: int,
    kind: str,
    crash_dir: str | Path | None,
    input_budget_s: float,
    minimize_checks: int,
) -> CrashRecord:
    signature = result.signature

    def still_fails(candidate: str) -> bool:
        probe = check_source(candidate, budget_s=input_budget_s)
        return probe.signature == signature

    if kind == "edit-session":
        # The differential finding depends on the session's lineage;
        # single-input ddmin cannot preserve it.  Ship the step as-is.
        minimized = source
    else:
        minimized = minimize_source(
            source, still_fails, max_checks=minimize_checks
        )
    record = CrashRecord(
        signature=signature,
        seed=input_seed,
        kind=kind,
        verdict=result.verdict,
        error_type=result.error_type,
        message=result.message,
        source=source,
        minimized=minimized,
    )
    if crash_dir is not None:
        digest = hashlib.sha256(signature.encode("utf-8")).hexdigest()[:12]
        directory = Path(crash_dir)
        directory.mkdir(parents=True, exist_ok=True)
        repro_path = directory / f"crash-{digest}.mj"
        repro_path.write_text(record.minimized, encoding="utf-8")
        (directory / f"crash-{digest}.txt").write_text(
            f"signature: {signature}\n"
            f"verdict: {record.verdict}\n"
            f"error_type: {record.error_type}\n"
            f"message: {record.message}\n"
            f"kind: {kind}\n"
            f"input_seed: {input_seed}\n\n"
            f"{result.traceback}",
            encoding="utf-8",
        )
        record.path = str(repro_path)
    return record
