"""Token kinds and the token record produced by the MJ lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.lang.source import Position


class TokenKind(enum.Enum):
    """Every lexical category in MJ."""

    # Literals and identifiers.
    IDENT = "identifier"
    INT_LITERAL = "int literal"
    STRING_LITERAL = "string literal"
    CHAR_LITERAL = "char literal"

    # Keywords.
    CLASS = "class"
    EXTENDS = "extends"
    STATIC = "static"
    FINAL = "final"
    VOID = "void"
    INT = "int"
    BOOLEAN = "boolean"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    FOR = "for"
    RETURN = "return"
    BREAK = "break"
    CONTINUE = "continue"
    NEW = "new"
    THIS = "this"
    SUPER = "super"
    NULL = "null"
    TRUE = "true"
    FALSE = "false"
    INSTANCEOF = "instanceof"
    THROW = "throw"
    TRY = "try"
    CATCH = "catch"

    # Punctuation and operators.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    NOT = "!"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    AND = "&&"
    OR = "||"
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="

    EOF = "end of file"


KEYWORDS: dict[str, TokenKind] = {
    "class": TokenKind.CLASS,
    "extends": TokenKind.EXTENDS,
    "static": TokenKind.STATIC,
    "final": TokenKind.FINAL,
    "void": TokenKind.VOID,
    "int": TokenKind.INT,
    "boolean": TokenKind.BOOLEAN,
    "if": TokenKind.IF,
    "else": TokenKind.ELSE,
    "while": TokenKind.WHILE,
    "for": TokenKind.FOR,
    "return": TokenKind.RETURN,
    "break": TokenKind.BREAK,
    "continue": TokenKind.CONTINUE,
    "new": TokenKind.NEW,
    "this": TokenKind.THIS,
    "super": TokenKind.SUPER,
    "null": TokenKind.NULL,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
    "instanceof": TokenKind.INSTANCEOF,
    "throw": TokenKind.THROW,
    "try": TokenKind.TRY,
    "catch": TokenKind.CATCH,
}


@dataclass(frozen=True)
class Token:
    """A single lexed token with its verbatim text and position."""

    kind: TokenKind
    text: str
    position: Position

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.position}"
