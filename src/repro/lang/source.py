"""Source-file abstractions: positions, spans, and marker extraction.

The benchmark suite tags interesting lines with ``//@tag:name`` comments
(seed statements, desired statements, injected-bug sites).  Because bug
injection rewrites lines, tags are resolved against the *final* text of
each program, never hard-coded as line numbers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Position:
    """A (line, column) pair within a named source file. 1-based."""

    line: int
    column: int
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


@dataclass(frozen=True)
class SourceFile:
    """An MJ source file: its name, its text, and line-level helpers."""

    name: str
    text: str

    def lines(self) -> list[str]:
        return self.text.splitlines()

    def line_text(self, line: int) -> str:
        """Return the 1-based line ``line``, or '' when out of range."""
        lines = self.lines()
        if 1 <= line <= len(lines):
            return lines[line - 1]
        return ""


_MARKER_RE = re.compile(r"//\s*@(?P<kind>[A-Za-z_]+):(?P<name>[A-Za-z0-9_.\-]+)")


def find_markers(text: str) -> dict[str, dict[str, int]]:
    """Extract ``//@kind:name`` markers from ``text``.

    Returns ``{kind: {name: line_number}}`` with 1-based line numbers.
    A marker applies to the line it is written on.  Multiple markers may
    share a line; a repeated (kind, name) pair keeps the first occurrence,
    matching the convention that a tag names a unique statement.
    """
    markers: dict[str, dict[str, int]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _MARKER_RE.finditer(line):
            kind = match.group("kind")
            name = match.group("name")
            markers.setdefault(kind, {})
            markers[kind].setdefault(name, lineno)
    return markers


def marker_line(text: str, kind: str, name: str) -> int:
    """Return the line tagged ``//@kind:name`` or raise ``KeyError``."""
    markers = find_markers(text)
    try:
        return markers[kind][name]
    except KeyError:
        raise KeyError(f"no //@{kind}:{name} marker found") from None
