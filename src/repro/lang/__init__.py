"""MJ language frontend: lexer, parser, AST, types, and type checker."""

from repro.lang.errors import (
    AnalysisError,
    IRBuildError,
    LexError,
    MJError,
    ParseError,
    TypeError_,
)
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_expression, parse_program
from repro.lang.source import Position, SourceFile, find_markers, marker_line
from repro.lang.symbols import ClassTable
from repro.lang.typechecker import TypeChecker, check_program

__all__ = [
    "AnalysisError",
    "ClassTable",
    "IRBuildError",
    "LexError",
    "MJError",
    "ParseError",
    "Position",
    "SourceFile",
    "TypeChecker",
    "TypeError_",
    "check_program",
    "find_markers",
    "marker_line",
    "parse_expression",
    "parse_program",
    "tokenize",
]
