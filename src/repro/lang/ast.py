"""Abstract syntax tree for MJ.

Every node records its source :class:`~repro.lang.source.Position`.  The
type checker decorates expression nodes in place (``node.type``) and
resolves name references (``VarRef.resolution``), so later stages never
re-derive name binding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.source import Position
from repro.lang.types import Type

# ---------------------------------------------------------------------------
# Base nodes
# ---------------------------------------------------------------------------


@dataclass
class Node:
    position: Position


@dataclass
class Expr(Node):
    """Base class for expressions; ``type`` is filled in by the checker."""

    type: Type | None = field(default=None, init=False, compare=False)


@dataclass
class Stmt(Node):
    pass


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    name: str
    declared_type: Type


@dataclass
class FieldDecl(Node):
    name: str
    declared_type: Type
    is_static: bool
    is_final: bool
    init: Expr | None


@dataclass
class MethodDecl(Node):
    name: str
    return_type: Type
    params: list[Param]
    body: "Block"
    is_static: bool
    is_constructor: bool = False


@dataclass
class ClassDecl(Node):
    name: str
    superclass: str | None
    fields: list[FieldDecl]
    methods: list[MethodDecl]


@dataclass
class Program(Node):
    classes: list[ClassDecl]

    def class_named(self, name: str) -> ClassDecl | None:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Block(Stmt):
    statements: list[Stmt]


@dataclass
class VarDecl(Stmt):
    name: str
    declared_type: Type
    init: Expr | None


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Assign(Stmt):
    """``target = value`` or compound ``target op= value`` (op in +,-)."""

    target: Expr  # VarRef, FieldAccess, or ArrayAccess
    value: Expr
    op: str | None = None  # None for plain '=', '+' or '-' for compound


@dataclass
class If(Stmt):
    condition: Expr
    then_branch: Stmt
    else_branch: Stmt | None


@dataclass
class While(Stmt):
    condition: Expr
    body: Stmt


@dataclass
class For(Stmt):
    init: Stmt | None
    condition: Expr | None
    update: Stmt | None
    body: Stmt


@dataclass
class Return(Stmt):
    value: Expr | None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Throw(Stmt):
    value: Expr


@dataclass
class TryCatch(Stmt):
    try_block: Block
    exc_type: Type
    exc_name: str
    catch_block: Block


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class NullLit(Expr):
    pass


@dataclass
class This(Expr):
    pass


@dataclass
class VarRef(Expr):
    """A bare identifier.

    The checker sets ``resolution`` to one of:

    * ``("local", name)`` — a local variable or parameter,
    * ``("field", class_name)`` — an implicit ``this.name`` instance field,
    * ``("static_field", class_name)`` — a static field of the enclosing
      class (or an inherited one),
    * ``("class", class_name)`` — a class name used as a static-access
      qualifier (only legal as the target of a field access or call).
    """

    name: str
    resolution: tuple[str, str] | None = field(default=None, init=False, compare=False)


@dataclass
class FieldAccess(Expr):
    """``target.name``.

    The checker sets ``resolution`` to ``("field", owner_class)``,
    ``("static_field", owner_class)``, or ``("array_length", "")``.
    """

    target: Expr
    name: str
    resolution: tuple[str, str] | None = field(default=None, init=False, compare=False)


@dataclass
class ArrayAccess(Expr):
    target: Expr
    index: Expr


@dataclass
class Call(Expr):
    """``receiver.name(args)`` or an unqualified ``name(args)``.

    The checker sets ``resolution`` to one of:

    * ``("virtual", owner_class)`` — instance call, dynamic dispatch,
    * ``("static", owner_class)`` — static call,
    * ``("special", owner_class)`` — constructor chaining via ``super(...)``,
    * ``("native", "String")`` — builtin String method,
    * ``("builtin", name)`` — global builtin such as ``print``.
    """

    receiver: Expr | None
    name: str
    args: list[Expr]
    resolution: tuple[str, str] | None = field(default=None, init=False, compare=False)


@dataclass
class SuperCall(Expr):
    """``super(args)`` — only legal as the first statement of a ctor."""

    args: list[Expr]
    resolution: tuple[str, str] | None = field(default=None, init=False, compare=False)


@dataclass
class New(Expr):
    class_name: str
    args: list[Expr]


@dataclass
class NewArray(Expr):
    element_type: Type
    length: Expr


@dataclass
class Binary(Expr):
    op: str  # + - * / % < <= > >= == != && ||
    left: Expr
    right: Expr


@dataclass
class Unary(Expr):
    op: str  # ! -
    operand: Expr


@dataclass
class Cast(Expr):
    target_type: Type
    expr: Expr


@dataclass
class InstanceOf(Expr):
    expr: Expr
    class_name: str


@dataclass
class PostfixIncDec(Expr):
    """``target++`` / ``target--``; evaluates to the *old* value."""

    target: Expr  # VarRef, FieldAccess, or ArrayAccess
    op: str  # '+' or '-'
