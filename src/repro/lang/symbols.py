"""Class table and member lookup for MJ programs.

The :class:`ClassTable` is the single source of truth for inheritance,
field/method lookup, and subtyping.  ``Object`` and ``String`` are builtin
classes; ``String`` carries *native* methods whose behaviour is provided
by the interpreter and modelled by the analyses (return value depends on
receiver and arguments).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.errors import TypeError_
from repro.lang.types import (
    ArrayType,
    BOOLEAN,
    ClassType,
    INT,
    NullType,
    STRING,
    Type,
    VOID,
)


@dataclass(frozen=True)
class NativeSig:
    """Signature of a builtin (native) String method."""

    name: str
    param_types: tuple[Type, ...]
    return_type: Type


# Every native String method, keyed by (name, arity).  A handful of
# methods are arity-overloaded (substring, indexOf) — the only overloading
# MJ permits, because natives are resolved specially.
STRING_NATIVES: dict[tuple[str, int], NativeSig] = {}


def _native(name: str, params: tuple[Type, ...], returns: Type) -> None:
    STRING_NATIVES[(name, len(params))] = NativeSig(name, params, returns)


_native("length", (), INT)
_native("charAt", (INT,), STRING)
_native("substring", (INT,), STRING)
_native("substring", (INT, INT), STRING)
_native("indexOf", (STRING,), INT)
_native("indexOf", (STRING, INT), INT)
_native("lastIndexOf", (STRING,), INT)
_native("equals", (STRING,), BOOLEAN)
_native("startsWith", (STRING,), BOOLEAN)
_native("endsWith", (STRING,), BOOLEAN)
_native("contains", (STRING,), BOOLEAN)
_native("trim", (), STRING)
_native("toLowerCase", (), STRING)
_native("toUpperCase", (), STRING)
_native("concat", (STRING,), STRING)
_native("replace", (STRING, STRING), STRING)
_native("compareTo", (STRING,), INT)
_native("hashCode", (), INT)
_native("isEmpty", (), BOOLEAN)

# Global builtin functions: name -> return type.  ``print`` accepts a
# single value of any printable type (checked specially by the checker).
BUILTIN_FUNCTIONS: dict[str, Type] = {
    "print": VOID,
}


@dataclass
class ClassInfo:
    """Resolved information about one class."""

    name: str
    superclass: str | None
    decl: ast.ClassDecl | None  # None for builtins (Object, String)
    fields: dict[str, ast.FieldDecl] = field(default_factory=dict)
    methods: dict[str, ast.MethodDecl] = field(default_factory=dict)
    constructor: ast.MethodDecl | None = None

    @property
    def type(self) -> ClassType:
        return ClassType(self.name)


class ClassTable:
    """All classes of a program plus the builtins, with lookup helpers."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.classes: dict[str, ClassInfo] = {}
        self._install_builtins()
        self._install_program(program)
        self._check_hierarchy()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _install_builtins(self) -> None:
        self.classes["Object"] = ClassInfo("Object", None, None)
        self.classes["String"] = ClassInfo("String", "Object", None)

    def _install_program(self, program: ast.Program) -> None:
        for decl in program.classes:
            if decl.name in self.classes:
                raise TypeError_(f"duplicate class {decl.name}", decl.position)
            info = ClassInfo(decl.name, decl.superclass or "Object", decl)
            for field_decl in decl.fields:
                if field_decl.name in info.fields:
                    raise TypeError_(
                        f"duplicate field {decl.name}.{field_decl.name}",
                        field_decl.position,
                    )
                info.fields[field_decl.name] = field_decl
            for method in decl.methods:
                if method.is_constructor:
                    if info.constructor is not None:
                        raise TypeError_(
                            f"class {decl.name} has multiple constructors "
                            "(MJ allows one)",
                            method.position,
                        )
                    info.constructor = method
                    continue
                if method.name in info.methods:
                    raise TypeError_(
                        f"duplicate method {decl.name}.{method.name}",
                        method.position,
                    )
                info.methods[method.name] = method
            self.classes[decl.name] = info

    def _check_hierarchy(self) -> None:
        for info in self.classes.values():
            if info.superclass is not None and info.superclass not in self.classes:
                position = info.decl.position if info.decl else None
                raise TypeError_(
                    f"class {info.name} extends unknown class {info.superclass}",
                    position,
                )
        for info in self.classes.values():
            seen = {info.name}
            cursor = info.superclass
            while cursor is not None:
                if cursor in seen:
                    raise TypeError_(f"inheritance cycle through {info.name}")
                seen.add(cursor)
                cursor = self.classes[cursor].superclass

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def has_class(self, name: str) -> bool:
        return name in self.classes

    def info(self, name: str) -> ClassInfo:
        try:
            return self.classes[name]
        except KeyError:
            raise TypeError_(f"unknown class {name}") from None

    def ancestors(self, name: str) -> list[str]:
        """``name`` followed by its superclasses up to ``Object``."""
        chain = []
        cursor: str | None = name
        while cursor is not None:
            chain.append(cursor)
            cursor = self.info(cursor).superclass
        return chain

    def subclasses(self, name: str) -> list[str]:
        """All classes ``c`` with ``c <: name`` (including ``name``)."""
        return [c for c in self.classes if self.is_subclass(c, name)]

    def is_subclass(self, sub: str, sup: str) -> bool:
        return sup in self.ancestors(sub)

    def lookup_field(self, class_name: str, field_name: str) -> tuple[str, ast.FieldDecl] | None:
        """Find ``field_name`` in ``class_name`` or an ancestor.

        Returns ``(owner_class, decl)`` or ``None``.
        """
        for owner in self.ancestors(class_name):
            decl = self.info(owner).fields.get(field_name)
            if decl is not None:
                return owner, decl
        return None

    def lookup_method(
        self, class_name: str, method_name: str
    ) -> tuple[str, ast.MethodDecl] | None:
        """Find ``method_name`` in ``class_name`` or an ancestor.

        Returns ``(owner_class, decl)`` or ``None``.  The owner is where
        the *declaration* that would be invoked lives (closest override).
        """
        for owner in self.ancestors(class_name):
            decl = self.info(owner).methods.get(method_name)
            if decl is not None:
                return owner, decl
        return None

    def resolve_virtual(self, runtime_class: str, method_name: str) -> tuple[str, ast.MethodDecl]:
        """Dynamic dispatch: the method actually run for a receiver class."""
        found = self.lookup_method(runtime_class, method_name)
        if found is None:
            raise TypeError_(f"no method {method_name} on {runtime_class}")
        return found

    # ------------------------------------------------------------------
    # Subtyping
    # ------------------------------------------------------------------

    def is_assignable(self, source: Type, target: Type) -> bool:
        """Can a value of ``source`` be stored where ``target`` is expected?"""
        if source == target:
            return True
        if isinstance(source, NullType):
            return target.is_reference()
        if isinstance(source, ClassType) and isinstance(target, ClassType):
            return (
                self.has_class(source.name)
                and self.has_class(target.name)
                and self.is_subclass(source.name, target.name)
            )
        if isinstance(source, ArrayType):
            # Arrays are invariant, but every array is an Object.
            return target == ClassType("Object")
        return False

    def is_castable(self, source: Type, target: Type) -> bool:
        """Is ``(target) expr`` a legal cast from static type ``source``?"""
        if not (source.is_reference() and target.is_reference()):
            return source == target
        if isinstance(source, NullType):
            return True
        if self.is_assignable(source, target) or self.is_assignable(target, source):
            return True
        return False
