"""Type checker and name resolver for MJ.

The checker walks the AST once per method, decorating every expression
with its static type and resolving every name and call (the decorations
are consumed by the IR builder and the interpreter).  Errors are collected
so a single run reports every problem; :func:`check_program` raises on the
first error after the full walk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ast
from repro.lang.errors import TypeError_
from repro.lang.symbols import BUILTIN_FUNCTIONS, ClassTable, STRING_NATIVES
from repro.lang.types import (
    ArrayType,
    BOOLEAN,
    ClassType,
    INT,
    NULL,
    STRING,
    Type,
    VOID,
)

_STRINGABLE = (INT, BOOLEAN, STRING, NULL)  # 'null' prints as "null"


@dataclass
class _Scope:
    """A lexical scope of local variables (block-structured)."""

    parent: "_Scope | None"
    variables: dict[str, Type]

    def lookup(self, name: str) -> Type | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.variables:
                return scope.variables[name]
            scope = scope.parent
        return None

    def declare(self, name: str, declared: Type) -> bool:
        """Declare ``name``; returns False when it shadows a live local."""
        if self.lookup(name) is not None:
            return False
        self.variables[name] = declared
        return True


class TypeChecker:
    """Checks one program against its class table."""

    def __init__(self, table: ClassTable) -> None:
        self.table = table
        self.errors: list[TypeError_] = []
        self._class: ast.ClassDecl | None = None
        self._method: ast.MethodDecl | None = None
        self._loop_depth = 0

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def check(self) -> list[TypeError_]:
        for decl in self.table.program.classes:
            self._check_class(decl)
        return self.errors

    def _error(self, message: str, node: ast.Node) -> None:
        self.errors.append(TypeError_(message, node.position))

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _check_class(self, decl: ast.ClassDecl) -> None:
        self._class = decl
        for field_decl in decl.fields:
            self._check_type_exists(field_decl.declared_type, field_decl)
            if field_decl.init is not None:
                # Field initializers run in constructor (instance) or
                # program-start (static) context with no locals in scope.
                self._method = None
                init_type = self._expr(field_decl.init, _Scope(None, {}),
                                       static_context=field_decl.is_static)
                if init_type is not None and not self.table.is_assignable(
                    init_type, field_decl.declared_type
                ):
                    self._error(
                        f"cannot initialize {field_decl.declared_type} field "
                        f"{field_decl.name} with {init_type}",
                        field_decl,
                    )
        info = self.table.info(decl.name)
        if info.constructor is not None:
            self._check_method(decl, info.constructor)
        for method in info.methods.values():
            self._check_method(decl, method)
            self._check_override(decl, method)

    def _check_override(self, decl: ast.ClassDecl, method: ast.MethodDecl) -> None:
        if decl.superclass is None:
            return
        found = self.table.lookup_method(decl.superclass, method.name)
        if found is None:
            return
        _, overridden = found
        same_params = [p.declared_type for p in overridden.params] == [
            p.declared_type for p in method.params
        ]
        if (
            not same_params
            or overridden.return_type != method.return_type
            or overridden.is_static != method.is_static
        ):
            self._error(
                f"method {decl.name}.{method.name} does not match the "
                "signature it overrides",
                method,
            )

    def _check_method(self, decl: ast.ClassDecl, method: ast.MethodDecl) -> None:
        self._class = decl
        self._method = method
        self._loop_depth = 0
        self._check_type_exists(method.return_type, method)
        scope = _Scope(None, {})
        for param in method.params:
            self._check_type_exists(param.declared_type, param)
            if not scope.declare(param.name, param.declared_type):
                self._error(f"duplicate parameter {param.name}", param)
        self._stmt(method.body, scope)
        if method.return_type != VOID and not self._always_returns(method.body):
            self._error(
                f"method {decl.name}.{method.name} may finish without "
                "returning a value",
                method,
            )

    def _check_type_exists(self, declared: Type, node: ast.Node) -> None:
        base = declared
        while isinstance(base, ArrayType):
            base = base.element
        if isinstance(base, ClassType) and not self.table.has_class(base.name):
            self._error(f"unknown type {base.name}", node)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        method = getattr(self, "_stmt_" + type(stmt).__name__, None)
        if method is None:
            self._error(f"unsupported statement {type(stmt).__name__}", stmt)
            return
        method(stmt, scope)

    def _stmt_Block(self, stmt: ast.Block, scope: _Scope) -> None:
        inner = _Scope(scope, {})
        for child in stmt.statements:
            self._stmt(child, inner)

    def _stmt_VarDecl(self, stmt: ast.VarDecl, scope: _Scope) -> None:
        self._check_type_exists(stmt.declared_type, stmt)
        if stmt.declared_type == VOID:
            self._error("variables cannot have type void", stmt)
        if stmt.init is not None:
            init_type = self._expr_in_method(stmt.init, scope)
            if init_type is not None and not self.table.is_assignable(
                init_type, stmt.declared_type
            ):
                self._error(
                    f"cannot assign {init_type} to {stmt.declared_type} "
                    f"variable {stmt.name}",
                    stmt,
                )
        if not scope.declare(stmt.name, stmt.declared_type):
            self._error(f"variable {stmt.name} is already defined", stmt)

    def _stmt_ExprStmt(self, stmt: ast.ExprStmt, scope: _Scope) -> None:
        self._expr_in_method(stmt.expr, scope)

    def _stmt_Assign(self, stmt: ast.Assign, scope: _Scope) -> None:
        target_type = self._expr_in_method(stmt.target, scope)
        value_type = self._expr_in_method(stmt.value, scope)
        self._check_assignable_target(stmt.target)
        if target_type is None or value_type is None:
            return
        if stmt.op is not None:
            # Compound assignment: int += int, or String += stringable.
            if target_type == INT and value_type == INT:
                return
            if stmt.op == "+" and target_type == STRING and value_type in _STRINGABLE:
                return
            self._error(
                f"bad compound assignment {target_type} {stmt.op}= {value_type}",
                stmt,
            )
            return
        if not self.table.is_assignable(value_type, target_type):
            self._error(f"cannot assign {value_type} to {target_type}", stmt)

    def _check_assignable_target(self, target: ast.Expr) -> None:
        if isinstance(target, ast.FieldAccess):
            if target.resolution is not None and target.resolution[0] == "array_length":
                self._error("array length is read-only", target)
        elif not isinstance(target, (ast.VarRef, ast.ArrayAccess)):
            self._error("invalid assignment target", target)

    def _stmt_If(self, stmt: ast.If, scope: _Scope) -> None:
        self._require(stmt.condition, BOOLEAN, scope, "if condition")
        self._stmt(stmt.then_branch, scope)
        if stmt.else_branch is not None:
            self._stmt(stmt.else_branch, scope)

    def _stmt_While(self, stmt: ast.While, scope: _Scope) -> None:
        self._require(stmt.condition, BOOLEAN, scope, "while condition")
        self._loop_depth += 1
        self._stmt(stmt.body, scope)
        self._loop_depth -= 1

    def _stmt_For(self, stmt: ast.For, scope: _Scope) -> None:
        inner = _Scope(scope, {})
        if stmt.init is not None:
            self._stmt(stmt.init, inner)
        if stmt.condition is not None:
            self._require(stmt.condition, BOOLEAN, inner, "for condition")
        if stmt.update is not None:
            self._stmt(stmt.update, inner)
        self._loop_depth += 1
        self._stmt(stmt.body, inner)
        self._loop_depth -= 1

    def _stmt_Return(self, stmt: ast.Return, scope: _Scope) -> None:
        assert self._method is not None
        expected = self._method.return_type
        if self._method.is_constructor:
            expected = VOID
        if stmt.value is None:
            if expected != VOID:
                self._error("missing return value", stmt)
            return
        if expected == VOID:
            self._error("void method cannot return a value", stmt)
            return
        actual = self._expr_in_method(stmt.value, scope)
        if actual is not None and not self.table.is_assignable(actual, expected):
            self._error(f"cannot return {actual} from {expected} method", stmt)

    def _stmt_Break(self, stmt: ast.Break, scope: _Scope) -> None:
        if self._loop_depth == 0:
            self._error("break outside of a loop", stmt)

    def _stmt_Continue(self, stmt: ast.Continue, scope: _Scope) -> None:
        if self._loop_depth == 0:
            self._error("continue outside of a loop", stmt)

    def _stmt_Throw(self, stmt: ast.Throw, scope: _Scope) -> None:
        value_type = self._expr_in_method(stmt.value, scope)
        if value_type is not None and not value_type.is_reference():
            self._error("thrown value must be an object", stmt)

    def _stmt_TryCatch(self, stmt: ast.TryCatch, scope: _Scope) -> None:
        self._stmt(stmt.try_block, scope)
        self._check_type_exists(stmt.exc_type, stmt)
        if not stmt.exc_type.is_reference():
            self._error("catch parameter must have a class type", stmt)
        catch_scope = _Scope(scope, {stmt.exc_name: stmt.exc_type})
        for child in stmt.catch_block.statements:
            self._stmt(child, catch_scope)

    def _require(
        self, expr: ast.Expr, expected: Type, scope: _Scope, what: str
    ) -> None:
        actual = self._expr_in_method(expr, scope)
        if actual is not None and actual != expected:
            self._error(f"{what} must be {expected}, found {actual}", expr)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _expr_in_method(self, expr: ast.Expr, scope: _Scope) -> Type | None:
        static_context = self._method is None or (
            self._method.is_static and not self._method.is_constructor
        )
        return self._expr(expr, scope, static_context)

    def _expr(
        self, expr: ast.Expr, scope: _Scope, static_context: bool
    ) -> Type | None:
        handler = getattr(self, "_expr_" + type(expr).__name__, None)
        if handler is None:
            self._error(f"unsupported expression {type(expr).__name__}", expr)
            return None
        result = handler(expr, scope, static_context)
        expr.type = result
        return result

    def _expr_IntLit(self, expr, scope, static_context):
        return INT

    def _expr_BoolLit(self, expr, scope, static_context):
        return BOOLEAN

    def _expr_StringLit(self, expr, scope, static_context):
        return STRING

    def _expr_NullLit(self, expr, scope, static_context):
        return NULL

    def _expr_This(self, expr, scope, static_context):
        if static_context or self._class is None:
            self._error("this used in a static context", expr)
            return None
        return ClassType(self._class.name)

    def _expr_VarRef(self, expr: ast.VarRef, scope: _Scope, static_context: bool):
        local = scope.lookup(expr.name)
        if local is not None:
            expr.resolution = ("local", expr.name)
            return local
        if self._class is not None:
            found = self.table.lookup_field(self._class.name, expr.name)
            if found is not None:
                owner, decl = found
                if decl.is_static:
                    expr.resolution = ("static_field", owner)
                    return decl.declared_type
                if static_context:
                    self._error(
                        f"instance field {expr.name} used in a static context",
                        expr,
                    )
                    return None
                expr.resolution = ("field", owner)
                return decl.declared_type
        if self.table.has_class(expr.name):
            expr.resolution = ("class", expr.name)
            return ClassType(expr.name)
        self._error(f"unknown name {expr.name}", expr)
        return None

    def _is_class_qualifier(self, expr: ast.Expr) -> str | None:
        if isinstance(expr, ast.VarRef) and expr.resolution is not None:
            if expr.resolution[0] == "class":
                return expr.resolution[1]
        return None

    def _expr_FieldAccess(
        self, expr: ast.FieldAccess, scope: _Scope, static_context: bool
    ):
        target_type = self._expr(expr.target, scope, static_context)
        if target_type is None:
            return None
        qualifier = self._is_class_qualifier(expr.target)
        if qualifier is not None:
            found = self.table.lookup_field(qualifier, expr.name)
            if found is None or not found[1].is_static:
                self._error(f"no static field {qualifier}.{expr.name}", expr)
                return None
            owner, decl = found
            expr.resolution = ("static_field", owner)
            return decl.declared_type
        if isinstance(target_type, ArrayType):
            if expr.name == "length":
                expr.resolution = ("array_length", "")
                return INT
            self._error("arrays only have a length field", expr)
            return None
        if not isinstance(target_type, ClassType):
            self._error(f"cannot access field of {target_type}", expr)
            return None
        found = self.table.lookup_field(target_type.name, expr.name)
        if found is None:
            self._error(f"no field {expr.name} on {target_type.name}", expr)
            return None
        owner, decl = found
        expr.resolution = ("static_field", owner) if decl.is_static else ("field", owner)
        return decl.declared_type

    def _expr_ArrayAccess(
        self, expr: ast.ArrayAccess, scope: _Scope, static_context: bool
    ):
        target_type = self._expr(expr.target, scope, static_context)
        index_type = self._expr(expr.index, scope, static_context)
        if index_type is not None and index_type != INT:
            self._error("array index must be int", expr.index)
        if target_type is None:
            return None
        if not isinstance(target_type, ArrayType):
            self._error(f"cannot index into {target_type}", expr)
            return None
        return target_type.element

    def _expr_Call(self, expr: ast.Call, scope: _Scope, static_context: bool):
        arg_types = [self._expr(a, scope, static_context) for a in expr.args]
        if expr.receiver is None:
            return self._check_unqualified_call(expr, arg_types, static_context)
        receiver_type = self._expr(expr.receiver, scope, static_context)
        if receiver_type is None:
            return None
        qualifier = self._is_class_qualifier(expr.receiver)
        if qualifier is not None:
            found = self.table.lookup_method(qualifier, expr.name)
            if found is None or not found[1].is_static:
                self._error(f"no static method {qualifier}.{expr.name}", expr)
                return None
            owner, decl = found
            expr.resolution = ("static", owner)
            return self._check_call_args(expr, decl, arg_types)
        if receiver_type == STRING:
            return self._check_native_call(expr, arg_types)
        if isinstance(receiver_type, ArrayType):
            self._error("arrays have no methods", expr)
            return None
        if not isinstance(receiver_type, ClassType):
            self._error(f"cannot call method on {receiver_type}", expr)
            return None
        found = self.table.lookup_method(receiver_type.name, expr.name)
        if found is None:
            self._error(f"no method {expr.name} on {receiver_type.name}", expr)
            return None
        owner, decl = found
        if decl.is_static:
            self._error(
                f"static method {owner}.{expr.name} must be called via the "
                "class name",
                expr,
            )
            return None
        expr.resolution = ("virtual", owner)
        return self._check_call_args(expr, decl, arg_types)

    def _check_unqualified_call(
        self, expr: ast.Call, arg_types: list[Type | None], static_context: bool
    ):
        if expr.name in BUILTIN_FUNCTIONS:
            expr.resolution = ("builtin", expr.name)
            if expr.name == "print":
                if len(arg_types) != 1:
                    self._error("print takes exactly one argument", expr)
                elif arg_types[0] is not None and arg_types[0] == VOID:
                    self._error("cannot print a void value", expr)
            return BUILTIN_FUNCTIONS[expr.name]
        if self._class is None:
            self._error(f"unknown function {expr.name}", expr)
            return None
        found = self.table.lookup_method(self._class.name, expr.name)
        if found is None:
            self._error(f"unknown method {expr.name}", expr)
            return None
        owner, decl = found
        if decl.is_static:
            expr.resolution = ("static", owner)
        else:
            if static_context:
                self._error(
                    f"instance method {expr.name} called from a static context",
                    expr,
                )
                return None
            expr.resolution = ("virtual", owner)
        return self._check_call_args(expr, decl, arg_types)

    def _check_native_call(self, expr: ast.Call, arg_types: list[Type | None]):
        sig = STRING_NATIVES.get((expr.name, len(expr.args)))
        if sig is None:
            self._error(f"no String method {expr.name}/{len(expr.args)}", expr)
            return None
        expr.resolution = ("native", "String")
        for i, (actual, expected) in enumerate(zip(arg_types, sig.param_types)):
            if actual is not None and not self.table.is_assignable(actual, expected):
                self._error(
                    f"argument {i + 1} of String.{expr.name}: expected "
                    f"{expected}, found {actual}",
                    expr.args[i],
                )
        return sig.return_type

    def _check_call_args(
        self, expr: ast.Call | ast.SuperCall | ast.New,
        decl: ast.MethodDecl,
        arg_types: list[Type | None],
    ):
        args = expr.args
        if len(args) != len(decl.params):
            name = decl.name if decl.name != "<init>" else "constructor"
            self._error(
                f"{name} expects {len(decl.params)} arguments, got {len(args)}",
                expr,
            )
            return decl.return_type
        for i, (actual, param) in enumerate(zip(arg_types, decl.params)):
            if actual is not None and not self.table.is_assignable(
                actual, param.declared_type
            ):
                self._error(
                    f"argument {i + 1}: expected {param.declared_type}, "
                    f"found {actual}",
                    args[i],
                )
        return decl.return_type

    def _expr_SuperCall(self, expr: ast.SuperCall, scope: _Scope, static_context):
        arg_types = [self._expr(a, scope, static_context) for a in expr.args]
        if (
            self._method is None
            or not self._method.is_constructor
            or self._class is None
        ):
            self._error("super(...) is only legal inside a constructor", expr)
            return None
        superclass = self._class.superclass or "Object"
        if superclass == "Object":
            if expr.args:
                self._error("Object has no constructor arguments", expr)
            expr.resolution = ("special", "Object")
            return VOID
        ctor = self.table.info(superclass).constructor
        expr.resolution = ("special", superclass)
        if ctor is None:
            if expr.args:
                self._error(
                    f"class {superclass} has no constructor but super(...) "
                    "passes arguments",
                    expr,
                )
            return VOID
        self._check_call_args(expr, ctor, arg_types)
        return VOID

    def _expr_New(self, expr: ast.New, scope: _Scope, static_context):
        arg_types = [self._expr(a, scope, static_context) for a in expr.args]
        if not self.table.has_class(expr.class_name):
            self._error(f"unknown class {expr.class_name}", expr)
            return None
        if expr.class_name in ("Object", "String"):
            self._error(f"cannot instantiate builtin {expr.class_name}", expr)
            return None
        ctor = self.table.info(expr.class_name).constructor
        if ctor is None:
            if expr.args:
                self._error(
                    f"class {expr.class_name} has no constructor but "
                    "arguments were passed",
                    expr,
                )
        else:
            self._check_call_args(expr, ctor, arg_types)
        return ClassType(expr.class_name)

    def _expr_NewArray(self, expr: ast.NewArray, scope: _Scope, static_context):
        self._check_type_exists(expr.element_type, expr)
        length_type = self._expr(expr.length, scope, static_context)
        if length_type is not None and length_type != INT:
            self._error("array length must be int", expr.length)
        return ArrayType(expr.element_type)

    def _expr_Binary(self, expr: ast.Binary, scope: _Scope, static_context):
        left = self._expr(expr.left, scope, static_context)
        right = self._expr(expr.right, scope, static_context)
        if left is None or right is None:
            return None
        op = expr.op
        if op == "+":
            if left == INT and right == INT:
                return INT
            if left == STRING and right in _STRINGABLE:
                return STRING
            if right == STRING and left in _STRINGABLE:
                return STRING
            self._error(f"cannot add {left} and {right}", expr)
            return None
        if op in ("-", "*", "/", "%"):
            if left == INT and right == INT:
                return INT
            self._error(f"operator {op} requires ints", expr)
            return None
        if op in ("<", "<=", ">", ">="):
            if left == INT and right == INT:
                return BOOLEAN
            self._error(f"operator {op} requires ints", expr)
            return None
        if op in ("==", "!="):
            comparable = (
                (left == INT and right == INT)
                or (left == BOOLEAN and right == BOOLEAN)
                or (left.is_reference() and right.is_reference())
            )
            if not comparable:
                self._error(f"cannot compare {left} and {right}", expr)
                return None
            return BOOLEAN
        if op in ("&&", "||"):
            if left == BOOLEAN and right == BOOLEAN:
                return BOOLEAN
            self._error(f"operator {op} requires booleans", expr)
            return None
        self._error(f"unknown operator {op}", expr)
        return None

    def _expr_Unary(self, expr: ast.Unary, scope: _Scope, static_context):
        operand = self._expr(expr.operand, scope, static_context)
        if operand is None:
            return None
        if expr.op == "!":
            if operand != BOOLEAN:
                self._error("! requires a boolean", expr)
                return None
            return BOOLEAN
        if expr.op == "-":
            if operand != INT:
                self._error("unary - requires an int", expr)
                return None
            return INT
        self._error(f"unknown unary operator {expr.op}", expr)
        return None

    def _expr_Cast(self, expr: ast.Cast, scope: _Scope, static_context):
        self._check_type_exists(expr.target_type, expr)
        source = self._expr(expr.expr, scope, static_context)
        if source is None:
            return expr.target_type
        if not self.table.is_castable(source, expr.target_type):
            self._error(f"cannot cast {source} to {expr.target_type}", expr)
        return expr.target_type

    def _expr_InstanceOf(self, expr: ast.InstanceOf, scope: _Scope, static_context):
        source = self._expr(expr.expr, scope, static_context)
        if not self.table.has_class(expr.class_name):
            self._error(f"unknown class {expr.class_name}", expr)
        if source is not None and not source.is_reference():
            self._error("instanceof requires a reference value", expr)
        return BOOLEAN

    def _expr_PostfixIncDec(
        self, expr: ast.PostfixIncDec, scope: _Scope, static_context
    ):
        target = self._expr(expr.target, scope, static_context)
        self._check_assignable_target(expr.target)
        if target is not None and target != INT:
            self._error("++/-- requires an int target", expr)
            return None
        return INT

    # ------------------------------------------------------------------
    # Definite-return analysis (conservative)
    # ------------------------------------------------------------------

    def _always_returns(self, stmt: ast.Stmt) -> bool:
        if isinstance(stmt, (ast.Return, ast.Throw)):
            return True
        if isinstance(stmt, ast.Block):
            return any(self._always_returns(s) for s in stmt.statements)
        if isinstance(stmt, ast.If):
            return (
                stmt.else_branch is not None
                and self._always_returns(stmt.then_branch)
                and self._always_returns(stmt.else_branch)
            )
        if isinstance(stmt, ast.While):
            # 'while (true)' with no break is treated as non-terminating.
            return (
                isinstance(stmt.condition, ast.BoolLit)
                and stmt.condition.value
                and not self._contains_break(stmt.body)
            )
        if isinstance(stmt, ast.TryCatch):
            return self._always_returns(stmt.try_block) and self._always_returns(
                stmt.catch_block
            )
        return False

    def _contains_break(self, stmt: ast.Stmt) -> bool:
        if isinstance(stmt, ast.Break):
            return True
        if isinstance(stmt, ast.Block):
            return any(self._contains_break(s) for s in stmt.statements)
        if isinstance(stmt, ast.If):
            if self._contains_break(stmt.then_branch):
                return True
            return stmt.else_branch is not None and self._contains_break(
                stmt.else_branch
            )
        if isinstance(stmt, ast.TryCatch):
            return self._contains_break(stmt.try_block) or self._contains_break(
                stmt.catch_block
            )
        # break inside a nested loop binds to that loop.
        return False


def check_program(program: ast.Program) -> ClassTable:
    """Build the class table, check ``program``, and raise on any error."""
    table = ClassTable(program)
    checker = TypeChecker(table)
    errors = checker.check()
    if errors:
        summary = "\n".join(str(e) for e in errors)
        first = errors[0]
        raise TypeError_(
            f"{len(errors)} type error(s):\n{summary}", first.position
        )
    return table
