"""Diagnostic machinery shared by every stage of the MJ frontend.

All frontend failures are reported as subclasses of :class:`MJError`, each
carrying an optional source position so tools (and tests) can point at the
offending line.
"""

from __future__ import annotations

from repro.lang.source import Position


class MJError(Exception):
    """Base class for every error raised while processing an MJ program."""

    def __init__(self, message: str, position: Position | None = None) -> None:
        self.message = message
        self.position = position
        super().__init__(self._render())

    def _render(self) -> str:
        if self.position is None:
            return self.message
        return f"{self.position}: {self.message}"


class LexError(MJError):
    """Raised when the lexer encounters a malformed token."""


class ParseError(MJError):
    """Raised when the parser cannot make sense of the token stream."""


class TypeError_(MJError):
    """Raised by the type checker.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class IRBuildError(MJError):
    """Raised when AST-to-IR lowering hits an unsupported construct."""


class AnalysisError(MJError):
    """Raised by whole-program analyses (points-to, call graph, mod-ref)."""
