"""The MJ type system.

MJ has primitives ``int``, ``boolean``, ``void``; reference types (classes,
``String``, arrays); and the ``null`` type, which is a subtype of every
reference type.  Subtyping between classes is resolved against a class
table (see :mod:`repro.lang.symbols`) because it needs the inheritance
hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass


class Type:
    """Base class for all MJ types.  Types are immutable values."""

    def is_reference(self) -> bool:
        return False

    def is_primitive(self) -> bool:
        return not self.is_reference() and self is not VOID


@dataclass(frozen=True)
class PrimitiveType(Type):
    name: str

    def __str__(self) -> str:
        return self.name


INT = PrimitiveType("int")
BOOLEAN = PrimitiveType("boolean")
VOID = PrimitiveType("void")


@dataclass(frozen=True)
class ClassType(Type):
    """A user-defined class or the builtin ``Object``/``String`` classes."""

    name: str

    def is_reference(self) -> bool:
        return True

    def __str__(self) -> str:
        return self.name


OBJECT = ClassType("Object")
STRING = ClassType("String")


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type

    def is_reference(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.element}[]"


@dataclass(frozen=True)
class NullType(Type):
    """The type of the ``null`` literal."""

    def is_reference(self) -> bool:
        return True

    def __str__(self) -> str:
        return "null"


NULL = NullType()


def array_of(element: Type, dimensions: int = 1) -> Type:
    """Wrap ``element`` in ``dimensions`` levels of array type."""
    result = element
    for _ in range(dimensions):
        result = ArrayType(result)
    return result
