"""Lexer for MJ.

Two implementations share this module:

* :class:`Lexer` — the original hand-written character-at-a-time
  scanner, kept as the reference for rare constructs (char literals,
  malformed strings) so error positions and messages stay identical;
* a compiled-regex fast path used by :func:`tokenize`, which scans
  whitespace runs, comments, words, numbers, well-formed strings, and
  operators in one ``re`` match each — about 5x faster on the cold
  analysis path (see ``docs/PERFORMANCE.md``).

Comments (``//`` and ``/* */``) are skipped, but ``//@tag:name`` markers
remain visible to the suite loader because it reads the raw text (see
:mod:`repro.lang.source`).
"""

from __future__ import annotations

import re

from repro.lang.errors import LexError
from repro.lang.source import Position
from repro.lang.tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR_OPERATORS: dict[str, TokenKind] = {
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
    "++": TokenKind.PLUS_PLUS,
    "--": TokenKind.MINUS_MINUS,
    "+=": TokenKind.PLUS_ASSIGN,
    "-=": TokenKind.MINUS_ASSIGN,
}

_ONE_CHAR_OPERATORS: dict[str, TokenKind] = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "!": TokenKind.NOT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", '"': '"', "'": "'", "0": "\0"}


class Lexer:
    """Converts MJ source text into a token stream."""

    def __init__(self, text: str, filename: str = "<input>") -> None:
        self._text = text
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> list[Token]:
        """Lex the whole input, ending with a single EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            if self._at_end():
                tokens.append(self._make(TokenKind.EOF, ""))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _at_end(self) -> bool:
        return self._pos >= len(self._text)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._text):
            return self._text[index]
        return ""

    def _position(self) -> Position:
        return Position(self._line, self._col, self._filename)

    def _make(self, kind: TokenKind, text: str) -> Token:
        return Token(kind, text, self._position())

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._at_end():
                return
            if self._text[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments, in any interleaving."""
        while not self._at_end():
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._position()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._at_end():
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        ch = self._peek()
        if ch.isdigit():
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_word()
        if ch == '"':
            return self._lex_string()
        if ch == "'":
            return self._lex_char()
        two = self._peek() + self._peek(1)
        if two in _TWO_CHAR_OPERATORS:
            token = self._make(_TWO_CHAR_OPERATORS[two], two)
            self._advance(2)
            return token
        if ch in _ONE_CHAR_OPERATORS:
            token = self._make(_ONE_CHAR_OPERATORS[ch], ch)
            self._advance()
            return token
        raise LexError(f"unexpected character {ch!r}", self._position())

    def _lex_number(self) -> Token:
        start = self._position()
        begin = self._pos
        while self._peek().isdigit():
            self._advance()
        if self._peek().isalpha():
            raise LexError("identifier cannot start with a digit", start)
        return Token(TokenKind.INT_LITERAL, self._text[begin : self._pos], start)

    def _lex_word(self) -> Token:
        start = self._position()
        begin = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._text[begin : self._pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, start)

    def _lex_string(self) -> Token:
        start = self._position()
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self._at_end() or self._peek() == "\n":
                raise LexError("unterminated string literal", start)
            ch = self._peek()
            if ch == '"':
                self._advance()
                return Token(TokenKind.STRING_LITERAL, "".join(chars), start)
            if ch == "\\":
                self._advance()
                escape = self._peek()
                if escape not in _ESCAPES:
                    raise LexError(f"bad escape \\{escape}", self._position())
                chars.append(_ESCAPES[escape])
                self._advance()
            else:
                chars.append(ch)
                self._advance()

    def _lex_char(self) -> Token:
        """Char literals are sugar for one-character strings in MJ."""
        start = self._position()
        self._advance()  # opening quote
        if self._at_end():
            raise LexError("unterminated char literal", start)
        ch = self._peek()
        if ch == "\\":
            self._advance()
            escape = self._peek()
            if escape not in _ESCAPES:
                raise LexError(f"bad escape \\{escape}", self._position())
            ch = _ESCAPES[escape]
        self._advance()
        if self._peek() != "'":
            raise LexError("unterminated char literal", start)
        self._advance()
        return Token(TokenKind.CHAR_LITERAL, ch, start)


# ---------------------------------------------------------------------------
# Fast path: one compiled regex per token, falling back to the reference
# scanner for rare constructs so diagnostics stay byte-identical.
# ---------------------------------------------------------------------------

_OPERATORS: dict[str, TokenKind] = {**_TWO_CHAR_OPERATORS, **_ONE_CHAR_OPERATORS}

#: Group order: 1 whitespace, 2 line comment, 3 block comment, 4 word,
#: 5 int literal, 6 string literal, 7 operator (two-char before one-char
#: for maximal munch; comments are listed before the ``/`` operator).
_TOKEN_RE = re.compile(
    r"([ \t\r\n]+)"
    r"|(//[^\n]*)"
    r"|(/\*(?:[^*]|\*(?!/))*\*/)"
    r"|([A-Za-z_][A-Za-z0-9_]*)"
    r"|(\d+)"
    r'|("(?:[^"\\\n]|\\[^\n])*")'
    r"|(<=|>=|==|!=|&&|\|\||\+\+|--|\+=|-=|[(){}\[\];,.=+\-*/%!<>])"
)

_WS, _LINE_COMMENT, _BLOCK_COMMENT, _WORD, _NUMBER, _STRING, _OP = range(1, 8)


def _decode_string(raw: str, line: int, start_col: int, filename: str) -> str:
    """Decode the body of a matched string literal, validating escapes.

    ``raw`` includes both quotes; a bad escape raises at the escape
    character's position, matching :meth:`Lexer._lex_string`.
    """
    if "\\" not in raw:
        return raw[1:-1]
    chars: list[str] = []
    index = 1
    limit = len(raw) - 1
    while index < limit:
        ch = raw[index]
        if ch == "\\":
            escape = raw[index + 1]
            if escape not in _ESCAPES:
                raise LexError(
                    f"bad escape \\{escape}",
                    Position(line, start_col + index + 1, filename),
                )
            chars.append(_ESCAPES[escape])
            index += 2
        else:
            chars.append(ch)
            index += 1
    return "".join(chars)


def _slow_token(
    text: str, filename: str, pos: int, line: int, col: int
) -> tuple[Token, int, int, int]:
    """Delegate one token to the reference scanner (rare constructs)."""
    lexer = Lexer(text, filename)
    lexer._pos = pos
    lexer._line = line
    lexer._col = col
    token = lexer._next_token()
    return token, lexer._pos, lexer._line, lexer._col


def tokenize(text: str, filename: str = "<input>") -> list[Token]:
    """Lex ``text`` into a token list ending with a single EOF token."""
    tokens: list[Token] = []
    append = tokens.append
    match_at = _TOKEN_RE.match
    length = len(text)
    pos = 0
    line = 1
    line_start = 0  # offset of the first character of the current line
    while pos < length:
        match = match_at(text, pos)
        if match is None:
            # Rare constructs and errors: char literals, unterminated
            # strings, unknown characters, unterminated block comments.
            ch = text[pos]
            if ch == '"':
                # The only way a string fails the regex is not closing
                # on its own line, but let the reference scanner decide
                # (it distinguishes bad escapes at a line break).
                token, pos, line, col = _slow_token(
                    text, filename, pos, line, pos - line_start + 1
                )
                line_start = pos - (col - 1)
                append(token)
                continue
            token, pos, line, col = _slow_token(
                text, filename, pos, line, pos - line_start + 1
            )
            line_start = pos - (col - 1)
            append(token)
            continue
        group = match.lastindex
        end = match.end()
        if group == _WS:
            newlines = text.count("\n", pos, end)
            if newlines:
                line += newlines
                line_start = text.rindex("\n", pos, end) + 1
            pos = end
            continue
        if group == _LINE_COMMENT:
            pos = end
            continue
        if group == _BLOCK_COMMENT:
            newlines = text.count("\n", pos, end)
            if newlines:
                line += newlines
                line_start = text.rindex("\n", pos, end) + 1
            pos = end
            continue
        column = pos - line_start + 1
        if group == _WORD:
            word = match.group(_WORD)
            append(
                Token(
                    KEYWORDS.get(word, TokenKind.IDENT),
                    word,
                    Position(line, column, filename),
                )
            )
        elif group == _NUMBER:
            position = Position(line, column, filename)
            if end < length and text[end].isalpha():
                raise LexError("identifier cannot start with a digit", position)
            append(Token(TokenKind.INT_LITERAL, match.group(_NUMBER), position))
        elif group == _STRING:
            append(
                Token(
                    TokenKind.STRING_LITERAL,
                    _decode_string(match.group(_STRING), line, column, filename),
                    Position(line, column, filename),
                )
            )
        else:  # operator
            op = match.group(_OP)
            if op == "/" and end < length and text[end] == "*":
                # '/*' that the block-comment alternative rejected:
                # an unterminated block comment.
                raise LexError(
                    "unterminated block comment",
                    Position(line, column, filename),
                )
            append(Token(_OPERATORS[op], op, Position(line, column, filename)))
        pos = end
    append(Token(TokenKind.EOF, "", Position(line, length - line_start + 1, filename)))
    return tokens
