"""Hand-written lexer for MJ.

The lexer is a single forward pass producing a list of tokens.  Comments
(``//`` and ``/* */``) are skipped, but ``//@tag:name`` markers remain
visible to the suite loader because it reads the raw text (see
:mod:`repro.lang.source`).
"""

from __future__ import annotations

from repro.lang.errors import LexError
from repro.lang.source import Position
from repro.lang.tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR_OPERATORS: dict[str, TokenKind] = {
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
    "++": TokenKind.PLUS_PLUS,
    "--": TokenKind.MINUS_MINUS,
    "+=": TokenKind.PLUS_ASSIGN,
    "-=": TokenKind.MINUS_ASSIGN,
}

_ONE_CHAR_OPERATORS: dict[str, TokenKind] = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "!": TokenKind.NOT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", '"': '"', "'": "'", "0": "\0"}


class Lexer:
    """Converts MJ source text into a token stream."""

    def __init__(self, text: str, filename: str = "<input>") -> None:
        self._text = text
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> list[Token]:
        """Lex the whole input, ending with a single EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            if self._at_end():
                tokens.append(self._make(TokenKind.EOF, ""))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _at_end(self) -> bool:
        return self._pos >= len(self._text)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._text):
            return self._text[index]
        return ""

    def _position(self) -> Position:
        return Position(self._line, self._col, self._filename)

    def _make(self, kind: TokenKind, text: str) -> Token:
        return Token(kind, text, self._position())

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._at_end():
                return
            if self._text[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments, in any interleaving."""
        while not self._at_end():
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._position()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._at_end():
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        ch = self._peek()
        if ch.isdigit():
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_word()
        if ch == '"':
            return self._lex_string()
        if ch == "'":
            return self._lex_char()
        two = self._peek() + self._peek(1)
        if two in _TWO_CHAR_OPERATORS:
            token = self._make(_TWO_CHAR_OPERATORS[two], two)
            self._advance(2)
            return token
        if ch in _ONE_CHAR_OPERATORS:
            token = self._make(_ONE_CHAR_OPERATORS[ch], ch)
            self._advance()
            return token
        raise LexError(f"unexpected character {ch!r}", self._position())

    def _lex_number(self) -> Token:
        start = self._position()
        begin = self._pos
        while self._peek().isdigit():
            self._advance()
        if self._peek().isalpha():
            raise LexError("identifier cannot start with a digit", start)
        return Token(TokenKind.INT_LITERAL, self._text[begin : self._pos], start)

    def _lex_word(self) -> Token:
        start = self._position()
        begin = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._text[begin : self._pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, start)

    def _lex_string(self) -> Token:
        start = self._position()
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self._at_end() or self._peek() == "\n":
                raise LexError("unterminated string literal", start)
            ch = self._peek()
            if ch == '"':
                self._advance()
                return Token(TokenKind.STRING_LITERAL, "".join(chars), start)
            if ch == "\\":
                self._advance()
                escape = self._peek()
                if escape not in _ESCAPES:
                    raise LexError(f"bad escape \\{escape}", self._position())
                chars.append(_ESCAPES[escape])
                self._advance()
            else:
                chars.append(ch)
                self._advance()

    def _lex_char(self) -> Token:
        """Char literals are sugar for one-character strings in MJ."""
        start = self._position()
        self._advance()  # opening quote
        if self._at_end():
            raise LexError("unterminated char literal", start)
        ch = self._peek()
        if ch == "\\":
            self._advance()
            escape = self._peek()
            if escape not in _ESCAPES:
                raise LexError(f"bad escape \\{escape}", self._position())
            ch = _ESCAPES[escape]
        self._advance()
        if self._peek() != "'":
            raise LexError("unterminated char literal", start)
        self._advance()
        return Token(TokenKind.CHAR_LITERAL, ch, start)


def tokenize(text: str, filename: str = "<input>") -> list[Token]:
    """Convenience wrapper: lex ``text`` into a token list."""
    return Lexer(text, filename).tokenize()
