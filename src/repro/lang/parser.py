"""Recursive-descent parser for MJ.

The grammar is a compact Java subset; see DESIGN.md for the feature list.
Two classic ambiguities are resolved with bounded lookahead:

* *declaration vs. expression* at statement level — ``Foo x = ...`` and
  ``Foo[] x`` start declarations, anything else is an expression;
* *cast vs. parenthesized expression* — ``(Name) e`` is a cast when the
  parenthesized word is a bare (possibly array-suffixed) identifier and
  the next token can begin an expression other than unary minus.
"""

from __future__ import annotations

from repro.lang import ast, types
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.source import Position
from repro.lang.tokens import Token, TokenKind

_EXPR_START = {
    TokenKind.IDENT,
    TokenKind.THIS,
    TokenKind.NEW,
    TokenKind.NULL,
    TokenKind.TRUE,
    TokenKind.FALSE,
    TokenKind.INT_LITERAL,
    TokenKind.STRING_LITERAL,
    TokenKind.CHAR_LITERAL,
    TokenKind.LPAREN,
    TokenKind.NOT,
}

_TYPE_START = {TokenKind.INT, TokenKind.BOOLEAN, TokenKind.VOID, TokenKind.IDENT}

#: Hard cap on statement/expression nesting.  Each level of nesting
#: costs a stack of recursive-descent frames here and another in every
#: downstream AST walk (type checker, IR builder); bounding it keeps an
#: adversarial ``((((...))))`` input a structured :class:`ParseError`
#: instead of a :class:`RecursionError` — or worse, a stack overflow in
#: a worker process.  Real MJ code nests an order of magnitude shallower.
MAX_NESTING = 64


class Parser:
    """Parses a token stream into an :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0
        self._depth = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        # The stream always ends with EOF, which _advance never passes;
        # only multi-token lookahead near the end can overrun.
        try:
            return self._tokens[self._index + offset]
        except IndexError:
            return self._tokens[-1]

    def _at(self, kind: TokenKind, offset: int = 0) -> bool:
        try:
            return self._tokens[self._index + offset].kind is kind
        except IndexError:
            return self._tokens[-1].kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _expect(self, kind: TokenKind) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r} but found {token.text!r}", token.position
            )
        return self._advance()

    def _match(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    def _here(self) -> Position:
        return self._peek().position

    def _enter_nesting(self) -> None:
        self._depth += 1
        if self._depth > MAX_NESTING:
            raise ParseError(
                f"statement/expression nesting exceeds the analyzer's "
                f"{MAX_NESTING}-level limit",
                self._here(),
            )

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        start = self._here()
        classes: list[ast.ClassDecl] = []
        while not self._at(TokenKind.EOF):
            classes.append(self._parse_class())
        return ast.Program(start, classes)

    def _parse_class(self) -> ast.ClassDecl:
        start = self._expect(TokenKind.CLASS).position
        name = self._expect(TokenKind.IDENT).text
        superclass: str | None = None
        if self._match(TokenKind.EXTENDS):
            superclass = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.LBRACE)
        fields: list[ast.FieldDecl] = []
        methods: list[ast.MethodDecl] = []
        while not self._at(TokenKind.RBRACE):
            self._parse_member(name, fields, methods)
        self._expect(TokenKind.RBRACE)
        return ast.ClassDecl(start, name, superclass, fields, methods)

    def _parse_member(
        self,
        class_name: str,
        fields: list[ast.FieldDecl],
        methods: list[ast.MethodDecl],
    ) -> None:
        start = self._here()
        is_static = self._match(TokenKind.STATIC) is not None
        is_final = self._match(TokenKind.FINAL) is not None
        # Constructor: the class name followed immediately by '('.
        if (
            not is_static
            and self._at(TokenKind.IDENT)
            and self._peek().text == class_name
            and self._at(TokenKind.LPAREN, 1)
        ):
            self._advance()  # class name
            params = self._parse_params()
            body = self._parse_block()
            methods.append(
                ast.MethodDecl(
                    start,
                    "<init>",
                    types.VOID,
                    params,
                    body,
                    is_static=False,
                    is_constructor=True,
                )
            )
            return
        declared = self._parse_type()
        name = self._expect(TokenKind.IDENT).text
        if self._at(TokenKind.LPAREN):
            params = self._parse_params()
            body = self._parse_block()
            methods.append(
                ast.MethodDecl(start, name, declared, params, body, is_static)
            )
            return
        init: ast.Expr | None = None
        if self._match(TokenKind.ASSIGN):
            init = self._parse_expr()
        self._expect(TokenKind.SEMI)
        fields.append(ast.FieldDecl(start, name, declared, is_static, is_final, init))

    def _parse_params(self) -> list[ast.Param]:
        self._expect(TokenKind.LPAREN)
        params: list[ast.Param] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                pos = self._here()
                declared = self._parse_type()
                name = self._expect(TokenKind.IDENT).text
                params.append(ast.Param(pos, name, declared))
                if not self._match(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN)
        return params

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------

    def _parse_type(self) -> types.Type:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            base: types.Type = types.INT
        elif token.kind is TokenKind.BOOLEAN:
            self._advance()
            base = types.BOOLEAN
        elif token.kind is TokenKind.VOID:
            self._advance()
            base = types.VOID
        elif token.kind is TokenKind.IDENT:
            self._advance()
            base = types.ClassType(token.text)
        else:
            raise ParseError(f"expected a type, found {token.text!r}", token.position)
        while self._at(TokenKind.LBRACKET) and self._at(TokenKind.RBRACKET, 1):
            self._advance()
            self._advance()
            base = types.ArrayType(base)
        return base

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect(TokenKind.LBRACE).position
        statements: list[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            statements.append(self._parse_stmt())
        self._expect(TokenKind.RBRACE)
        return ast.Block(start, statements)

    def _parse_stmt(self) -> ast.Stmt:
        self._enter_nesting()
        try:
            return self._parse_stmt_inner()
        finally:
            self._depth -= 1

    def _parse_stmt_inner(self) -> ast.Stmt:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.LBRACE:
            return self._parse_block()
        if kind is TokenKind.IF:
            return self._parse_if()
        if kind is TokenKind.WHILE:
            return self._parse_while()
        if kind is TokenKind.FOR:
            return self._parse_for()
        if kind is TokenKind.RETURN:
            self._advance()
            value = None if self._at(TokenKind.SEMI) else self._parse_expr()
            self._expect(TokenKind.SEMI)
            return ast.Return(token.position, value)
        if kind is TokenKind.BREAK:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Break(token.position)
        if kind is TokenKind.CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Continue(token.position)
        if kind is TokenKind.THROW:
            self._advance()
            value = self._parse_expr()
            self._expect(TokenKind.SEMI)
            return ast.Throw(token.position, value)
        if kind is TokenKind.TRY:
            return self._parse_try()
        stmt = self._parse_simple_stmt()
        self._expect(TokenKind.SEMI)
        return stmt

    def _parse_if(self) -> ast.Stmt:
        start = self._expect(TokenKind.IF).position
        self._expect(TokenKind.LPAREN)
        condition = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        then_branch = self._parse_stmt()
        else_branch: ast.Stmt | None = None
        if self._match(TokenKind.ELSE):
            else_branch = self._parse_stmt()
        return ast.If(start, condition, then_branch, else_branch)

    def _parse_while(self) -> ast.Stmt:
        start = self._expect(TokenKind.WHILE).position
        self._expect(TokenKind.LPAREN)
        condition = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self._parse_stmt()
        return ast.While(start, condition, body)

    def _parse_for(self) -> ast.Stmt:
        start = self._expect(TokenKind.FOR).position
        self._expect(TokenKind.LPAREN)
        init = None if self._at(TokenKind.SEMI) else self._parse_simple_stmt()
        self._expect(TokenKind.SEMI)
        condition = None if self._at(TokenKind.SEMI) else self._parse_expr()
        self._expect(TokenKind.SEMI)
        update = None if self._at(TokenKind.RPAREN) else self._parse_simple_stmt()
        self._expect(TokenKind.RPAREN)
        body = self._parse_stmt()
        return ast.For(start, init, condition, update, body)

    def _parse_try(self) -> ast.Stmt:
        start = self._expect(TokenKind.TRY).position
        try_block = self._parse_block()
        self._expect(TokenKind.CATCH)
        self._expect(TokenKind.LPAREN)
        exc_type = self._parse_type()
        exc_name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.RPAREN)
        catch_block = self._parse_block()
        return ast.TryCatch(start, try_block, exc_type, exc_name, catch_block)

    def _parse_simple_stmt(self) -> ast.Stmt:
        """A declaration, assignment, or expression — no trailing ';'."""
        if self._starts_declaration():
            return self._parse_var_decl()
        start = self._here()
        expr = self._parse_expr()
        if self._at(TokenKind.ASSIGN):
            self._advance()
            value = self._parse_expr()
            self._check_lvalue(expr)
            return ast.Assign(start, expr, value, op=None)
        if self._at(TokenKind.PLUS_ASSIGN) or self._at(TokenKind.MINUS_ASSIGN):
            op = "+" if self._advance().kind is TokenKind.PLUS_ASSIGN else "-"
            value = self._parse_expr()
            self._check_lvalue(expr)
            return ast.Assign(start, expr, value, op=op)
        return ast.ExprStmt(start, expr)

    def _starts_declaration(self) -> bool:
        kind = self._peek().kind
        if kind in (TokenKind.INT, TokenKind.BOOLEAN):
            return True
        if kind is not TokenKind.IDENT:
            return False
        # 'Name ident' or 'Name[] ...' both start declarations.
        if self._at(TokenKind.IDENT, 1):
            return True
        offset = 1
        while self._at(TokenKind.LBRACKET, offset) and self._at(
            TokenKind.RBRACKET, offset + 1
        ):
            offset += 2
        return offset > 1 and self._at(TokenKind.IDENT, offset)

    def _parse_var_decl(self) -> ast.Stmt:
        start = self._here()
        declared = self._parse_type()
        name = self._expect(TokenKind.IDENT).text
        init: ast.Expr | None = None
        if self._match(TokenKind.ASSIGN):
            init = self._parse_expr()
        return ast.VarDecl(start, name, declared, init)

    def _check_lvalue(self, expr: ast.Expr) -> None:
        if not isinstance(expr, (ast.VarRef, ast.FieldAccess, ast.ArrayAccess)):
            raise ParseError("invalid assignment target", expr.position)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        """Public entry point used by tests and tools."""
        return self._parse_expr()

    def _parse_expr(self) -> ast.Expr:
        self._enter_nesting()
        try:
            return self._parse_or()
        finally:
            self._depth -= 1

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(TokenKind.OR):
            pos = self._advance().position
            right = self._parse_and()
            left = ast.Binary(pos, "||", left, right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_equality()
        while self._at(TokenKind.AND):
            pos = self._advance().position
            right = self._parse_equality()
            left = ast.Binary(pos, "&&", left, right)
        return left

    def _parse_equality(self) -> ast.Expr:
        left = self._parse_relational()
        while self._at(TokenKind.EQ) or self._at(TokenKind.NE):
            token = self._advance()
            op = "==" if token.kind is TokenKind.EQ else "!="
            right = self._parse_relational()
            left = ast.Binary(token.position, op, left, right)
        return left

    def _parse_relational(self) -> ast.Expr:
        left = self._parse_additive()
        while True:
            token = self._peek()
            if token.kind is TokenKind.INSTANCEOF:
                self._advance()
                class_name = self._expect(TokenKind.IDENT).text
                left = ast.InstanceOf(token.position, left, class_name)
                continue
            ops = {
                TokenKind.LT: "<",
                TokenKind.LE: "<=",
                TokenKind.GT: ">",
                TokenKind.GE: ">=",
            }
            if token.kind not in ops:
                return left
            self._advance()
            right = self._parse_additive()
            left = ast.Binary(token.position, ops[token.kind], left, right)

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._at(TokenKind.PLUS) or self._at(TokenKind.MINUS):
            token = self._advance()
            op = "+" if token.kind is TokenKind.PLUS else "-"
            right = self._parse_multiplicative()
            left = ast.Binary(token.position, op, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        ops = {TokenKind.STAR: "*", TokenKind.SLASH: "/", TokenKind.PERCENT: "%"}
        while self._peek().kind in ops:
            token = self._advance()
            right = self._parse_unary()
            left = ast.Binary(token.position, ops[token.kind], left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        # Iterative over the prefix run: a `!!!!...x` chain must not
        # consume a parser stack frame (or a nesting level) per token.
        prefixes: list[Token] = []
        while self._peek().kind in (TokenKind.NOT, TokenKind.MINUS):
            if len(prefixes) >= MAX_NESTING:
                raise ParseError(
                    f"unary operator chain exceeds the analyzer's "
                    f"{MAX_NESTING}-level limit",
                    self._here(),
                )
            prefixes.append(self._advance())
        expr = self._parse_postfix()
        for token in reversed(prefixes):
            op = "!" if token.kind is TokenKind.NOT else "-"
            expr = ast.Unary(token.position, op, expr)
        return expr

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind is TokenKind.DOT:
                self._advance()
                name = self._expect(TokenKind.IDENT).text
                if self._at(TokenKind.LPAREN):
                    args = self._parse_args()
                    expr = ast.Call(token.position, expr, name, args)
                else:
                    expr = ast.FieldAccess(token.position, expr, name)
            elif token.kind is TokenKind.LBRACKET:
                self._advance()
                index = self._parse_expr()
                self._expect(TokenKind.RBRACKET)
                expr = ast.ArrayAccess(token.position, expr, index)
            elif token.kind is TokenKind.PLUS_PLUS:
                self._advance()
                self._check_lvalue(expr)
                expr = ast.PostfixIncDec(token.position, expr, "+")
            elif token.kind is TokenKind.MINUS_MINUS:
                self._advance()
                self._check_lvalue(expr)
                expr = ast.PostfixIncDec(token.position, expr, "-")
            else:
                return expr

    def _parse_args(self) -> list[ast.Expr]:
        self._expect(TokenKind.LPAREN)
        args: list[ast.Expr] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                args.append(self._parse_expr())
                if not self._match(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN)
        return args

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.INT_LITERAL:
            self._advance()
            return ast.IntLit(token.position, int(token.text))
        if kind is TokenKind.STRING_LITERAL or kind is TokenKind.CHAR_LITERAL:
            self._advance()
            return ast.StringLit(token.position, token.text)
        if kind is TokenKind.TRUE:
            self._advance()
            return ast.BoolLit(token.position, True)
        if kind is TokenKind.FALSE:
            self._advance()
            return ast.BoolLit(token.position, False)
        if kind is TokenKind.NULL:
            self._advance()
            return ast.NullLit(token.position)
        if kind is TokenKind.THIS:
            self._advance()
            return ast.This(token.position)
        if kind is TokenKind.SUPER:
            self._advance()
            args = self._parse_args()
            return ast.SuperCall(token.position, args)
        if kind is TokenKind.NEW:
            return self._parse_new()
        if kind is TokenKind.IDENT:
            self._advance()
            if self._at(TokenKind.LPAREN):
                args = self._parse_args()
                return ast.Call(token.position, None, token.text, args)
            return ast.VarRef(token.position, token.text)
        if kind is TokenKind.LPAREN:
            if self._looks_like_cast():
                return self._parse_cast()
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.position)

    def _parse_new(self) -> ast.Expr:
        start = self._expect(TokenKind.NEW).position
        token = self._peek()
        if token.kind in (TokenKind.INT, TokenKind.BOOLEAN):
            self._advance()
            base: types.Type = types.INT if token.kind is TokenKind.INT else types.BOOLEAN
            return self._parse_new_array(start, base)
        name = self._expect(TokenKind.IDENT).text
        if self._at(TokenKind.LBRACKET):
            return self._parse_new_array(start, types.ClassType(name))
        args = self._parse_args()
        return ast.New(start, name, args)

    def _parse_new_array(self, start: Position, base: types.Type) -> ast.Expr:
        self._expect(TokenKind.LBRACKET)
        length = self._parse_expr()
        self._expect(TokenKind.RBRACKET)
        element: types.Type = base
        while self._at(TokenKind.LBRACKET) and self._at(TokenKind.RBRACKET, 1):
            self._advance()
            self._advance()
            element = types.ArrayType(element)
        return ast.NewArray(start, element, length)

    def _looks_like_cast(self) -> bool:
        """True when the upcoming '(' opens a cast like ``(Foo) x``."""
        if not self._at(TokenKind.IDENT, 1):
            return False
        offset = 2
        while self._at(TokenKind.LBRACKET, offset) and self._at(
            TokenKind.RBRACKET, offset + 1
        ):
            offset += 2
        if not self._at(TokenKind.RPAREN, offset):
            return False
        after = self._peek(offset + 1).kind
        return after in _EXPR_START

    def _parse_cast(self) -> ast.Expr:
        start = self._expect(TokenKind.LPAREN).position
        target = self._parse_type()
        self._expect(TokenKind.RPAREN)
        expr = self._parse_unary()
        return ast.Cast(start, target, expr)


def parse_program(text: str, filename: str = "<input>") -> ast.Program:
    """Lex and parse ``text`` into a full program AST."""
    return Parser(tokenize(text, filename)).parse_program()


def parse_expression(text: str, filename: str = "<expr>") -> ast.Expr:
    """Lex and parse ``text`` as a single expression (for tests/tools)."""
    parser = Parser(tokenize(text, filename))
    expr = parser.parse_expression()
    parser._expect(TokenKind.EOF)
    return expr
