"""The analysis daemon: dispatcher, serving loops, observability.

Design rules:

* **Error isolation** — ``handle_line`` never raises.  A query that
  throws (bad params, MJ compile error, an analysis bug) produces a
  structured error response; the daemon keeps serving.
* **Per-request timeout** — handlers run on a small worker pool and
  are abandoned after ``timeout`` seconds (the worker finishes in the
  background; the client gets a ``Timeout`` error immediately).
* **Observability** — every request is timed and counted per method,
  and emitted as a structured (JSON) log line; the ``stats`` RPC with
  no program argument returns the counters plus the cache hit/miss
  numbers.

Two serving loops: :func:`serve_stdio` (one client on stdin/stdout)
and :func:`serve_tcp` (a threading TCP server, many clients, one
request pipeline per connection).
"""

from __future__ import annotations

import json
import logging
import socketserver
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import Any, Callable, TextIO

from repro import AnalyzedProgram, AnalyzeOptions, __version__
from repro.profiling import merge_timing_dicts
from repro.server.cache import AnalysisCache
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    chop_payload,
    decode_message,
    encode_message,
    error_response,
    explain_payload,
    ok_response,
    slice_payload,
    stats_payload,
    why_payload,
)

logger = logging.getLogger("repro.server")


class QueryError(Exception):
    """A structured, client-visible failure (bad params, empty result)."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(message)
        self.error_type = error_type


@dataclass
class MethodStats:
    count: int = 0
    errors: int = 0
    timeouts: int = 0
    total_ms: float = 0.0
    max_ms: float = 0.0

    def record(self, latency_ms: float, ok: bool, timed_out: bool) -> None:
        self.count += 1
        if not ok:
            self.errors += 1
        if timed_out:
            self.timeouts += 1
        self.total_ms += latency_ms
        self.max_ms = max(self.max_ms, latency_ms)

    def as_dict(self) -> dict[str, Any]:
        mean = self.total_ms / self.count if self.count else 0.0
        return {
            "count": self.count,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "total_ms": round(self.total_ms, 3),
            "mean_ms": round(mean, 3),
            "max_ms": round(self.max_ms, 3),
        }


class SliceServer:
    """Dispatches protocol requests against a shared analysis cache."""

    def __init__(
        self,
        cache: AnalysisCache | None = None,
        timeout: float | None = None,
        workers: int = 4,
    ) -> None:
        self.cache = cache if cache is not None else AnalysisCache()
        self.timeout = timeout
        self.started = time.time()
        self.shutting_down = False
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-query"
        )
        self._stats_lock = threading.Lock()
        self._method_stats: dict[str, MethodStats] = {}
        # Aggregated pipeline stage timings over every analysis this
        # process actually ran (cache hits contribute nothing).
        self._pipeline: dict[str, Any] = {}
        self._methods: dict[str, Callable[[dict[str, Any]], dict[str, Any]]] = {
            "ping": self._method_ping,
            "slice": self._method_slice,
            "explain": self._method_explain,
            "why": self._method_why,
            "chop": self._method_chop,
            "stats": self._method_stats_rpc,
            "shutdown": self._method_shutdown,
        }

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def handle_line(self, line: str) -> str:
        """One request line in, one response line out.  Never raises."""
        try:
            request = decode_message(line)
        except ProtocolError as exc:
            return encode_message(error_response(None, "Protocol", str(exc)))
        return encode_message(self.handle_request(request))

    def handle_request(self, request: dict[str, Any]) -> dict[str, Any]:
        request_id = request.get("id")
        method = request.get("method")
        params = request.get("params") or {}
        if not isinstance(method, str) or method not in self._methods:
            return error_response(
                request_id, "UnknownMethod", f"unknown method: {method!r}"
            )
        if not isinstance(params, dict):
            return error_response(
                request_id, "Protocol", "params must be an object"
            )
        start = time.perf_counter()
        timed_out = False
        try:
            introspection = method in ("ping", "shutdown") or (
                method == "stats"
                and "source" not in params
                and "program" not in params
            )
            if introspection:
                # Must stay responsive even when the worker pool is
                # saturated by slow analyses.
                result = self._methods[method](params)
            else:
                future = self._pool.submit(self._methods[method], params)
                result = future.result(timeout=self.timeout)
            response = ok_response(request_id, result)
        except FutureTimeout:
            timed_out = True
            response = error_response(
                request_id,
                "Timeout",
                f"request exceeded {self.timeout:g}s budget",
            )
        except QueryError as exc:
            response = error_response(request_id, exc.error_type, str(exc))
        except Exception as exc:
            response = error_response(request_id, type(exc).__name__, str(exc))
        latency_ms = (time.perf_counter() - start) * 1000
        self._record(method, latency_ms, response["ok"], timed_out)
        return response

    # ------------------------------------------------------------------
    # Methods
    # ------------------------------------------------------------------

    def _method_ping(self, params: dict[str, Any]) -> dict[str, Any]:
        return {
            "pong": True,
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
        }

    def _method_shutdown(self, params: dict[str, Any]) -> dict[str, Any]:
        self.shutting_down = True
        return {"stopping": True}

    def _method_slice(self, params: dict[str, Any]) -> dict[str, Any]:
        analyzed, name, origin = self._analyzed_program(params)
        line = self._int_param(params, "line")
        flavor = params.get("flavor", "thin")
        if flavor not in ("thin", "traditional"):
            raise QueryError("BadParams", f"unknown flavor: {flavor!r}")
        slicer = (
            analyzed.traditional_slicer
            if flavor == "traditional"
            else analyzed.thin_slicer
        )
        result = slicer.slice_from_line(line)
        payload = slice_payload(
            result,
            program=name,
            line=line,
            flavor=flavor,
            context=int(params.get("context", 0)),
        )
        payload["origin"] = origin
        return payload

    def _method_explain(self, params: dict[str, Any]) -> dict[str, Any]:
        analyzed, name, origin = self._analyzed_program(params)
        payload = explain_payload(
            analyzed, program=name, line=self._int_param(params, "line")
        )
        payload["origin"] = origin
        return payload

    def _method_why(self, params: dict[str, Any]) -> dict[str, Any]:
        analyzed, name, origin = self._analyzed_program(params)
        payload = why_payload(
            analyzed,
            program=name,
            source_line=self._int_param(params, "source_line"),
            sink_line=self._int_param(params, "sink_line"),
        )
        payload["origin"] = origin
        return payload

    def _method_chop(self, params: dict[str, Any]) -> dict[str, Any]:
        from repro.slicing.chopping import thin_chop, traditional_chop

        analyzed, name, origin = self._analyzed_program(params)
        flavor = params.get("flavor", "thin")
        if flavor not in ("thin", "traditional"):
            raise QueryError("BadParams", f"unknown flavor: {flavor!r}")
        chopper = traditional_chop if flavor == "traditional" else thin_chop
        source_line = self._int_param(params, "source_line")
        sink_line = self._int_param(params, "sink_line")
        result = chopper(analyzed.compiled, analyzed.sdg, source_line, sink_line)
        payload = chop_payload(
            result,
            analyzed,
            program=name,
            source_line=source_line,
            sink_line=sink_line,
            flavor=flavor,
        )
        payload["origin"] = origin
        return payload

    def _method_stats_rpc(self, params: dict[str, Any]) -> dict[str, Any]:
        if "source" in params or "program" in params:
            analyzed, name, origin = self._analyzed_program(params)
            payload = stats_payload(analyzed, name)
            payload["origin"] = origin
            return payload
        return self.server_stats()

    def server_stats(self) -> dict[str, Any]:
        with self._stats_lock:
            methods = {
                name: stats.as_dict()
                for name, stats in sorted(self._method_stats.items())
            }
            requests_total = sum(s.count for s in self._method_stats.values())
            pipeline = {
                key: dict(value) if isinstance(value, dict) else value
                for key, value in self._pipeline.items()
            }
        return {
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.time() - self.started, 3),
            "requests_total": requests_total,
            "methods": methods,
            "cache": self.cache.stats(),
            "pipeline": pipeline,
        }

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _analyzed_program(
        self, params: dict[str, Any]
    ) -> tuple[AnalyzedProgram, str, str]:
        source = params.get("source")
        name = params.get("filename", "<input>")
        if source is None:
            program = params.get("program")
            if not isinstance(program, str):
                raise QueryError(
                    "BadParams", "need 'source' text or a 'program' name"
                )
            from repro.suite.loader import load_source, program_names

            if program not in program_names():
                raise QueryError(
                    "UnknownProgram",
                    f"{program!r} is not a suite program "
                    f"(known: {', '.join(program_names())})",
                )
            source = load_source(program)
            name = f"{program}.mj"
        if not isinstance(source, str):
            raise QueryError("BadParams", "'source' must be a string")
        options = AnalyzeOptions(
            include_stdlib=bool(params.get("include_stdlib", True))
        )
        analyzed, origin = self.cache.get_or_analyze(source, name, options)
        if origin == "analyzed" and analyzed.timings:
            with self._stats_lock:
                merge_timing_dicts(self._pipeline, analyzed.timings)
        return analyzed, name, origin

    @staticmethod
    def _int_param(params: dict[str, Any], key: str) -> int:
        value = params.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            raise QueryError("BadParams", f"{key!r} must be an integer")
        return value

    def _record(
        self, method: str, latency_ms: float, ok: bool, timed_out: bool
    ) -> None:
        with self._stats_lock:
            stats = self._method_stats.setdefault(method, MethodStats())
            stats.record(latency_ms, ok, timed_out)
        logger.info(
            "%s",
            json.dumps(
                {
                    "event": "request",
                    "method": method,
                    "ok": ok,
                    "timed_out": timed_out,
                    "latency_ms": round(latency_ms, 3),
                },
                sort_keys=True,
            ),
        )

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# Serving loops
# ----------------------------------------------------------------------


def serve_stdio(
    server: SliceServer, in_stream: TextIO, out_stream: TextIO
) -> None:
    """Answer newline-delimited requests until EOF or shutdown."""
    for line in in_stream:
        if not line.strip():
            continue
        out_stream.write(server.handle_line(line) + "\n")
        out_stream.flush()
        if server.shutting_down:
            break
    server.close()


class _LineHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        slice_server: SliceServer = self.server.slice_server  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            self.wfile.write((slice_server.handle_line(line) + "\n").encode("utf-8"))
            self.wfile.flush()
            if slice_server.shutting_down:
                # shutdown() must not run on this handler thread.
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                break


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, slice_server: SliceServer) -> None:
        super().__init__(address, _LineHandler)
        self.slice_server = slice_server


def start_tcp_server(
    server: SliceServer, host: str = "127.0.0.1", port: int = 0
) -> tuple[_TCPServer, threading.Thread]:
    """Bind and serve on a background thread; returns (tcp_server, thread).

    ``port=0`` binds an ephemeral port — read it back from
    ``tcp_server.server_address``.
    """
    tcp_server = _TCPServer((host, port), server)
    thread = threading.Thread(
        target=tcp_server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return tcp_server, thread


def serve_tcp(server: SliceServer, host: str = "127.0.0.1", port: int = 7341) -> None:
    """Serve until a ``shutdown`` request (or KeyboardInterrupt)."""
    tcp_server, thread = start_tcp_server(server, host, port)
    bound_host, bound_port = tcp_server.server_address[:2]
    logger.info(
        "%s",
        json.dumps(
            {"event": "listening", "host": bound_host, "port": bound_port},
            sort_keys=True,
        ),
    )
    try:
        thread.join()
    except KeyboardInterrupt:
        tcp_server.shutdown()
    finally:
        tcp_server.server_close()
        server.close()
