"""The analysis daemon: dispatcher, serving loops, observability.

Design rules:

* **Error isolation** — ``handle_line`` never raises.  A query that
  throws (bad params, MJ compile error, an analysis bug) produces a
  structured error response; the daemon keeps serving.
* **Cooperative cancellation** — every analysis request carries a
  :class:`repro.budget.Budget` (wall-clock deadline + cancellation
  flag) that the pipeline hot loops poll.  A timed-out or
  client-abandoned request doesn't just get an error response: its
  worker thread observes the cancelled budget and unwinds within
  milliseconds, so pathological programs cannot wedge the pool.
* **Admission control** — at most ``max_queue`` requests may wait for
  a worker; beyond that the daemon sheds load with a fast structured
  ``Overloaded`` error instead of silently piling work up.
* **Observability** — every request is timed and counted per method
  and emitted as a structured (JSON) log line; the ``stats`` RPC with
  no program argument returns the counters plus cache hit/miss
  numbers, and the ``health`` RPC reports busy/queued workers without
  ever touching the worker pool.
* **Input hardening** — requests whose analysis repeatedly *kills a
  worker process* (crash or memory-limit overrun) are quarantined by
  content fingerprint and answered with an immediate structured
  ``PoisonInput`` error; pool-wide crash storms trip a circuit breaker
  that degrades cold analyses process→thread until a cooldown probe
  succeeds (see :mod:`repro.server.quarantine`).
* **Multi-core execution** — with ``executor="process"`` the request
  threads stay (admission, slicing, cancellation accounting are all
  parent-side) but every cold analysis is dispatched to a
  :class:`repro.parallel.ProcessPool` worker, which hands back flat
  artifact bytes (serialize-once into the disk store).  A deadline or
  disconnect kills the worker process and frees the slot exactly as a
  cooperative thread-mode cancellation would.
* **Zero-copy warm path** — ``slice``/``slice_batch``/``stats`` run
  against the :class:`repro.server.cache.CacheEntry` directly: a
  warm-disk hit slices over the mmap-backed
  :class:`~repro.artifact.ArtifactView` and never reconstructs the
  object graph.  Only the rich methods (``explain``/``why``/``chop``)
  materialize, once per entry, via :meth:`CacheEntry.program`.
* **Artifact integrity** — stored artifacts are digest-verified at
  load (see :mod:`repro.artifact.format`); a background scrubber
  deep-verifies the whole store on a timer, quarantining corrupt
  files; and if a flat slice still blows up mid-walk the request
  degrades to a transparent cold re-analysis (``degraded_recomputes``
  in health/stats) — a corrupt store costs latency, never a wrong
  answer.

Two serving loops: :func:`serve_stdio` (one client on stdin/stdout)
and :func:`serve_tcp` (a threading TCP server, many clients, one
request pipeline per connection).  Both cap request lines at
:data:`MAX_LINE_BYTES` and answer oversized lines with a structured
``Protocol`` error instead of buffering unbounded input.
"""

from __future__ import annotations

import json
import logging
import socket
import socketserver
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import Any, Callable, TextIO

from repro import AnalyzedProgram, AnalyzeOptions, __version__
from repro.artifact import ArtifactError
from repro.budget import Budget, BudgetExceeded
from repro.parallel import ProcessPool, WorkerCrashed, WorkerError
from repro.profiling import merge_timing_dicts
from repro.resources import ResourceExceeded
from repro.server.cache import AnalysisCache, CacheEntry, cache_key
from repro.server.faults import FaultPlan
from repro.server.fragments import DEFAULT_SESSION_CAPACITY, FragmentStore
from repro.server.quarantine import CircuitBreaker, Quarantine
from repro.server.replication import (
    DEFAULT_REPLICATION_FACTOR,
    Replicator,
    decode_payload,
    encode_payload,
    validate_artifact,
)
from repro.server.ring import DEFAULT_REPLICAS
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    chop_payload,
    decode_message,
    encode_message,
    error_response,
    explain_payload,
    ok_response,
    slice_batch_payload,
    slice_payload,
    stats_payload_from_counts,
    why_payload,
)

logger = logging.getLogger("repro.server")

#: Hard cap on one request line; beyond this the serving loops answer a
#: structured ``Protocol`` error without buffering the rest.
MAX_LINE_BYTES = 10 * 1024 * 1024

#: Default bound on requests waiting for a free worker.
DEFAULT_MAX_QUEUE = 32

#: How often the dispatcher wakes while waiting on a worker, to notice
#: passed deadlines and vanished clients.
_WAIT_SLICE_S = 0.05

#: Hard cap on seeds in one ``slice_batch`` request (admission sanity:
#: one request should not monopolize the daemon indefinitely).
MAX_BATCH_ITEMS = 256

#: What a flat slicer raises when it walks bytes that passed load-time
#: verification but are wrong anyway (an encoder bug, or corruption
#: under ``verify="none"``).  The slice path catches exactly these and
#: degrades to a transparent cold re-analysis — anything else is a
#: genuine server bug and must surface as an Internal error.
_FLAT_CORRUPTION_ERRORS = (
    ArtifactError,
    IndexError,
    struct.error,
    UnicodeDecodeError,
    OverflowError,
)


#: Methods answered inline on the connection thread — never dispatched
#: to the worker pool, so they stay responsive under saturation.
_INLINE_METHODS = frozenset(
    {
        "ping",
        "shutdown",
        "health",
        "put_artifact",
        "get_artifact",
        "sync_offer",
        "replicate_config",
        "replicate_key",
        "repair",
    }
)


def default_executor(workers: int) -> str:
    """``process`` when there is parallelism to win, else ``thread``."""
    return "process" if workers > 1 else "thread"


class QueryError(Exception):
    """A structured, client-visible failure (bad params, empty result)."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(message)
        self.error_type = error_type


@dataclass
class MethodStats:
    count: int = 0
    errors: int = 0
    timeouts: int = 0
    total_ms: float = 0.0
    max_ms: float = 0.0

    def record(self, latency_ms: float, ok: bool, timed_out: bool) -> None:
        self.count += 1
        if not ok:
            self.errors += 1
        if timed_out:
            self.timeouts += 1
        self.total_ms += latency_ms
        self.max_ms = max(self.max_ms, latency_ms)

    def as_dict(self) -> dict[str, Any]:
        mean = self.total_ms / self.count if self.count else 0.0
        return {
            "count": self.count,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "total_ms": round(self.total_ms, 3),
            "mean_ms": round(mean, 3),
            "max_ms": round(self.max_ms, 3),
        }


class SliceServer:
    """Dispatches protocol requests against a shared analysis cache."""

    def __init__(
        self,
        cache: AnalysisCache | None = None,
        timeout: float | None = None,
        workers: int = 4,
        max_queue: int = DEFAULT_MAX_QUEUE,
        fault_plan: FaultPlan | None = None,
        executor: str = "thread",
        memory_limit_mb: float | None = None,
        quarantine: Quarantine | None = None,
        breaker: CircuitBreaker | None = None,
        scrub_interval_s: float | None = None,
        incremental: bool = True,
        fragment_sessions: int = DEFAULT_SESSION_CAPACITY,
    ) -> None:
        if executor not in ("thread", "process"):
            raise ValueError(f"unknown executor: {executor!r}")
        self.cache = cache if cache is not None else AnalysisCache()
        if incremental and self.cache.fragments is None:
            # Attach the incremental level (edit-aware warm path).  The
            # cache injects its own seed loader; ``incremental=False``
            # (or a pre-wired cache) leaves serving strictly two-tier.
            fragments = FragmentStore(capacity=fragment_sessions)
            fragments.loader = self.cache._load_for_seed
            if self.cache.store is not None:
                # Crash anchors ride in the artifact store's directory:
                # a respawned shard pointed at the same root reseeds
                # its warm lineages lazily from these sidecars.
                fragments.checkpoint_dir = self.cache.store.root / "sessions"
            self.cache.fragments = fragments
        self.timeout = timeout
        self.workers = workers
        self.max_queue = max_queue
        self.fault_plan = fault_plan
        if fault_plan is not None and self.cache.fault_plan is None:
            self.cache.fault_plan = fault_plan
        self.executor = executor
        self.memory_limit_mb = memory_limit_mb
        #: Poison-input tracking + pool-health breaker (see
        #: :mod:`repro.server.quarantine`).  Both are live for either
        #: executor — only the process executor ever *feeds* them
        #: (thread-mode analyses cannot kill a worker in isolation), but
        #: health always reports their state.
        self.quarantine = quarantine if quarantine is not None else Quarantine()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.process_pool: ProcessPool | None = None
        if executor == "process":
            self.process_pool = ProcessPool(workers=workers)
            if self.cache.executor is None:
                self.cache.executor = self.process_pool
        self.started = time.time()
        self.shutting_down = False
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-query"
        )
        self._stats_lock = threading.Lock()
        self._method_stats: dict[str, MethodStats] = {}
        # Load accounting: queued = submitted but not yet started,
        # busy = currently executing on a worker thread.
        self._load_lock = threading.Lock()
        self._busy = 0
        self._queued = 0
        self.shed_total = 0
        self.cancelled_total = 0
        # Aggregated pipeline stage timings over every analysis this
        # process actually ran (cache hits contribute nothing).  The
        # merge is not internally synchronized and concurrent workers
        # (plus batch fan-out threads) interleave accumulation, so every
        # touch — write or read — goes through this dedicated lock.
        self._pipeline: dict[str, Any] = {}
        self._pipeline_lock = threading.Lock()
        # Serve-time corruption recoveries: a flat slice blew up on
        # verified-at-load bytes, the entry was invalidated, the file
        # quarantined, and the request transparently re-analyzed.
        self.degraded_recomputes = 0
        # Periodic store scrubber.  The first pass runs right away on
        # the scrub thread (the "scrub at open" the store wants) so a
        # daemon pointed at a rotted store quarantines it before the
        # first unlucky request finds out; serving is never blocked.
        self.scrub_interval_s = scrub_interval_s
        self._scrub_stop = threading.Event()
        self._scrub_thread: threading.Thread | None = None
        if scrub_interval_s is not None and self.cache.store is not None:
            self._scrub_thread = threading.Thread(
                target=self._scrub_loop, name="repro-scrub", daemon=True
            )
            self._scrub_thread.start()
        # Replication engine; attached post-start via the
        # ``replicate_config`` RPC because shard ports are ephemeral —
        # nobody knows the peer list until the whole tier is listening.
        self.replicator: Replicator | None = None
        self._methods: dict[
            str, Callable[[dict[str, Any], Budget | None], dict[str, Any]]
        ] = {
            "ping": self._method_ping,
            "health": self._method_health,
            "slice": self._method_slice,
            "slice_batch": self._method_slice_batch,
            "explain": self._method_explain,
            "why": self._method_why,
            "chop": self._method_chop,
            "stats": self._method_stats_rpc,
            "shutdown": self._method_shutdown,
            "put_artifact": self._method_put_artifact,
            "get_artifact": self._method_get_artifact,
            "sync_offer": self._method_sync_offer,
            "replicate_config": self._method_replicate_config,
            "replicate_key": self._method_replicate_key,
            "repair": self._method_repair,
        }

    def prestart(self) -> None:
        """Pay worker-process spawn costs now instead of on first miss."""
        if self.process_pool is not None:
            self.process_pool.prestart(wait=False)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def handle_line(
        self, line: str, client_alive: Callable[[], bool] | None = None
    ) -> str:
        """One request line in, one response line out.  Never raises."""
        if len(line) > MAX_LINE_BYTES:
            return encode_message(
                error_response(
                    None,
                    "Protocol",
                    f"request line exceeds {MAX_LINE_BYTES} bytes",
                )
            )
        try:
            request = decode_message(line)
        except ProtocolError as exc:
            return encode_message(error_response(None, "Protocol", str(exc)))
        return encode_message(self.handle_request(request, client_alive))

    def handle_request(
        self,
        request: dict[str, Any],
        client_alive: Callable[[], bool] | None = None,
    ) -> dict[str, Any]:
        """Dispatch one request.

        ``client_alive`` (supplied by the TCP handler) is polled while
        the request waits on a worker; when it reports the client gone,
        the in-flight budget is cancelled so the worker frees itself.
        """
        request_id = request.get("id")
        method = request.get("method")
        params = request.get("params") or {}
        if not isinstance(method, str) or method not in self._methods:
            return error_response(
                request_id, "UnknownMethod", f"unknown method: {method!r}"
            )
        if not isinstance(params, dict):
            return error_response(
                request_id, "Protocol", "params must be an object"
            )
        start = time.perf_counter()
        timed_out = False
        try:
            # Replication traffic rides the introspection path too: a
            # saturated worker pool must not be able to starve artifact
            # convergence (the RPCs touch only the store, never a
            # worker), and repair/config calls must answer during a
            # drain when every worker slot is busy finishing requests.
            introspection = method in _INLINE_METHODS or (
                method == "stats"
                and "source" not in params
                and "program" not in params
            )
            if introspection:
                # Must stay responsive even when the worker pool is
                # saturated by slow analyses.
                result = self._methods[method](params, None)
            else:
                result = self._run_on_worker(method, params, client_alive)
            response = ok_response(request_id, result)
        except QueryError as exc:
            timed_out = exc.error_type == "Timeout"
            response = error_response(request_id, exc.error_type, str(exc))
        except BudgetExceeded as exc:
            # The worker observed its own budget before the dispatcher
            # noticed; classify by the recorded reason.
            timed_out = exc.reason != "cancelled"
            error_type = "Timeout" if timed_out else "Cancelled"
            response = error_response(request_id, error_type, str(exc))
        except ResourceExceeded as exc:
            # The memory sentinel killed (or the rlimit backstop
            # unwound) the analysis; its own wire type keeps it apart
            # from budget timeouts — the input is too hungry, not slow.
            response = error_response(request_id, "ResourceExceeded", str(exc))
        except WorkerError as exc:
            # A process-executor failure, transported.  Task exceptions
            # carry the original type name so the client sees the same
            # structured error as an in-process analysis failure; a
            # worker death surfaces as its own "WorkerCrashed" type.
            response = error_response(request_id, exc.error_type, exc.message)
        except Exception as exc:
            response = error_response(request_id, type(exc).__name__, str(exc))
        latency_ms = (time.perf_counter() - start) * 1000
        self._record(method, latency_ms, response["ok"], timed_out)
        return response

    # ------------------------------------------------------------------
    # Worker-pool dispatch: admission, deadlines, cancellation
    # ------------------------------------------------------------------

    def _run_on_worker(
        self,
        method: str,
        params: dict[str, Any],
        client_alive: Callable[[], bool] | None,
    ) -> dict[str, Any]:
        limit = self._effective_limit(params)
        budget = Budget.from_timeout(limit)
        with self._load_lock:
            if self._busy >= self.workers and self._queued >= self.max_queue:
                self.shed_total += 1
                raise QueryError(
                    "Overloaded",
                    f"all {self.workers} workers busy and {self._queued} "
                    f"requests queued (max {self.max_queue}); retry with "
                    "backoff",
                )
            self._queued += 1
        future = self._pool.submit(
            self._run_worker, self._methods[method], params, budget
        )
        deadline = None if limit is None else time.monotonic() + limit
        while True:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    dropped = self._abort(future, budget, "deadline")
                    if dropped:
                        # The deadline passed while the request was
                        # still *queued*: no worker ever touched it, so
                        # it is shed with its own error type — the
                        # router counts these as free admission sheds,
                        # not as burned analysis time.
                        raise QueryError(
                            "DeadlineExpired",
                            f"{limit:g}s deadline passed while queued; "
                            "no worker was consumed",
                        )
                    raise QueryError(
                        "Timeout", f"request exceeded {limit:g}s budget"
                    )
                wait = min(_WAIT_SLICE_S, remaining)
            else:
                wait = _WAIT_SLICE_S
            try:
                return future.result(timeout=wait)
            except FutureTimeout:
                if client_alive is not None and not client_alive():
                    self._abort(future, budget, "cancelled")
                    raise QueryError(
                        "Cancelled",
                        "client disconnected before the response was ready",
                    ) from None
            except BudgetExceeded:
                # The worker observed its own expired budget before the
                # dispatcher's next wake-up; it still counts as a
                # cancelled in-flight analysis.
                with self._load_lock:
                    self.cancelled_total += 1
                raise

    def _effective_limit(self, params: dict[str, Any]) -> float | None:
        """min(server timeout, per-request ``deadline`` param)."""
        deadline = params.pop("deadline", None)
        if deadline is not None:
            if (
                not isinstance(deadline, (int, float))
                or isinstance(deadline, bool)
                or deadline <= 0
            ):
                raise QueryError(
                    "BadParams",
                    "'deadline' must be a positive number of seconds",
                )
            deadline = float(deadline)
        limits = [l for l in (self.timeout, deadline) if l is not None]
        return min(limits) if limits else None

    def _run_worker(
        self,
        handler: Callable[[dict[str, Any], Budget], dict[str, Any]],
        params: dict[str, Any],
        budget: Budget,
    ) -> dict[str, Any]:
        with self._load_lock:
            self._queued -= 1
            self._busy += 1
        try:
            remaining = budget.remaining()
            if not budget.cancelled and remaining is not None and remaining <= 0:
                # Queued past its own deadline: shed before any work
                # starts instead of burning the worker on an answer the
                # client has already given up on.  (A *cancellation*
                # that raced us here still reports as Cancelled via the
                # check below.)
                raise QueryError(
                    "DeadlineExpired",
                    "deadline passed while the request was queued",
                )
            budget.check()  # cancelled while still queued -> free at once
            if self.fault_plan is not None:
                self.fault_plan.on_worker(budget)
            return handler(params, budget)
        finally:
            with self._load_lock:
                self._busy -= 1

    def _abort(self, future, budget: Budget, reason: str) -> bool:
        """Cancel an in-flight request: flag its budget (the worker's
        next poll raises) and, if it never started, drop it from the
        queue accounting ourselves (the worker wrapper will not run).
        Returns whether the request was dropped before a worker ever
        started it."""
        budget.cancel(reason)
        dropped = future.cancel()
        with self._load_lock:
            if dropped:
                self._queued -= 1
            self.cancelled_total += 1
        return dropped

    # ------------------------------------------------------------------
    # Methods
    # ------------------------------------------------------------------

    def _method_ping(
        self, params: dict[str, Any], budget: Budget | None
    ) -> dict[str, Any]:
        return {
            "pong": True,
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
        }

    def _method_health(
        self, params: dict[str, Any], budget: Budget | None
    ) -> dict[str, Any]:
        """Pool load at a glance; never touches the worker pool itself."""
        with self._load_lock:
            busy, queued = self._busy, self._queued
            shed, cancelled = self.shed_total, self.cancelled_total
            degraded = self.degraded_recomputes
        payload = {
            "healthy": not self.shutting_down,
            "shutting_down": self.shutting_down,
            "workers": self.workers,
            "busy": busy,
            "queued": queued,
            "max_queue": self.max_queue,
            "shed_total": shed,
            "cancelled_total": cancelled,
            "degraded_recomputes": degraded,
            "executor": self.executor,
            "uptime_s": round(time.time() - self.started, 3),
            "quarantine": self.quarantine.stats(),
            "breaker": self.breaker.stats(),
        }
        if self.memory_limit_mb is not None:
            payload["memory_limit_mb"] = self.memory_limit_mb
        if self.process_pool is not None:
            payload["pool"] = self.process_pool.stats()
        store = self.cache.store
        if store is not None:
            payload["store"] = {
                "root": str(store.root),
                "saves": store.stats.saves,
                "quarantined": store.stats.quarantined,
                "corrupt_found": store.stats.corrupt_found,
                "scrubs": store.stats.scrubs,
                "scrubbed": store.stats.scrubbed,
                "last_scrub": store.last_scrub,
            }
        if self.replicator is not None:
            payload["replication"] = self.replicator.stats()
        fragments = self.cache.fragments
        if fragments is not None:
            fragment_stats = fragments.stats()
            payload["incremental_hits"] = fragment_stats["incremental_hits"]
            payload["functions_reused"] = fragment_stats["functions_reused"]
            payload["functions_reanalyzed"] = fragment_stats[
                "functions_reanalyzed"
            ]
            payload["fragments"] = fragment_stats
        return payload

    def _method_shutdown(
        self, params: dict[str, Any], budget: Budget | None
    ) -> dict[str, Any]:
        self.shutting_down = True
        return {"stopping": True}

    # ------------------------------------------------------------------
    # Replication RPCs (peer-to-peer; see repro.server.replication)
    # ------------------------------------------------------------------

    def _require_store(self):
        store = self.cache.store
        if store is None:
            raise QueryError("BadParams", "this daemon has no disk store")
        return store

    @staticmethod
    def _key_param(params: dict[str, Any]) -> str:
        key = params.get("key")
        if not isinstance(key, str) or not key:
            raise QueryError("BadParams", "'key' must be a non-empty string")
        return key

    def _method_put_artifact(
        self, params: dict[str, Any], budget: Budget | None
    ) -> dict[str, Any]:
        """Receive one replicated artifact from a peer shard.

        The bytes are digest-validated against the key before landing,
        and saved with ``replicate=False`` so a received copy terminates
        here instead of fanning back out around the ring."""
        store = self._require_store()
        key = self._key_param(params)
        try:
            payload = decode_payload(params.get("payload"))
            validate_artifact(key, payload)
        except (ValueError, ArtifactError) as exc:
            raise QueryError(
                "BadParams", f"rejected artifact for {key[:12]}: {exc}"
            ) from exc
        store.save_bytes(key, payload, replicate=False)
        return {"stored": True, "bytes": len(payload)}

    def _method_get_artifact(
        self, params: dict[str, Any], budget: Budget | None
    ) -> dict[str, Any]:
        """Serve one stored artifact to a peer (replica read-through)."""
        store = self._require_store()
        key = self._key_param(params)
        payload = store.load_payload(key)
        if payload is None:
            raise QueryError("NotFound", f"no stored artifact for {key[:12]}")
        return {"key": key, "payload": encode_payload(payload)}

    def _method_sync_offer(
        self, params: dict[str, Any], budget: Budget | None
    ) -> dict[str, Any]:
        """Anti-entropy handshake: given keys a peer holds, report which
        of them this shard is missing (the peer pushes exactly those)."""
        keys = params.get("keys")
        if not isinstance(keys, list) or not all(
            isinstance(k, str) for k in keys
        ):
            raise QueryError("BadParams", "'keys' must be a list of strings")
        store = self.cache.store
        if store is None:
            return {"missing": []}
        have = set(store.keys())
        return {"missing": [k for k in keys if k not in have]}

    def _method_replicate_config(
        self, params: dict[str, Any], budget: Budget | None
    ) -> dict[str, Any]:
        """Install (or replace) this shard's replication engine.

        Pushed by the shard pool after spawn — and re-pushed after every
        respawn — because shard ports are ephemeral: nobody knows the
        peer list until the whole tier is listening."""
        store = self._require_store()
        self_address = params.get("self_address")
        peers = params.get("peers")
        factor = params.get("factor", DEFAULT_REPLICATION_FACTOR)
        if not isinstance(self_address, str) or not self_address:
            raise QueryError("BadParams", "'self_address' must be this shard's address")
        if not isinstance(peers, list) or not all(
            isinstance(p, str) and p for p in peers
        ):
            raise QueryError("BadParams", "'peers' must be a list of addresses")
        if not isinstance(factor, int) or isinstance(factor, bool) or factor < 1:
            raise QueryError("BadParams", "'factor' must be a positive integer")
        ring_replicas = params.get("ring_replicas", DEFAULT_REPLICAS)
        if not isinstance(ring_replicas, int) or ring_replicas < 1:
            raise QueryError("BadParams", "'ring_replicas' must be >= 1")
        old = self.replicator
        replicator = Replicator(
            store,
            self_address,
            list(peers),
            factor=factor,
            ring_replicas=ring_replicas,
        )
        self.replicator = replicator
        store.on_save = replicator.artifact_saved
        self.cache.replica_fetch = replicator.fetch
        if old is not None:
            old.close()
        return {
            "configured": True,
            "self_address": self_address,
            "peers": len(replicator.ring) - 1,
            "factor": replicator.factor,
        }

    def _method_replicate_key(
        self, params: dict[str, Any], budget: Budget | None
    ) -> dict[str, Any]:
        """Read-repair trigger: re-fan one stored artifact out to its
        designated holders (the router calls this after a failover read
        served a key whose owner was down)."""
        key = self._key_param(params)
        if self.replicator is None:
            return {"scheduled": False}
        payload = self.cache.store.load_payload(key)
        if payload is None:
            raise QueryError("NotFound", f"no stored artifact for {key[:12]}")
        self.replicator.artifact_saved(key, payload)
        return {"scheduled": True}

    def _method_repair(
        self, params: dict[str, Any], budget: Budget | None
    ) -> dict[str, Any]:
        """One anti-entropy pass.  ``wait=true`` runs inline and returns
        the summary (drills); default kicks a background pass (the shard
        pool's probe-loop cadence must never block on peer RPCs)."""
        if self.replicator is None:
            raise QueryError("BadParams", "replication is not configured")
        if params.get("wait"):
            return self.replicator.repair()
        self.replicator.repair_async()
        return {"scheduled": True}

    def _method_slice(
        self, params: dict[str, Any], budget: Budget | None
    ) -> dict[str, Any]:
        entry, name, origin = self._cache_entry(params, budget)
        item = {
            "line": self._int_param(params, "line"),
            "context": self._opt_int_param(params, "context", 0),
            "flavor": self._flavor_param(params),
        }
        return self._slice_recovering(entry, name, origin, item, params, budget)

    def _slice_recovering(
        self,
        entry: CacheEntry,
        name: str,
        origin: str,
        item: dict[str, Any],
        params: dict[str, Any],
        budget: Budget | None,
    ) -> dict[str, Any]:
        """:meth:`_slice_result`, degrading gracefully on corruption.

        If a *flat* walk blows up mid-slice (bytes that passed load
        verification but are wrong anyway), the poisoned entry is
        dropped from the memory tier, its backing file quarantined, and
        the request re-analyzed cold — the client gets the same
        byte-identical answer it would have gotten from a healthy
        store, one analysis slower.  Rich-program slices never take
        this path: their failures are real bugs and must surface.
        """
        try:
            return self._slice_result(entry, name, origin, item)
        except _FLAT_CORRUPTION_ERRORS as exc:
            if entry.view is None or entry._program is not None:
                raise
            entry, name, origin = self._recover_entry(params, budget, exc)
            return self._slice_result(entry, name, origin, item)

    def _recover_entry(
        self, params: dict[str, Any], budget: Budget | None, cause: Exception
    ) -> tuple[CacheEntry, str, str]:
        source, _name = self._resolve_source(params)
        options = AnalyzeOptions(
            include_stdlib=bool(params.get("include_stdlib", True)),
            memory_limit_mb=self.memory_limit_mb,
        )
        key = cache_key(source, options)
        logger.warning(
            "slice failed over flat artifact %s (%s: %s); degrading to "
            "cold re-analysis", key[:12], type(cause).__name__, cause,
        )
        self.cache.invalidate(key)
        store = self.cache.store
        if store is not None:
            store.stats.corrupt_found += 1
            store._quarantine(
                store.path_for(key),
                f"served bytes failed mid-slice: {type(cause).__name__}: {cause}",
            )
        with self._load_lock:
            self.degraded_recomputes += 1
        return self._cache_entry(params, budget)

    def _slice_result(
        self,
        entry: CacheEntry,
        name: str,
        origin: str,
        item: dict[str, Any],
    ) -> dict[str, Any]:
        """One seed's slice payload — the single construction path for
        both ``slice`` and every ``slice_batch`` element, so their
        output stays byte-identical.  Runs over whichever form the
        entry holds: a flat view on warm-disk hits (zero
        reconstruction), the rich program otherwise."""
        slicer = entry.slicer(item["flavor"])
        result = slicer.slice_from_line(item["line"])
        payload = slice_payload(
            result,
            program=name,
            line=item["line"],
            flavor=item["flavor"],
            context=item["context"],
        )
        payload["origin"] = origin
        return payload

    def _method_slice_batch(
        self, params: dict[str, Any], budget: Budget | None
    ) -> dict[str, Any]:
        """Many seeds in one request: analyze once per distinct
        fingerprint (concurrently — in process mode those analyses land
        on different worker processes), then fan the per-seed slice
        queries out over the shared SDGs and answer in request order.

        Validation is all-or-nothing: any malformed item fails the whole
        request before any analysis starts.
        """
        items = self._batch_items(params)
        groups: dict[tuple[str, bool], dict[str, Any]] = {}
        order: list[tuple[str, bool]] = []
        for item in items:
            gkey = (item["source"], item["include_stdlib"])
            if gkey not in groups:
                groups[gkey] = item
                order.append(gkey)

        def analyze_group(
            gkey: tuple[str, bool]
        ) -> tuple[CacheEntry, str, str]:
            first = groups[gkey]
            gparams = {
                "source": first["source"],
                "filename": first["name"],
                "include_stdlib": first["include_stdlib"],
            }
            return self._cache_entry(gparams, budget)

        if len(order) > 1:
            with ThreadPoolExecutor(
                max_workers=min(len(order), max(2, self.workers)),
                thread_name_prefix="repro-batch",
            ) as fan:
                futures = {gkey: fan.submit(analyze_group, gkey) for gkey in order}
                resolved = {gkey: fut.result() for gkey, fut in futures.items()}
        else:
            resolved = {order[0]: analyze_group(order[0])}

        def slice_item(item: dict[str, Any]) -> dict[str, Any]:
            entry, _name, origin = resolved[
                (item["source"], item["include_stdlib"])
            ]
            item_params = {
                "source": item["source"],
                "filename": item["name"],
                "include_stdlib": item["include_stdlib"],
            }
            return self._slice_recovering(
                entry, item["name"], origin, item, item_params, budget
            )

        if len(items) > 1:
            with ThreadPoolExecutor(
                max_workers=min(len(items), max(2, self.workers)),
                thread_name_prefix="repro-batch",
            ) as fan:
                results = list(fan.map(slice_item, items))
        else:
            results = [slice_item(items[0])]
        return slice_batch_payload(results, distinct_programs=len(order))

    def _batch_items(self, params: dict[str, Any]) -> list[dict[str, Any]]:
        """Normalize/validate a ``slice_batch`` request into item dicts.

        Two shapes: ``lines: [..]`` against one top-level source or
        program, or ``items: [{...}, ...]`` where each item may carry
        its own source/program and the top level provides defaults.
        """
        raw_items = params.get("items")
        if raw_items is None:
            lines = params.get("lines")
            if not isinstance(lines, list):
                raise QueryError(
                    "BadParams", "need 'lines' (list) or 'items' (list)"
                )
            raw_items = [{"line": line} for line in lines]
        if not isinstance(raw_items, list) or not raw_items:
            raise QueryError("BadParams", "'items' must be a non-empty list")
        if len(raw_items) > MAX_BATCH_ITEMS:
            raise QueryError(
                "BadParams",
                f"batch of {len(raw_items)} seeds exceeds the "
                f"{MAX_BATCH_ITEMS}-item cap; split the request",
            )
        items: list[dict[str, Any]] = []
        for index, raw in enumerate(raw_items):
            if not isinstance(raw, dict):
                raise QueryError(
                    "BadParams", f"items[{index}] must be an object"
                )
            merged = {**params, **raw}
            merged.pop("items", None)
            merged.pop("lines", None)
            source, name = self._resolve_source(merged)
            items.append(
                {
                    "source": source,
                    "name": name,
                    "include_stdlib": bool(merged.get("include_stdlib", True)),
                    "line": self._int_param(merged, "line"),
                    "context": self._opt_int_param(merged, "context", 0),
                    "flavor": self._flavor_param(merged),
                }
            )
        return items

    def _method_explain(
        self, params: dict[str, Any], budget: Budget | None
    ) -> dict[str, Any]:
        analyzed, name, origin = self._analyzed_program(params, budget)
        payload = explain_payload(
            analyzed, program=name, line=self._int_param(params, "line")
        )
        payload["origin"] = origin
        return payload

    def _method_why(
        self, params: dict[str, Any], budget: Budget | None
    ) -> dict[str, Any]:
        analyzed, name, origin = self._analyzed_program(params, budget)
        payload = why_payload(
            analyzed,
            program=name,
            source_line=self._int_param(params, "source_line"),
            sink_line=self._int_param(params, "sink_line"),
        )
        payload["origin"] = origin
        return payload

    def _method_chop(
        self, params: dict[str, Any], budget: Budget | None
    ) -> dict[str, Any]:
        from repro.slicing.chopping import thin_chop, traditional_chop

        analyzed, name, origin = self._analyzed_program(params, budget)
        flavor = params.get("flavor", "thin")
        if flavor not in ("thin", "traditional"):
            raise QueryError("BadParams", f"unknown flavor: {flavor!r}")
        chopper = traditional_chop if flavor == "traditional" else thin_chop
        source_line = self._int_param(params, "source_line")
        sink_line = self._int_param(params, "sink_line")
        result = chopper(analyzed.compiled, analyzed.sdg, source_line, sink_line)
        payload = chop_payload(
            result,
            analyzed,
            program=name,
            source_line=source_line,
            sink_line=sink_line,
            flavor=flavor,
        )
        payload["origin"] = origin
        return payload

    def _method_stats_rpc(
        self, params: dict[str, Any], budget: Budget | None
    ) -> dict[str, Any]:
        if "source" in params or "program" in params:
            entry, name, origin = self._cache_entry(params, budget)
            payload = stats_payload_from_counts(
                entry.stats_counts(), program=name, timings=entry.timings
            )
            payload["origin"] = origin
            return payload
        return self.server_stats()

    def server_stats(self) -> dict[str, Any]:
        with self._stats_lock:
            methods = {
                name: stats.as_dict()
                for name, stats in sorted(self._method_stats.items())
            }
            requests_total = sum(s.count for s in self._method_stats.values())
        with self._pipeline_lock:
            pipeline = {
                key: dict(value) if isinstance(value, dict) else value
                for key, value in self._pipeline.items()
            }
        with self._load_lock:
            service = {
                "workers": self.workers,
                "busy": self._busy,
                "queued": self._queued,
                "max_queue": self.max_queue,
                "shed_total": self.shed_total,
                "cancelled_total": self.cancelled_total,
                "degraded_recomputes": self.degraded_recomputes,
                "timeout_s": self.timeout,
                "executor": self.executor,
            }
        service["quarantine"] = self.quarantine.stats()
        service["breaker"] = self.breaker.stats()
        if self.memory_limit_mb is not None:
            service["memory_limit_mb"] = self.memory_limit_mb
        if self.process_pool is not None:
            service["pool"] = self.process_pool.stats()
        return {
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.time() - self.started, 3),
            "requests_total": requests_total,
            "methods": methods,
            "cache": self.cache.stats(),
            "pipeline": pipeline,
            "service": service,
        }

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _resolve_source(params: dict[str, Any]) -> tuple[str, str]:
        """Resolve request params to ``(source_text, display_name)``."""
        source = params.get("source")
        name = params.get("filename", "<input>")
        if source is None:
            program = params.get("program")
            if not isinstance(program, str):
                raise QueryError(
                    "BadParams", "need 'source' text or a 'program' name"
                )
            from repro.suite.loader import load_source, program_names

            if program not in program_names():
                raise QueryError(
                    "UnknownProgram",
                    f"{program!r} is not a suite program "
                    f"(known: {', '.join(program_names())})",
                )
            source = load_source(program)
            name = f"{program}.mj"
        if not isinstance(source, str):
            raise QueryError("BadParams", "'source' must be a string")
        return source, name

    def _cache_entry(
        self, params: dict[str, Any], budget: Budget | None
    ) -> tuple[CacheEntry, str, str]:
        source, name = self._resolve_source(params)
        options = AnalyzeOptions(
            include_stdlib=bool(params.get("include_stdlib", True)),
            budget=budget,
            memory_limit_mb=self.memory_limit_mb,
        )
        # Poison gate: a fingerprint that has repeatedly killed workers
        # is answered immediately — no analysis, no worker dispatch, no
        # respawn — breaking the crash/respawn loop at the front door.
        fingerprint = cache_key(source, options)
        poisoned = self.quarantine.check(fingerprint)
        if poisoned is not None:
            raise QueryError("PoisonInput", poisoned)
        use_process = (
            self.process_pool is not None and self.breaker.allow_process()
        )
        try:
            entry, origin = self.cache.get_entry(
                source, name, options, executor_ok=use_process
            )
        except WorkerCrashed as exc:
            # Both guards observe the crash: the quarantine attributes
            # it to this input, the breaker to pool health overall.
            self.quarantine.record_failure(
                fingerprint, "WorkerCrashed", exc.message
            )
            self.breaker.record_crash()
            raise
        except ResourceExceeded as exc:
            # A resource kill poisons the input but does not trip the
            # breaker: the pool is healthy, the input is hungry.
            self.quarantine.record_failure(
                fingerprint, "ResourceExceeded", str(exc)
            )
            raise
        if use_process and origin == "analyzed":
            self.breaker.record_success()
        if origin in ("analyzed", "incremental") and entry.timings:
            with self._pipeline_lock:
                merge_timing_dicts(self._pipeline, entry.timings)
        return entry, name, origin

    def _analyzed_program(
        self, params: dict[str, Any], budget: Budget | None
    ) -> tuple[AnalyzedProgram, str, str]:
        """Materialized variant of :meth:`_cache_entry` for the rich
        methods (explain/why/chop) that walk the object graph."""
        entry, name, origin = self._cache_entry(params, budget)
        return entry.program(), name, origin

    @staticmethod
    def _flavor_param(params: dict[str, Any]) -> str:
        flavor = params.get("flavor", "thin")
        if flavor not in ("thin", "traditional"):
            raise QueryError("BadParams", f"unknown flavor: {flavor!r}")
        return flavor

    @staticmethod
    def _int_param(params: dict[str, Any], key: str) -> int:
        value = params.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            raise QueryError("BadParams", f"{key!r} must be an integer")
        return value

    @staticmethod
    def _opt_int_param(params: dict[str, Any], key: str, default: int) -> int:
        value = params.get(key, default)
        if not isinstance(value, int) or isinstance(value, bool):
            raise QueryError("BadParams", f"{key!r} must be an integer")
        return value

    def _record(
        self, method: str, latency_ms: float, ok: bool, timed_out: bool
    ) -> None:
        with self._stats_lock:
            stats = self._method_stats.setdefault(method, MethodStats())
            stats.record(latency_ms, ok, timed_out)
        logger.info(
            "%s",
            json.dumps(
                {
                    "event": "request",
                    "method": method,
                    "ok": ok,
                    "timed_out": timed_out,
                    "latency_ms": round(latency_ms, 3),
                },
                sort_keys=True,
            ),
        )

    def _scrub_loop(self) -> None:
        """Background scrubber: one pass at startup, then every
        ``scrub_interval_s``.  Scrub failures are logged, never fatal —
        a broken scrubber must not take serving down with it."""
        store = self.cache.store
        while not self._scrub_stop.is_set():
            try:
                summary = store.scrub()
                if summary["corrupt"] or summary["stale"]:
                    logger.warning("scrub: %s", json.dumps(summary))
            except Exception as exc:  # noqa: BLE001 - keep scrubbing
                logger.warning("scrub pass failed: %s", exc)
            if self._scrub_stop.wait(self.scrub_interval_s):
                break

    def close(self) -> None:
        self._scrub_stop.set()
        if self.replicator is not None:
            self.replicator.close()
        self._pool.shutdown(wait=False, cancel_futures=True)
        if self.process_pool is not None:
            self.process_pool.close()


# ----------------------------------------------------------------------
# Serving loops
# ----------------------------------------------------------------------


def _oversize_response() -> str:
    return encode_message(
        error_response(
            None, "Protocol", f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    )


def serve_stdio(
    server: SliceServer, in_stream: TextIO, out_stream: TextIO
) -> None:
    """Answer newline-delimited requests until EOF or shutdown."""
    while True:
        line = in_stream.readline(MAX_LINE_BYTES + 1)
        if not line:
            break
        if len(line) > MAX_LINE_BYTES and not line.endswith("\n"):
            # Oversized: reject without buffering, then discard the rest
            # of the line so framing recovers at the next newline.
            while True:
                rest = in_stream.readline(MAX_LINE_BYTES)
                if not rest or rest.endswith("\n"):
                    break
            out_stream.write(_oversize_response() + "\n")
            out_stream.flush()
            continue
        if not line.strip():
            continue
        out_stream.write(server.handle_line(line) + "\n")
        out_stream.flush()
        if server.shutting_down:
            break
    server.close()


class _LineHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        slice_server: SliceServer = self.server.slice_server  # type: ignore[attr-defined]
        plan = slice_server.fault_plan
        try:
            while True:
                raw = self.rfile.readline(MAX_LINE_BYTES + 1)
                if not raw:
                    break
                if len(raw) > MAX_LINE_BYTES and not raw.endswith(b"\n"):
                    # Oversized: reject without buffering, then discard
                    # the rest of the line so framing recovers at the
                    # next newline — the connection stays usable, same
                    # as the stdio loop.
                    while True:
                        rest = self.rfile.readline(MAX_LINE_BYTES)
                        if not rest or rest.endswith(b"\n"):
                            break
                    self.wfile.write(
                        (_oversize_response() + "\n").encode("utf-8")
                    )
                    self.wfile.flush()
                    continue
                line = raw.decode("utf-8", errors="replace")
                if not line.strip():
                    continue
                response = slice_server.handle_line(
                    line, client_alive=self._client_alive
                )
                if plan is not None and plan.drop_connection():
                    # Injected fault: the connection dies before the
                    # response is written.
                    self.connection.close()
                    return
                self.wfile.write((response + "\n").encode("utf-8"))
                self.wfile.flush()
                if slice_server.shutting_down:
                    # shutdown() must not run on this handler thread.
                    threading.Thread(
                        target=self.server.shutdown, daemon=True
                    ).start()
                    break
        except OSError:
            # Client vanished mid-write; per-request cancellation has
            # already been signalled via client_alive.
            pass

    def _client_alive(self) -> bool:
        """Peek the socket without consuming data: a closed peer reads
        as EOF, a healthy (possibly pipelining) peer as data or EAGAIN."""
        try:
            return (
                self.connection.recv(1, socket.MSG_PEEK | socket.MSG_DONTWAIT)
                != b""
            )
        except (BlockingIOError, InterruptedError):
            return True
        except OSError:
            return False


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, slice_server: SliceServer) -> None:
        super().__init__(address, _LineHandler)
        self.slice_server = slice_server


def start_tcp_server(
    server: SliceServer, host: str = "127.0.0.1", port: int = 0
) -> tuple[_TCPServer, threading.Thread]:
    """Bind and serve on a background thread; returns (tcp_server, thread).

    ``port=0`` binds an ephemeral port — read it back from
    ``tcp_server.server_address``.
    """
    tcp_server = _TCPServer((host, port), server)
    thread = threading.Thread(
        target=tcp_server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return tcp_server, thread


def serve_tcp(server: SliceServer, host: str = "127.0.0.1", port: int = 7341) -> None:
    """Serve until a ``shutdown`` request (or KeyboardInterrupt)."""
    tcp_server, thread = start_tcp_server(server, host, port)
    bound_host, bound_port = tcp_server.server_address[:2]
    logger.info(
        "%s",
        json.dumps(
            {"event": "listening", "host": bound_host, "port": bound_port},
            sort_keys=True,
        ),
    )
    try:
        thread.join()
    except KeyboardInterrupt:
        tcp_server.shutdown()
    finally:
        tcp_server.server_close()
        server.close()
