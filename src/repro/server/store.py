"""On-disk content-addressed store of flat analysis artifacts.

Each artifact lives at ``<root>/<key[:2]>/<key>.art`` where ``key`` is
the cache key from :func:`repro.server.cache.cache_key`.  Since format
3 the file *is* the flat artifact (:mod:`repro.artifact`) — raw bytes
straight from a worker, no envelope — and :meth:`load_view` serves it
as a read-only ``mmap``-backed :class:`~repro.artifact.ArtifactView`:
a warm-disk hit costs one map plus a header parse, and every process
mapping the same file (all shards behind the router share one store
root) shares one page-cache copy of it.

Format-2 entries — pickle envelopes at ``<key>.pkl`` from older
deployments — are still honored: :meth:`load_view` falls back to the
legacy path, re-encodes the artifact flat, writes the ``.art`` file,
and deletes the pickle (lazy migration; counted in ``stats.migrated``).

Bad files are never propagated and never fatal, but *stale* and
*corrupt* are handled differently.  Stale files (written by another
package version, filed under the wrong key) are legitimate encodings
nobody wants anymore: they are discarded and recomputed.  Corrupt
files (digest mismatch, truncated section table, garbage bytes,
persistently unreadable) are evidence of a disk or deployment problem:
they are moved to ``<root>/corrupt/`` for post-mortem instead of being
silently unlinked, counted in ``stats.quarantined``, and the entry is
recomputed.  Format-1 flat artifacts (no digests) are lazily
re-encoded to format 2 on first read, exactly like the pickle path.

Writes go through a temp file + ``fsync`` + :func:`os.replace` so a
crash mid-save leaves either the old artifact or none, but never a
torn file at the final path — and the bytes named by the rename are
actually on the platter when the rename lands.

:meth:`scrub` deep-verifies every stored artifact (digests plus
structural bounds), quarantining what fails; the daemon runs it at
startup and on a periodic timer.

Eviction semantics worth knowing: :meth:`prune` unlinks backing files
while ``mmap``-backed views of them may still be held by the in-memory
LRU.  That is safe on POSIX — the mapping keeps the inode alive, so an
LRU-held :class:`~repro.artifact.ArtifactView` keeps serving correct
bytes after its directory entry is gone; the disk space is reclaimed
when the last mapping closes.  The same applies to quarantine moves:
a live view follows the old inode, not the path.
"""

from __future__ import annotations

import logging
import os
import pickle
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro import AnalyzedProgram, __version__
from repro.artifact import (
    ARTIFACT_FORMAT,
    ArtifactError,
    ArtifactFormatError,
    ArtifactStaleError,
    ArtifactView,
    encode_artifact,
    migrate_flat_v1,
)
from repro.server.faults import FaultPlan

#: Store format: 3 = raw flat artifacts (``.art``); 2 = legacy pickle
#: envelopes (``.pkl``), still readable and lazily migrated.
FORMAT_VERSION = 3
LEGACY_FORMAT_VERSION = 2

logger = logging.getLogger("repro.server")


@dataclass
class StoreStats:
    """Counters for the disk tier (all monotonically increasing)."""

    hits: int = 0
    misses: int = 0
    discarded: int = 0
    saves: int = 0
    save_errors: int = 0
    evicted: int = 0
    tmp_swept: int = 0
    #: Legacy entries (format-2 pickles and format-1 flat artifacts)
    #: re-encoded to the current format on first warm read.
    migrated: int = 0
    #: Corruption detected (serve-time load or scrub), whatever became
    #: of the file afterwards.
    corrupt_found: int = 0
    #: Corrupt files moved to ``corrupt/`` for post-mortem.
    quarantined: int = 0
    #: Scrub passes completed, and artifacts that passed deep verify.
    scrubs: int = 0
    scrubbed: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "discarded": self.discarded,
            "saves": self.saves,
            "save_errors": self.save_errors,
            "evicted": self.evicted,
            "tmp_swept": self.tmp_swept,
            "migrated": self.migrated,
            "corrupt_found": self.corrupt_found,
            "quarantined": self.quarantined,
            "scrubs": self.scrubs,
            "scrubbed": self.scrubbed,
        }


@dataclass
class DiskStore:
    """Content-addressed flat-artifact store under one root directory.

    ``max_bytes`` gives the store a size budget: after every save the
    store prunes oldest-mtime artifacts until it fits (see
    :meth:`prune`).  ``fault_plan`` is the test-only failure hook — see
    :mod:`repro.server.faults`.
    """

    root: Path
    stats: StoreStats = field(default_factory=StoreStats)
    max_bytes: int | None = None
    fault_plan: FaultPlan | None = None
    #: Temp files older than this are orphans (a writer that died
    #: between open and ``os.replace``) and get swept; young ones may
    #: belong to a concurrent in-flight save and are left alone.
    tmp_max_age_s: float = 60.0
    #: Verification level every load pays (see
    #: :data:`repro.artifact.VERIFY_LEVELS`).  ``header`` — one crc32
    #: pass over the mapping — is the serving default; ``deep`` is the
    #: scrubber's level; ``none`` trusts the bytes (benchmark baseline).
    verify: str = "header"
    #: Consecutive :meth:`load_view` read failures (EIO and friends)
    #: before an unreadable ``.art`` file is quarantined like a corrupt
    #: one instead of counting a miss on every request forever.
    read_failure_limit: int = 3
    #: Quarantine keeps at most this many files; oldest beyond the cap
    #: are deleted so a corruption storm cannot fill the disk twice.
    quarantine_max_files: int = 64
    #: Replication hook: called as ``on_save(key, payload)`` after a
    #: successful :meth:`save_bytes` unless the save was flagged
    #: ``replicate=False`` (a replica-received copy — re-fanning those
    #: out would loop writes around the ring forever).  Installed by
    #: :class:`repro.server.replication.Replicator`; must never raise
    #: into the save path (the hook is wrapped defensively anyway).
    on_save: Any = None

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._read_failures: dict[str, int] = {}
        self.last_scrub: dict[str, Any] | None = None
        self.sweep_tmp()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.art"

    def legacy_path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    @property
    def corrupt_dir(self) -> Path:
        return self.root / "corrupt"

    def load_view(self, key: str, verify: str | None = None) -> ArtifactView | None:
        """Map the stored artifact read-only, or None (missing / stale /
        corrupt).  This is the warm path: nothing is unpickled.

        ``verify`` overrides the store's configured level for this one
        load (the store benchmark measures the levels against each
        other); corrupt bytes are quarantined, stale ones discarded.
        """
        path = self.path_for(key)
        if self.fault_plan is not None:
            self.fault_plan.on_store_load(path)
        try:
            view = ArtifactView.open(
                path, verify=self.verify if verify is None else verify
            )
        except FileNotFoundError:
            self._read_failures.pop(str(path), None)
            return self._load_legacy(key)
        except ArtifactFormatError as exc:
            if exc.found < ARTIFACT_FORMAT:
                return self._migrate_flat(key, path)
            self.stats.discarded += 1
            logger.warning("discarding stale artifact %s: %s", path, exc)
            path.unlink(missing_ok=True)
            return None
        except ArtifactError as exc:
            self.stats.corrupt_found += 1
            self._quarantine(path, str(exc))
            return None
        except OSError as exc:
            failures = self._read_failures.get(str(path), 0) + 1
            if failures >= self.read_failure_limit:
                self._read_failures.pop(str(path), None)
                self.stats.corrupt_found += 1
                self._quarantine(
                    path, f"unreadable after {failures} attempts: {exc}"
                )
            else:
                self._read_failures[str(path)] = failures
                self.stats.misses += 1
                logger.warning("store read failed for %s: %s", path, exc)
            return None
        self._read_failures.pop(str(path), None)
        try:
            view.validate(key)
        except ArtifactError as exc:
            view.close()
            self.stats.discarded += 1
            logger.warning("discarding stale artifact %s: %s", path, exc)
            path.unlink(missing_ok=True)
            return None
        self.stats.hits += 1
        return view

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt file to ``corrupt/`` for post-mortem.

        The move is a same-filesystem :func:`os.replace`, so any
        LRU-held mmap of the old path keeps serving its (old, intact)
        inode.  A ``.reason`` sidecar records why the file was pulled.
        Never raises: if even the move fails the file is unlinked so it
        cannot be served again.
        """
        logger.warning("quarantining corrupt artifact %s: %s", path, reason)
        target = self.corrupt_dir / path.name
        try:
            self.corrupt_dir.mkdir(parents=True, exist_ok=True)
            if target.exists():
                target = self.corrupt_dir / f"{path.stem}.{os.getpid()}{path.suffix}"
            os.replace(path, target)
            self.stats.quarantined += 1
        except OSError as exc:
            logger.warning("quarantine move failed for %s: %s", path, exc)
            path.unlink(missing_ok=True)
            return
        try:
            target.with_suffix(target.suffix + ".reason").write_text(
                reason + "\n", encoding="utf-8"
            )
        except OSError:
            pass
        self._trim_quarantine()

    def _trim_quarantine(self) -> None:
        try:
            entries = sorted(
                (p for p in self.corrupt_dir.iterdir() if p.suffix == ".art"),
                key=lambda p: p.stat().st_mtime,
            )
        except OSError:
            return
        for stale in entries[: max(0, len(entries) - self.quarantine_max_files)]:
            stale.unlink(missing_ok=True)
            stale.with_suffix(stale.suffix + ".reason").unlink(missing_ok=True)

    def _migrate_flat(self, key: str, path: Path) -> ArtifactView | None:
        """Format-1 flat fallback: re-encode with digests, in place.

        Mirrors :meth:`_load_legacy` one format later — the store
        upgrades itself one warm read at a time, no offline rewrite."""
        try:
            blob = path.read_bytes()
        except OSError as exc:
            self.stats.misses += 1
            logger.warning("store read failed for %s: %s", path, exc)
            return None
        try:
            payload = migrate_flat_v1(blob, key)
        except ArtifactStaleError as exc:
            self.stats.discarded += 1
            logger.warning("discarding stale artifact %s: %s", path, exc)
            path.unlink(missing_ok=True)
            return None
        except ArtifactError as exc:
            self.stats.corrupt_found += 1
            self._quarantine(path, f"format-1 migration failed: {exc}")
            return None
        self.save_bytes(key, payload)
        self.stats.migrated += 1
        self.stats.hits += 1
        return ArtifactView.from_buffer(payload)

    def _load_legacy(self, key: str) -> ArtifactView | None:
        """Format-2 fallback: unpickle the envelope once, re-encode it
        flat, persist the ``.art`` file, and retire the pickle."""
        path = self.legacy_path_for(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError as exc:
            self.stats.misses += 1
            logger.warning("store read failed for %s: %s", path, exc)
            return None
        try:
            envelope: Any = pickle.loads(blob)
            if (
                not isinstance(envelope, dict)
                or envelope.get("format") != LEGACY_FORMAT_VERSION
                or envelope.get("version") != __version__
                or envelope.get("key") != key
            ):
                raise ValueError("stale or mismatched envelope")
            legacy_payload = envelope["payload"]
            if not isinstance(legacy_payload, bytes):
                raise ValueError("unexpected payload type")
            analyzed = pickle.loads(legacy_payload)
            if not isinstance(analyzed, AnalyzedProgram):
                raise ValueError("unexpected artifact type")
            payload = encode_artifact(analyzed, key=key)
        except Exception as exc:
            self.stats.discarded += 1
            logger.warning("discarding bad artifact %s: %s", path, exc)
            path.unlink(missing_ok=True)
            return None
        self.save_bytes(key, payload)
        path.unlink(missing_ok=True)
        self.stats.migrated += 1
        self.stats.hits += 1
        view = ArtifactView.from_buffer(payload)
        # Migration already paid the unpickle; keep the rich program so
        # a follow-up to_analyzed_program() is free.
        view._program = analyzed
        return view

    def load_payload(self, key: str) -> bytes | None:
        """Raw validated artifact bytes for ``key``, or None.

        Used by the incremental fragment store to seed an edit session
        from a previously persisted artifact: the session needs owned
        bytes it can slice for the pure-line-shift rewrite, not a
        long-lived mapping.  Integrity failures just report a miss —
        the caller is on a best-effort reuse path and the regular
        :meth:`load_view` flow owns quarantine policy.
        """
        path = self.path_for(key)
        try:
            payload = path.read_bytes()
        except OSError:
            return None
        try:
            view = ArtifactView.from_buffer(payload, verify="header")
            view.validate(key)
        except ArtifactError:
            return None
        view.close()
        return payload

    def load(self, key: str) -> AnalyzedProgram | None:
        """Materialized variant of :meth:`load_view` for callers that
        need the rich object graph (CLI batch mode, tests)."""
        view = self.load_view(key)
        if view is None:
            return None
        try:
            return view.to_analyzed_program()
        except Exception as exc:
            self.stats.corrupt_found += 1
            view.close()
            self._quarantine(
                self.path_for(key), f"unmaterializable artifact: {exc}"
            )
            return None

    def save(self, key: str, analyzed: AnalyzedProgram) -> None:
        """Serialize and persist one artifact (thread-executor path)."""
        try:
            payload = encode_artifact(analyzed, key=key)
        except Exception as exc:
            self.stats.save_errors += 1
            logger.warning("artifact serialization failed for %s: %s", key, exc)
            return
        self.save_bytes(key, payload)

    def save_bytes(self, key: str, payload: bytes, replicate: bool = True) -> None:
        """Atomically persist flat artifact bytes.

        This is the *single* write path: :meth:`save` encodes and
        delegates here, and the process executor hands worker-produced
        bytes straight through — so torn-write fault injection and the
        atomic tmp+replace discipline cover both executors identically.
        The temp file is fsync'd before the rename (and the directory
        after it, best-effort) so the artifact the rename names is
        durable, not sitting in a write-back cache a power cut would
        tear.  Failures are logged, not raised.

        ``replicate=False`` marks a copy received *from* a peer: it is
        persisted identically but the :attr:`on_save` fan-out hook is
        suppressed, so replicated writes terminate instead of orbiting
        the ring.
        """
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        if self.fault_plan is not None and self.fault_plan.torn_write():
            # Injected fault: a truncated artifact lands at the *final*
            # path, as if the process died mid-write with no atomic
            # replace.  load_view() must detect it (truncated section
            # table / digest mismatch), quarantine it, and recompute.
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(payload[: max(1, len(payload) // 3)])
            self.stats.saves += 1
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            self.stats.saves += 1
        except Exception as exc:
            self.stats.save_errors += 1
            logger.warning("store save failed for %s: %s", path, exc)
            tmp.unlink(missing_ok=True)
            return
        try:
            dir_fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass
        if self.max_bytes is not None:
            self.prune(self.max_bytes)
        if replicate and self.on_save is not None:
            try:
                self.on_save(key, payload)
            except Exception as exc:
                logger.warning("replication hook failed for %s: %s", key, exc)

    def keys(self) -> list[str]:
        """All flat-artifact keys currently on disk (sorted).

        The anti-entropy repair pass walks this to offer each locally
        held artifact to the peers that should also hold it."""
        found: list[str] = []
        for path in self.root.glob("*/*.art"):
            if path.parent.name == "corrupt":
                continue
            found.append(path.stem)
        return sorted(found)

    def write_legacy_pickle(self, key: str, analyzed: AnalyzedProgram) -> None:
        """Write a format-2 pickle envelope at the legacy path.

        Exists for the migration tests and the flat-vs-pickle store
        benchmark; production saves always go flat."""
        path = self.legacy_path_for(key)
        envelope = {
            "format": LEGACY_FORMAT_VERSION,
            "version": __version__,
            "key": key,
            "payload": pickle.dumps(
                replace(analyzed, timings=None),
                protocol=pickle.HIGHEST_PROTOCOL,
            ),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    def scrub(self) -> dict[str, Any]:
        """Deep-verify every stored artifact; quarantine what fails.

        Walks all ``.art`` files, re-checking the whole-file digest,
        every per-section digest, structural bounds, and the package
        version/key stamp.  Corrupt files move to ``corrupt/``; stale
        files are discarded; format-1 files are left for lazy per-read
        migration.  Returns (and records in :attr:`last_scrub`) a
        summary dict.  The daemon runs this at startup and on a timer;
        it is safe concurrently with serving — a live mmap follows its
        inode, not the path the scrubber moves.
        """
        self.stats.scrubs += 1
        self.sweep_tmp()
        clean = corrupt = stale = legacy = 0
        for path in sorted(self.root.glob("*/*.art")):
            if path.parent.name == "corrupt":
                continue
            key = path.stem
            try:
                view = ArtifactView.open(path, verify="deep")
            except FileNotFoundError:
                continue
            except ArtifactFormatError as exc:
                if exc.found < ARTIFACT_FORMAT:
                    legacy += 1
                    continue
                self.stats.discarded += 1
                stale += 1
                path.unlink(missing_ok=True)
                continue
            except (ArtifactError, OSError) as exc:
                self.stats.corrupt_found += 1
                corrupt += 1
                self._quarantine(path, f"scrub: {exc}")
                continue
            try:
                view.validate(key)
            except ArtifactError as exc:
                self.stats.discarded += 1
                stale += 1
                logger.warning("scrub discarding stale %s: %s", path, exc)
                path.unlink(missing_ok=True)
            else:
                clean += 1
            finally:
                view.close()
        self.stats.scrubbed += clean
        summary = {
            "at": time.time(),
            "clean": clean,
            "corrupt": corrupt,
            "stale": stale,
            "legacy": legacy,
        }
        self.last_scrub = summary
        return summary

    def prune(self, max_bytes: int) -> int:
        """Evict oldest-mtime artifacts until the store fits ``max_bytes``.

        Returns the total size (bytes) remaining.  Eviction order is
        modification time, so the most recently saved artifacts survive;
        both flat and not-yet-migrated legacy entries count against the
        budget; a concurrently vanished file is skipped, never fatal.

        Pruning unlinks *paths*, not mappings: an ``ArtifactView`` the
        in-memory LRU still holds keeps its mmap — and therefore the
        inode and its intact bytes — alive until the view closes, so a
        pruned-but-cached entry keeps serving correct slices (POSIX
        unlink semantics; regression-tested in tests/test_integrity.py).
        """
        self.sweep_tmp()
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for pattern in ("*/*.art", "*/*.pkl"):
            for path in self.root.glob(pattern):
                if path.parent.name == "corrupt":
                    continue
                try:
                    info = path.stat()
                except OSError:
                    continue
                entries.append((info.st_mtime, info.st_size, path))
                total += info.st_size
        entries.sort()
        for _mtime, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.stats.evicted += 1
        return total

    def sweep_tmp(self) -> int:
        """Delete orphaned ``*.tmp.<pid>`` files left by dead writers.

        A save that dies between opening its temp file and the atomic
        ``os.replace`` leaks the temp file forever — it matches no
        artifact glob, so neither :meth:`load_view` nor :meth:`prune`
        would ever reclaim it.  Runs at store open and before every
        prune; files younger than ``tmp_max_age_s`` are spared because
        a live sibling process may still be mid-save.  Returns how many
        files this call removed.
        """
        cutoff = time.time() - self.tmp_max_age_s
        swept = 0
        for tmp in self.root.glob("*/*.tmp.*"):
            try:
                if tmp.stat().st_mtime > cutoff:
                    continue
                tmp.unlink()
            except OSError:
                continue
            swept += 1
            logger.warning("swept orphaned temp file %s", tmp)
        self.stats.tmp_swept += swept
        return swept
