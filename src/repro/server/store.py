"""On-disk content-addressed store of flat analysis artifacts.

Each artifact lives at ``<root>/<key[:2]>/<key>.art`` where ``key`` is
the cache key from :func:`repro.server.cache.cache_key`.  Since format
3 the file *is* the flat artifact (:mod:`repro.artifact`) — raw bytes
straight from a worker, no envelope — and :meth:`load_view` serves it
as a read-only ``mmap``-backed :class:`~repro.artifact.ArtifactView`:
a warm-disk hit costs one map plus a header parse, and every process
mapping the same file (all shards behind the router share one store
root) shares one page-cache copy of it.

Format-2 entries — pickle envelopes at ``<key>.pkl`` from older
deployments — are still honored: :meth:`load_view` falls back to the
legacy path, re-encodes the artifact flat, writes the ``.art`` file,
and deletes the pickle (lazy migration; counted in ``stats.migrated``).

A stale or corrupted file — a truncated write, an artifact from an
incompatible code version, a hash collision in a hand-edited store —
is *discarded and recomputed*, never propagated and never fatal.
Writes go through a temp file + :func:`os.replace` so a crash mid-save
leaves either the old artifact or none, but never a torn file at the
final path.
"""

from __future__ import annotations

import logging
import os
import pickle
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro import AnalyzedProgram, __version__
from repro.artifact import ArtifactError, ArtifactView, encode_artifact
from repro.server.faults import FaultPlan

#: Store format: 3 = raw flat artifacts (``.art``); 2 = legacy pickle
#: envelopes (``.pkl``), still readable and lazily migrated.
FORMAT_VERSION = 3
LEGACY_FORMAT_VERSION = 2

logger = logging.getLogger("repro.server")


@dataclass
class StoreStats:
    """Counters for the disk tier (all monotonically increasing)."""

    hits: int = 0
    misses: int = 0
    discarded: int = 0
    saves: int = 0
    save_errors: int = 0
    evicted: int = 0
    tmp_swept: int = 0
    #: Legacy pickle entries re-encoded flat on first warm read.
    migrated: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "discarded": self.discarded,
            "saves": self.saves,
            "save_errors": self.save_errors,
            "evicted": self.evicted,
            "tmp_swept": self.tmp_swept,
            "migrated": self.migrated,
        }


@dataclass
class DiskStore:
    """Content-addressed flat-artifact store under one root directory.

    ``max_bytes`` gives the store a size budget: after every save the
    store prunes oldest-mtime artifacts until it fits (see
    :meth:`prune`).  ``fault_plan`` is the test-only failure hook — see
    :mod:`repro.server.faults`.
    """

    root: Path
    stats: StoreStats = field(default_factory=StoreStats)
    max_bytes: int | None = None
    fault_plan: FaultPlan | None = None
    #: Temp files older than this are orphans (a writer that died
    #: between open and ``os.replace``) and get swept; young ones may
    #: belong to a concurrent in-flight save and are left alone.
    tmp_max_age_s: float = 60.0

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.sweep_tmp()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.art"

    def legacy_path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def load_view(self, key: str) -> ArtifactView | None:
        """Map the stored artifact read-only, or None (missing / stale /
        corrupt).  This is the warm path: nothing is unpickled."""
        path = self.path_for(key)
        try:
            view = ArtifactView.open(path)
        except FileNotFoundError:
            return self._load_legacy(key)
        except OSError as exc:
            self.stats.misses += 1
            logger.warning("store read failed for %s: %s", path, exc)
            return None
        except ArtifactError as exc:
            self.stats.discarded += 1
            logger.warning("discarding bad artifact %s: %s", path, exc)
            path.unlink(missing_ok=True)
            return None
        try:
            view.validate(key)
        except ArtifactError as exc:
            view.close()
            self.stats.discarded += 1
            logger.warning("discarding bad artifact %s: %s", path, exc)
            path.unlink(missing_ok=True)
            return None
        self.stats.hits += 1
        return view

    def _load_legacy(self, key: str) -> ArtifactView | None:
        """Format-2 fallback: unpickle the envelope once, re-encode it
        flat, persist the ``.art`` file, and retire the pickle."""
        path = self.legacy_path_for(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError as exc:
            self.stats.misses += 1
            logger.warning("store read failed for %s: %s", path, exc)
            return None
        try:
            envelope: Any = pickle.loads(blob)
            if (
                not isinstance(envelope, dict)
                or envelope.get("format") != LEGACY_FORMAT_VERSION
                or envelope.get("version") != __version__
                or envelope.get("key") != key
            ):
                raise ValueError("stale or mismatched envelope")
            legacy_payload = envelope["payload"]
            if not isinstance(legacy_payload, bytes):
                raise ValueError("unexpected payload type")
            analyzed = pickle.loads(legacy_payload)
            if not isinstance(analyzed, AnalyzedProgram):
                raise ValueError("unexpected artifact type")
            payload = encode_artifact(analyzed, key=key)
        except Exception as exc:
            self.stats.discarded += 1
            logger.warning("discarding bad artifact %s: %s", path, exc)
            path.unlink(missing_ok=True)
            return None
        self.save_bytes(key, payload)
        path.unlink(missing_ok=True)
        self.stats.migrated += 1
        self.stats.hits += 1
        view = ArtifactView.from_buffer(payload)
        # Migration already paid the unpickle; keep the rich program so
        # a follow-up to_analyzed_program() is free.
        view._program = analyzed
        return view

    def load(self, key: str) -> AnalyzedProgram | None:
        """Materialized variant of :meth:`load_view` for callers that
        need the rich object graph (CLI batch mode, tests)."""
        view = self.load_view(key)
        if view is None:
            return None
        try:
            return view.to_analyzed_program()
        except Exception as exc:
            self.stats.discarded += 1
            logger.warning(
                "discarding unmaterializable artifact %s: %s", key, exc
            )
            view.close()
            self.path_for(key).unlink(missing_ok=True)
            return None

    def save(self, key: str, analyzed: AnalyzedProgram) -> None:
        """Serialize and persist one artifact (thread-executor path)."""
        try:
            payload = encode_artifact(analyzed, key=key)
        except Exception as exc:
            self.stats.save_errors += 1
            logger.warning("artifact serialization failed for %s: %s", key, exc)
            return
        self.save_bytes(key, payload)

    def save_bytes(self, key: str, payload: bytes) -> None:
        """Atomically persist flat artifact bytes.

        This is the *single* write path: :meth:`save` encodes and
        delegates here, and the process executor hands worker-produced
        bytes straight through — so torn-write fault injection and the
        atomic tmp+replace discipline cover both executors identically.
        Failures are logged, not raised.
        """
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        if self.fault_plan is not None and self.fault_plan.torn_write():
            # Injected fault: a truncated artifact lands at the *final*
            # path, as if the process died mid-write with no atomic
            # replace.  load_view() must discard it (the section table
            # overruns the mapping) and the pipeline must recompute.
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(payload[: max(1, len(payload) // 3)])
            self.stats.saves += 1
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
            self.stats.saves += 1
        except Exception as exc:
            self.stats.save_errors += 1
            logger.warning("store save failed for %s: %s", path, exc)
            tmp.unlink(missing_ok=True)
            return
        if self.max_bytes is not None:
            self.prune(self.max_bytes)

    def write_legacy_pickle(self, key: str, analyzed: AnalyzedProgram) -> None:
        """Write a format-2 pickle envelope at the legacy path.

        Exists for the migration tests and the flat-vs-pickle store
        benchmark; production saves always go flat."""
        path = self.legacy_path_for(key)
        envelope = {
            "format": LEGACY_FORMAT_VERSION,
            "version": __version__,
            "key": key,
            "payload": pickle.dumps(
                replace(analyzed, timings=None),
                protocol=pickle.HIGHEST_PROTOCOL,
            ),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    def prune(self, max_bytes: int) -> int:
        """Evict oldest-mtime artifacts until the store fits ``max_bytes``.

        Returns the total size (bytes) remaining.  Eviction order is
        modification time, so the most recently saved artifacts survive;
        both flat and not-yet-migrated legacy entries count against the
        budget; a concurrently vanished file is skipped, never fatal.
        """
        self.sweep_tmp()
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for pattern in ("*/*.art", "*/*.pkl"):
            for path in self.root.glob(pattern):
                try:
                    info = path.stat()
                except OSError:
                    continue
                entries.append((info.st_mtime, info.st_size, path))
                total += info.st_size
        entries.sort()
        for _mtime, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.stats.evicted += 1
        return total

    def sweep_tmp(self) -> int:
        """Delete orphaned ``*.tmp.<pid>`` files left by dead writers.

        A save that dies between opening its temp file and the atomic
        ``os.replace`` leaks the temp file forever — it matches no
        artifact glob, so neither :meth:`load_view` nor :meth:`prune`
        would ever reclaim it.  Runs at store open and before every
        prune; files younger than ``tmp_max_age_s`` are spared because
        a live sibling process may still be mid-save.  Returns how many
        files this call removed.
        """
        cutoff = time.time() - self.tmp_max_age_s
        swept = 0
        for tmp in self.root.glob("*/*.tmp.*"):
            try:
                if tmp.stat().st_mtime > cutoff:
                    continue
                tmp.unlink()
            except OSError:
                continue
            swept += 1
            logger.warning("swept orphaned temp file %s", tmp)
        self.stats.tmp_swept += swept
        return swept
