"""Persistent slice server: a long-lived analysis daemon.

The CLI reruns the whole pipeline (parse → type-check → SSA →
points-to → SDG) on every invocation, but the SDG is exactly the
artifact worth amortizing across queries — the paper's WALA tool
builds it once and answers many slice requests against it.  This
package turns the library into a service:

* :mod:`repro.server.protocol` — line-delimited JSON requests and
  responses, plus the result serializers shared with ``--format json``
  in the CLI;
* :mod:`repro.server.store` — an on-disk content-addressed store of
  pickled :class:`repro.AnalyzedProgram` artifacts, so a restarted
  daemon answers warm queries without re-analysis;
* :mod:`repro.server.cache` — the two-tier cache (in-memory LRU over
  the disk store) keyed by ``(sha256(source), options)``;
* :mod:`repro.server.daemon` — the request dispatcher with per-request
  timeouts, error isolation, and latency/hit-rate observability, and
  the stdio/TCP serving loops;
* :mod:`repro.server.client` — a resilient Python client that spawns a
  stdio daemon or connects over TCP, with per-request deadlines and
  jittered-backoff retries for ``Overloaded``/``Disconnected``;
* :mod:`repro.server.faults` — the fault-injection hooks the chaos
  tests use to prove the daemon survives slow analyses, worker
  crashes, torn disk writes, and dropped connections;
* :mod:`repro.server.ring` / :mod:`repro.server.shardpool` /
  :mod:`repro.server.router` — the sharded serving tier: a consistent
  hash ring over ``source_fingerprint``, shard lifecycle (spawn,
  probe, drain), and an asyncio frontend that speaks the same protocol
  while routing each request to the shard whose cache owns it.

Quickstart::

    from repro.server import SliceClient

    with SliceClient.spawn() as client:
        result = client.slice(source_text, line=26)
        print(result["source_view"])
"""

from __future__ import annotations

from repro.server.cache import AnalysisCache, cache_key
from repro.server.client import ServerError, SliceClient
from repro.server.daemon import SliceServer, serve_stdio, serve_tcp, start_tcp_server
from repro.server.faults import FaultPlan, InjectedFault
from repro.server.protocol import PROTOCOL_VERSION, ProtocolError
from repro.server.ring import HashRing
from repro.server.router import Router, start_router
from repro.server.shardpool import Shard, ShardPool, ShardSpawnError
from repro.server.store import DiskStore

__all__ = [
    "AnalysisCache",
    "DiskStore",
    "FaultPlan",
    "HashRing",
    "InjectedFault",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Router",
    "ServerError",
    "Shard",
    "ShardPool",
    "ShardSpawnError",
    "SliceClient",
    "SliceServer",
    "cache_key",
    "serve_stdio",
    "serve_tcp",
    "start_tcp_server",
    "start_router",
]
