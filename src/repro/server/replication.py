"""Ring replication of flat artifacts between shard daemons.

PR 10 retires the tier's single point of failure: instead of every
shard writing into one shared :class:`~repro.server.store.DiskStore`,
each shard owns a private store and the :class:`Replicator` copies
every artifact it writes to the next ``r - 1`` distinct shards
clockwise on the same consistent-hash ring the router routes by
(:meth:`repro.server.ring.HashRing.replicas_for`).  Because the
replica set is a prefix of the router's failover order, a request that
fails over lands — by construction — on a shard that already holds a
warm copy of the artifact it needs.

Three mechanisms, weakest first:

* **Write fan-out** (:meth:`Replicator.artifact_saved`, installed as
  the store's ``on_save`` hook): fire-and-forget.  A background thread
  drains a bounded queue and pushes ``put_artifact`` to each replica
  peer; a dead peer just drops the copy (counted, never raised) — the
  repair pass owns eventual convergence.
* **Read-through fetch** (:meth:`Replicator.fetch`, installed as the
  cache's ``replica_fetch`` hook): on a local memory+disk miss, ask
  the other replica holders via ``get_artifact`` before recomputing.
  Fetched bytes are validated against the key and persisted locally
  (read repair), so a shard that lost its disk re-warms one request at
  a time instead of re-analyzing.
* **Anti-entropy repair** (:meth:`Replicator.repair`): walk the local
  store, and for every key this shard is a designated holder of, offer
  the key list to the other holders (``sync_offer``) and push the
  copies they are missing.  The shard pool's health-probe thread
  triggers this on a cadence, so a peer that was down during fan-out
  converges within a repair interval of coming back.

Replication traffic rides the ordinary JSON-lines protocol (payloads
base64-wrapped) and is answered on the daemon's introspection path —
no worker dispatch, so a saturated pool cannot starve convergence.
Received copies are digest-validated against their key before landing
on disk and saved with ``replicate=False``: a copy terminates at its
holder instead of orbiting the ring.
"""

from __future__ import annotations

import base64
import logging
import queue
import threading
from typing import TYPE_CHECKING, Any

from repro.artifact import ArtifactError, ArtifactView
from repro.server.client import ServerError, SliceClient
from repro.server.ring import DEFAULT_REPLICAS, HashRing

if TYPE_CHECKING:
    from repro.server.store import DiskStore

logger = logging.getLogger("repro.server")

#: Total copies of each artifact (owner included) when replication is
#: on.  2 survives any single shard/store loss, which is the tier's
#: stated failure budget.
DEFAULT_REPLICATION_FACTOR = 2

#: Bounded fan-out backlog: beyond this, new copies are dropped (and
#: counted) rather than ballooning memory — repair re-converges them.
_QUEUE_CAP = 256

#: Peer RPC timeout.  Replication is bulk background traffic; a slow
#: peer should cost seconds, not the serving default of 30.
_PEER_TIMEOUT_S = 10.0


def encode_payload(payload: bytes) -> str:
    return base64.b64encode(payload).decode("ascii")


def decode_payload(encoded: Any) -> bytes:
    if not isinstance(encoded, str):
        raise ValueError("payload must be a base64 string")
    return base64.b64decode(encoded.encode("ascii"), validate=True)


def validate_artifact(key: str, payload: bytes) -> None:
    """Digest-check ``payload`` against ``key``; raises ArtifactError.

    Every byte that crosses the wire is verified before it can land in
    a store or be served — a corrupt or mis-keyed copy is refused at
    the boundary, exactly like a corrupt file at load time.
    """
    view = ArtifactView.from_buffer(payload, verify="header")
    try:
        view.validate(key)
    finally:
        view.close()


class Replicator:
    """Per-daemon replication engine over one shard's private store."""

    def __init__(
        self,
        store: "DiskStore",
        self_address: str,
        peers: list[str],
        factor: int = DEFAULT_REPLICATION_FACTOR,
        ring_replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        self.store = store
        self.self_address = self_address
        self.factor = max(1, int(factor))
        self.ring = HashRing(peers, replicas=ring_replicas)
        if self_address not in self.ring:
            self.ring.add(self_address)
        self._clients: dict[str, SliceClient] = {}
        self._clients_lock = threading.Lock()
        self._queue: queue.Queue[tuple[str, str, bytes] | None] = queue.Queue(
            maxsize=_QUEUE_CAP
        )
        self._stats_lock = threading.Lock()
        self.replicated_total = 0
        self.replication_errors = 0
        self.replication_dropped = 0
        self.replica_fetches = 0
        self.replica_fetch_hits = 0
        self.repairs = 0
        self.repair_pushed = 0
        self._closed = False
        self._worker = threading.Thread(
            target=self._drain, name="repro-replicate", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def holders(self, key: str) -> list[str]:
        """The shards designated to hold ``key`` (owner first)."""
        return self.ring.replicas_for(key, min(self.factor, len(self.ring)))

    def _peer_holders(self, key: str) -> list[str]:
        return [a for a in self.holders(key) if a != self.self_address]

    # ------------------------------------------------------------------
    # Write fan-out (store on_save hook)
    # ------------------------------------------------------------------

    def artifact_saved(self, key: str, payload: bytes) -> None:
        """Enqueue one freshly saved artifact for fan-out.  Never blocks
        and never raises into the save path."""
        if self._closed:
            return
        for peer in self._peer_holders(key):
            try:
                self._queue.put_nowait((peer, key, payload))
            except queue.Full:
                with self._stats_lock:
                    self.replication_dropped += 1

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            peer, key, payload = job
            try:
                self._push(peer, key, payload)
                with self._stats_lock:
                    self.replicated_total += 1
            except Exception as exc:  # noqa: BLE001 - fire and forget
                with self._stats_lock:
                    self.replication_errors += 1
                logger.warning(
                    "replication to %s failed for %s: %s", peer, key[:12], exc
                )

    def _push(self, peer: str, key: str, payload: bytes) -> None:
        client = self._client(peer)
        try:
            client.request(
                "put_artifact",
                retries=0,
                key=key,
                payload=encode_payload(payload),
            )
        except ServerError:
            self._drop_client(peer)
            raise

    # ------------------------------------------------------------------
    # Read-through fetch (cache replica_fetch hook)
    # ------------------------------------------------------------------

    def fetch(self, key: str) -> bytes | None:
        """Ask the other holders of ``key`` for a copy; validated bytes
        or None.  The caller persists them (read repair)."""
        peers = self._peer_holders(key)
        if not peers:
            return None
        with self._stats_lock:
            self.replica_fetches += 1
        for peer in peers:
            try:
                client = self._client(peer)
                result = client.request("get_artifact", retries=0, key=key)
            except ServerError as exc:
                self._drop_client(peer)
                if exc.error_type != "NotFound":
                    logger.warning(
                        "replica fetch from %s failed for %s: %s",
                        peer, key[:12], exc,
                    )
                continue
            try:
                payload = decode_payload(result.get("payload"))
                validate_artifact(key, payload)
            except (ValueError, ArtifactError) as exc:
                logger.warning(
                    "replica %s returned bad bytes for %s: %s",
                    peer, key[:12], exc,
                )
                continue
            with self._stats_lock:
                self.replica_fetch_hits += 1
            return payload
        return None

    # ------------------------------------------------------------------
    # Anti-entropy repair
    # ------------------------------------------------------------------

    def repair(self) -> dict[str, Any]:
        """One repair pass: offer every locally held key to its other
        designated holders; push what they are missing.  Returns a
        summary dict; all failures are counted, none raised."""
        offered: dict[str, list[str]] = {}
        for key in self.store.keys():
            for peer in self._peer_holders(key):
                offered.setdefault(peer, []).append(key)
        pushed = errors = 0
        for peer, keys in offered.items():
            try:
                client = self._client(peer)
                result = client.request("sync_offer", retries=0, keys=keys)
                missing = result.get("missing") or []
            except ServerError:
                self._drop_client(peer)
                errors += 1
                continue
            for key in missing:
                payload = self.store.load_payload(key)
                if payload is None:
                    continue
                try:
                    self._push(peer, key, payload)
                    pushed += 1
                except Exception:  # noqa: BLE001
                    errors += 1
        with self._stats_lock:
            self.repairs += 1
            self.repair_pushed += pushed
            self.replication_errors += errors
        return {
            "peers": len(offered),
            "pushed": pushed,
            "errors": errors,
        }

    def repair_async(self) -> None:
        """Kick a repair pass on a throwaway thread (probe-loop cadence
        must never block on peer RPCs)."""
        threading.Thread(
            target=self._repair_guarded, name="repro-repair", daemon=True
        ).start()

    def _repair_guarded(self) -> None:
        try:
            self.repair()
        except Exception as exc:  # noqa: BLE001
            logger.warning("repair pass failed: %s", exc)

    # ------------------------------------------------------------------
    # Peer connections
    # ------------------------------------------------------------------

    def _client(self, peer: str) -> SliceClient:
        with self._clients_lock:
            client = self._clients.get(peer)
            if client is None:
                host, port_text = peer.rsplit(":", 1)
                try:
                    client = SliceClient.connect(
                        host,
                        int(port_text),
                        timeout=_PEER_TIMEOUT_S,
                        retries=0,
                    )
                except OSError as exc:
                    # A peer mid-restart refuses/resets the dial; to
                    # every caller that is the same "Disconnected" a
                    # dead request connection produces.
                    raise ServerError(
                        "Disconnected",
                        f"{type(exc).__name__}: {exc}",
                        peer,
                    ) from exc
                self._clients[peer] = client
            return client

    def _drop_client(self, peer: str) -> None:
        """Forget a peer connection after any failure; the next use
        re-dials (the peer may have respawned on the same port)."""
        with self._clients_lock:
            client = self._clients.pop(peer, None)
        if client is not None:
            try:
                client.close()
            except Exception:  # noqa: BLE001
                pass

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._stats_lock:
            return {
                "self": self.self_address,
                "peers": len(self.ring) - 1,
                "factor": self.factor,
                "replicated_total": self.replicated_total,
                "replication_errors": self.replication_errors,
                "replication_dropped": self.replication_dropped,
                "queue_depth": self._queue.qsize(),
                "replica_fetches": self.replica_fetches,
                "replica_fetch_hits": self.replica_fetch_hits,
                "repairs": self.repairs,
                "repair_pushed": self.repair_pushed,
            }

    def drain(self, timeout_s: float = 5.0) -> bool:
        """Best-effort wait for the fan-out queue to empty (tests and
        drills; production never blocks on it)."""
        import time

        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self._queue.empty():
                return True
            time.sleep(0.02)
        return self._queue.empty()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._worker.join(timeout=2.0)
        with self._clients_lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            try:
                client.close()
            except Exception:  # noqa: BLE001
                pass
