"""The sharded serving tier's frontend: an asyncio router.

One endpoint, N daemons.  The router speaks the existing JSON-lines
protocol *unchanged* — clients (including ``SliceClient`` and every
``--server`` CLI path) cannot tell a router from a single daemon — and
routes each analysis request by consistent-hashing its
``source_fingerprint`` across the shard set, so every artifact is hot
in exactly one shard's LRU instead of every process re-warming
everything.

Architecture:

* **Connection holding** — the frontend is a single-threaded asyncio
  loop; an idle connection costs one parked coroutine, so thousands of
  editor sessions can stay connected for the price of their sockets.
  ``ping``/``health`` are answered inline on the loop (they must stay
  responsive when every forwarding slot is busy, mirroring the
  daemon's introspection fast path).
* **Forwarding** — request bodies are handled on a bounded thread pool
  (``max_inflight``); beyond ``max_inflight + max_queue`` concurrently
  admitted requests the router sheds load with the same structured
  ``Overloaded`` error the daemon uses, so client backoff machinery
  works identically end to end.
* **Routing** — the routing key is the request's
  :func:`repro.frontend.source_fingerprint` (the same digest the
  shards' cache keys are built from).  Requests whose key cannot be
  derived (missing/invalid params) are forwarded to the first healthy
  shard so the *daemon's* validation answers authoritatively — the
  router never re-implements parameter checking.
* **Failover** — the ring's :meth:`~repro.server.ring.HashRing.preference`
  order is walked healthy-first: a shard failure (``Overloaded`` /
  ``Disconnected``, the same retryable set the client uses) advances
  to the next candidate and feeds the shard's health accounting, so a
  dead shard is demoted by live traffic before the next probe tick.
  Structured shard errors (``BadParams``, ``Timeout``, ``MJError``...)
  are relayed verbatim, stamped with the shard's address in the error
  payload (``error.endpoint``) for debuggability.
* **Batch fan-out** — ``slice_batch`` items are grouped by owning
  shard, the sub-batches forwarded concurrently, and the merged result
  preserves request order; single-owner batches forward untouched so
  their bytes stay identical to single-daemon mode.
* **Aggregation** — ``health`` reports the topology (per-shard state
  and cached probe payloads, ring ownership shares, router counters)
  without performing any I/O; ``stats`` fans out live to every shard.
* **Draining** — ``shutdown`` answers immediately, then the router
  stops accepting work and drains the pool (spawned shards are shut
  down; attached shards are left running).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures import wait as futures_wait
from typing import Any

from repro import __version__
from repro.frontend import source_fingerprint
from repro.server.client import RETRYABLE, ServerError
from repro.server.daemon import MAX_LINE_BYTES, MethodStats
from repro.server.faults import FaultPlan
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    slice_batch_payload,
)
from repro.server.ring import DEFAULT_REPLICAS, HashRing
from repro.server.shardpool import DRAINING, HEALTHY, ShardPool

logger = logging.getLogger("repro.router")

#: Methods the router understands (the daemon's surface, unchanged).
ROUTER_METHODS = frozenset(
    {
        "ping",
        "health",
        "slice",
        "slice_batch",
        "explain",
        "why",
        "chop",
        "stats",
        "shutdown",
        "rolling_restart",
    }
)

#: Methods answered inline on the event loop — they must stay
#: responsive even when every forwarding slot is busy.
_INTROSPECTION = frozenset({"ping", "health", "shutdown"})

#: Above this size a request line is not pre-parsed on the event loop;
#: it goes straight to a worker thread (only the shed path ever parses
#: big lines on the loop, to echo the request id).
_INLINE_PARSE_BYTES = 64 * 1024

#: Default cap on concurrently forwarded requests.
DEFAULT_MAX_INFLIGHT = 16

#: Admitted-but-waiting requests beyond busy slots before shedding.
DEFAULT_MAX_QUEUE = 64

#: Hedging needs at least this many latency samples before trusting
#: the adaptive quantile; below it only a fixed ``hedge_delay_s`` hedges.
_HEDGE_MIN_SAMPLES = 16

#: The hedge quantile and its floor: hedge after the observed p95 of
#: successful keyed forwards, never sooner than 50 ms (a hedge against
#: ordinary jitter just doubles load for nothing).
_HEDGE_QUANTILE = 0.95
_HEDGE_MIN_DELAY_S = 0.05


class Router:
    """Routes protocol requests across a :class:`ShardPool` via a ring."""

    def __init__(
        self,
        pool: ShardPool,
        replicas: int = DEFAULT_REPLICAS,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        fault_plan: FaultPlan | None = None,
        line_limit: int = MAX_LINE_BYTES,
        hedge: bool = True,
        hedge_delay_s: float | None = None,
    ) -> None:
        self.pool = pool
        self.ring = HashRing(pool.addresses(), replicas=replicas)
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.fault_plan = fault_plan
        self.line_limit = line_limit
        #: Hedged requests: after a quantile-based delay, a slow keyed
        #: ``slice`` is re-issued to the key's first replica and the
        #: first answer wins (byte-identity across shards makes racing
        #: them safe).  ``hedge_delay_s`` pins the delay (tests, CLI);
        #: None adapts to the observed p95 once enough samples exist.
        self.hedge = hedge
        self.hedge_delay_s = hedge_delay_s
        self.started = time.time()
        self.shutting_down = False
        self.address: tuple[str, int] | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-route"
        )
        # Hedge attempts run on their own pool: a hedge losing the race
        # stays blocked on its shard until that call returns, and those
        # parked threads must not eat forwarding slots.
        self._hedge_executor = ThreadPoolExecutor(
            max_workers=max(4, max_inflight * 2),
            thread_name_prefix="repro-hedge",
        )
        self._stats_lock = threading.Lock()
        self._method_stats: dict[str, MethodStats] = {}
        self._latencies: deque[float] = deque(maxlen=128)
        self.forwarded_total = 0
        self.failover_total = 0
        self.shed_total = 0
        self.hedges_total = 0
        self.hedge_wins = 0
        self.read_repairs = 0
        self.deadline_expired_total = 0
        # Event-loop plumbing (populated by start()).
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stop_async: asyncio.Event | None = None
        self._start_error: BaseException | None = None
        self._inflight = 0  # touched only on the event loop thread

    # ------------------------------------------------------------------
    # Sync request core (runs on forwarding threads; also the test seam)
    # ------------------------------------------------------------------

    def handle_line(self, line: str) -> str:
        """One request line in, one response line out.  Never raises."""
        if len(line) > self.line_limit:
            return encode_message(
                error_response(
                    None,
                    "Protocol",
                    f"request line exceeds {self.line_limit} bytes",
                )
            )
        try:
            request = decode_message(line)
        except ProtocolError as exc:
            return encode_message(error_response(None, "Protocol", str(exc)))
        return encode_message(self.handle_request(request))

    def handle_request(self, request: dict[str, Any]) -> dict[str, Any]:
        request_id = request.get("id")
        method = request.get("method")
        params = request.get("params") or {}
        if not isinstance(method, str) or method not in ROUTER_METHODS:
            return error_response(
                request_id, "UnknownMethod", f"unknown method: {method!r}"
            )
        if not isinstance(params, dict):
            return error_response(
                request_id, "Protocol", "params must be an object"
            )
        start = time.perf_counter()
        try:
            if method == "ping":
                response = ok_response(request_id, self._ping_payload())
            elif method == "health":
                response = ok_response(request_id, self.health_payload())
            elif method == "shutdown":
                response = ok_response(request_id, self._begin_shutdown())
            elif method == "stats" and not (
                "source" in params or "program" in params
            ):
                response = ok_response(request_id, self.stats_payload())
            elif method == "rolling_restart":
                response = ok_response(
                    request_id, self._rolling_restart(params)
                )
            elif method == "slice_batch":
                response = self._route_batch(params, request_id)
            else:
                response = self._forward(
                    method, params, self._routing_key(params), request_id
                )
        except Exception as exc:  # isolation: the router never dies on a query
            response = error_response(request_id, type(exc).__name__, str(exc))
        self._record(
            method, (time.perf_counter() - start) * 1000, response["ok"]
        )
        return response

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _routing_key(self, params: dict[str, Any]) -> str | None:
        """The request's ``source_fingerprint`` — or ``None`` when it
        cannot be derived, in which case the request is forwarded to
        the first healthy shard for authoritative validation."""
        source = params.get("source")
        if source is None:
            program = params.get("program")
            if not isinstance(program, str):
                return None
            try:
                from repro.suite.loader import load_source

                source = load_source(program)
            except (FileNotFoundError, OSError):
                return None
        if not isinstance(source, str):
            return None
        return source_fingerprint(source, bool(params.get("include_stdlib", True)))

    def _candidates(self, key: str | None) -> list[str]:
        """Forwarding order: ring preference for the key, healthy shards
        first; unhealthy shards stay as a last resort (they may have
        recovered since the last probe), draining shards never."""
        states = {
            address: snap["state"]
            for address, snap in self.pool.snapshot().items()
        }
        order = (
            self.ring.preference(key)
            if key is not None
            else sorted(states)
        )
        healthy = [a for a in order if states.get(a) == HEALTHY]
        fallback = [
            a
            for a in order
            if states.get(a) not in (HEALTHY, DRAINING) and a in states
        ]
        return healthy + fallback

    def _call_shard(
        self, method: str, params: dict[str, Any], address: str
    ) -> tuple[str, Any]:
        """One attempt against one shard, with all health accounting.

        Returns ``("ok", result)``, ``("relay", ServerError)`` for a
        structured shard answer (the shard is alive — relay verbatim),
        or ``("retryable", ServerError)`` for a transport-level failure
        (the failover walk advances).  Shared by the plain failover walk
        and the hedged path so both account identically.
        """
        shard = self.pool.shard(address)
        attempt_started = time.monotonic()
        try:
            result = shard.call(method, dict(params))
        except ServerError as exc:
            if exc.error_type in RETRYABLE:
                refused = isinstance(
                    exc.__cause__, ConnectionRefusedError
                ) or shard.process_exited()
                self.pool.note_failure(
                    address, str(exc), definitely_down=refused
                )
                with shard._lock:
                    shard.failed_total += 1
                with self._stats_lock:
                    self.failover_total += 1
                return "retryable", exc
            self.pool.note_success(address)
            return "relay", exc
        self.pool.note_success(address)
        with shard._lock:
            shard.forwarded_total += 1
        with self._stats_lock:
            self.forwarded_total += 1
            if method == "slice":
                # The hedge delay estimate feeds on successful keyed
                # forwards only — failures would teach it to hedge at
                # timeout latency.
                self._latencies.append(time.monotonic() - attempt_started)
        return "ok", result

    def _hedge_delay(self) -> float | None:
        """Seconds to wait before hedging, or None (not enough signal).

        A fixed ``hedge_delay_s`` always wins; otherwise the observed
        p95 of successful keyed forwards, floored at 50 ms, once at
        least :data:`_HEDGE_MIN_SAMPLES` samples exist.
        """
        if not self.hedge:
            return None
        if self.hedge_delay_s is not None:
            return self.hedge_delay_s
        with self._stats_lock:
            if len(self._latencies) < _HEDGE_MIN_SAMPLES:
                return None
            ordered = sorted(self._latencies)
        quantile = ordered[int(_HEDGE_QUANTILE * (len(ordered) - 1))]
        return max(quantile, _HEDGE_MIN_DELAY_S)

    def _hedged_attempt(
        self,
        method: str,
        params: dict[str, Any],
        primary: str,
        backup: str,
        delay_s: float,
    ) -> tuple[str, Any, str]:
        """Race ``primary`` against ``backup`` after ``delay_s``.

        Byte-identity across shards makes the race safe: whichever
        answers first is *the* answer.  The loser is abandoned — its
        thread unblocks when its shard call returns and its accounting
        still lands (a hedge is real extra load, not free).  Returns
        ``(status, value, served_by)`` like :meth:`_call_shard` plus
        the address that produced the outcome.
        """
        primary_future = self._hedge_executor.submit(
            self._call_shard, method, params, primary
        )
        try:
            status, value = primary_future.result(timeout=delay_s)
            return status, value, primary
        except FutureTimeout:
            pass
        with self._stats_lock:
            self.hedges_total += 1
        backup_future = self._hedge_executor.submit(
            self._call_shard, method, params, backup
        )
        futures = {primary_future: primary, backup_future: backup}
        pending = set(futures)
        fallback: tuple[str, Any, str] | None = None
        while pending:
            done, pending = futures_wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                status, value = future.result()
                if status == "ok":
                    if futures[future] == backup:
                        with self._stats_lock:
                            self.hedge_wins += 1
                    return status, value, futures[future]
                if fallback is None or futures[future] == primary:
                    fallback = (status, value, futures[future])
        assert fallback is not None
        return fallback

    def _forward(
        self,
        method: str,
        params: dict[str, Any],
        key: str | None,
        request_id: Any,
    ) -> dict[str, Any]:
        candidates = self._candidates(key)
        if not candidates:
            return error_response(
                request_id,
                "Overloaded",
                "no shard available (all draining or none attached); "
                "retry with backoff",
            )
        # Deadline propagation: the shard should see the time *left*,
        # not the client's original allowance — elapsed routing/failover
        # time comes out of the budget.  Non-positive or malformed
        # deadlines pass through untouched so the daemon's own param
        # validation answers authoritatively.
        original_deadline = params.get("deadline")
        if not isinstance(original_deadline, (int, float)) or isinstance(
            original_deadline, bool
        ) or original_deadline <= 0:
            original_deadline = None
        forward_started = time.monotonic()
        hedge_delay = (
            self._hedge_delay()
            if method == "slice" and key is not None and len(candidates) >= 2
            else None
        )
        last: ServerError | None = None
        attempt = 0
        index = 0
        while index < len(candidates):
            address = candidates[index]
            if self.fault_plan is not None:
                self.fault_plan.on_route(self.pool, address)
            attempt_params = params
            if original_deadline is not None:
                remaining = original_deadline - (
                    time.monotonic() - forward_started
                )
                if remaining <= 0:
                    with self._stats_lock:
                        self.deadline_expired_total += 1
                    return error_response(
                        request_id,
                        "DeadlineExpired",
                        f"{original_deadline:g}s deadline exhausted at the "
                        "router before a shard could answer",
                    )
                attempt_params = dict(params)
                attempt_params["deadline"] = remaining
            if hedge_delay is not None and index == 0:
                status, value, served_by = self._hedged_attempt(
                    method, attempt_params, address, candidates[1], hedge_delay
                )
                # Both racers failed transport-level: the walk resumes
                # after the pair (each already fed failover accounting).
                consumed = 2 if status == "retryable" else 1
            else:
                status, value = self._call_shard(
                    method, attempt_params, address
                )
                served_by, consumed = address, 1
            if status == "relay":
                # A structured answer proves the shard is alive; relay
                # it stamped with the shard's address.
                exc = value
                response = error_response(
                    request_id, exc.error_type, exc.message
                )
                response["error"]["endpoint"] = exc.endpoint or served_by
                return response
            if status == "ok":
                if attempt or served_by != candidates[0]:
                    logger.info(
                        "%s",
                        json.dumps(
                            {
                                "event": "failover",
                                "method": method,
                                "served_by": served_by,
                                "attempts": attempt + 1,
                            },
                            sort_keys=True,
                        ),
                    )
                    # The shard that answered may not be the key's
                    # owner: re-fan its stored artifact so the replica
                    # set heals without waiting for anti-entropy.
                    self._read_repair(served_by, params, key)
                return ok_response(request_id, value)
            last = value
            index += consumed
            attempt += 1
        assert last is not None
        response = error_response(
            request_id,
            last.error_type,
            f"all {len(candidates)} shards failed; last: {last.message}",
        )
        if last.endpoint:
            response["error"]["endpoint"] = last.endpoint
        return response

    def _read_repair(
        self, address: str, params: dict[str, Any], key: str | None
    ) -> None:
        """Fire-and-forget ``replicate_key`` after a failover-served
        keyed request: the serving shard re-fans the artifact to the
        key's designated holders.  Best-effort by design — anti-entropy
        repair converges anything this misses."""
        if key is None:
            return
        try:
            from repro import AnalyzeOptions
            from repro.artifact import content_key

            source = params.get("source")
            if source is None:
                program = params.get("program")
                if not isinstance(program, str):
                    return
                from repro.suite.loader import load_source

                source = load_source(program)
            if not isinstance(source, str):
                return
            store_key = content_key(
                source,
                AnalyzeOptions(
                    include_stdlib=bool(params.get("include_stdlib", True))
                ),
            )
        except Exception:  # noqa: BLE001 - repair must never fail a request
            return
        with self._stats_lock:
            self.read_repairs += 1

        def push() -> None:
            try:
                self.pool.shard(address).call(
                    "replicate_key", {"key": store_key}
                )
            except Exception:  # noqa: BLE001
                pass

        threading.Thread(
            target=push, name="repro-read-repair", daemon=True
        ).start()

    def _rolling_restart(self, params: dict[str, Any]) -> dict[str, Any]:
        """Restart every spawned shard, one at a time, zero downtime.

        Each shard drains through :meth:`ShardPool.restart_shard` while
        the rest of the tier keeps serving (replicas answer the
        draining shard's keys warm).  Stops at the first failure — a
        roll that keeps going after losing a shard would shrink
        capacity with every step.
        """
        drain_timeout = params.get("drain_timeout_s", 30.0)
        if (
            not isinstance(drain_timeout, (int, float))
            or isinstance(drain_timeout, bool)
            or drain_timeout <= 0
        ):
            raise ValueError("'drain_timeout_s' must be a positive number")
        started = time.monotonic()
        restarted: list[dict[str, Any]] = []
        failed: list[dict[str, Any]] = []
        for address in self.pool.addresses():
            shard = self.pool.shard(address)
            if shard.process is None:
                failed.append(
                    {"address": address, "error": "externally managed"}
                )
                continue
            try:
                info = self.pool.restart_shard(
                    address, drain_timeout_s=float(drain_timeout)
                )
            except Exception as exc:  # noqa: BLE001 - report, don't die
                failed.append({"address": address, "error": str(exc)})
                break
            restarted.append(info)
        return {
            "restarted": restarted,
            "failed": failed,
            "duration_s": round(time.monotonic() - started, 3),
        }

    def _route_batch(
        self, params: dict[str, Any], request_id: Any
    ) -> dict[str, Any]:
        """Fan ``slice_batch`` items out to their owning shards and
        merge the results in request order.

        Malformed shapes are not judged here: the whole request is
        forwarded to one shard whose validation answers exactly as a
        single daemon would (all-or-nothing, before any analysis).
        """
        raw_items = params.get("items")
        if raw_items is None:
            # lines-shape: one source, one owner, forward untouched.
            return self._forward(
                "slice_batch", params, self._routing_key(params), request_id
            )
        if not isinstance(raw_items, list) or not raw_items:
            return self._forward("slice_batch", params, None, request_id)
        groups: dict[str, list[tuple[int, Any]]] = {}
        group_key: dict[str, str] = {}
        for index, raw in enumerate(raw_items):
            if not isinstance(raw, dict):
                return self._forward("slice_batch", params, None, request_id)
            merged = {**params, **raw}
            merged.pop("items", None)
            merged.pop("lines", None)
            key = self._routing_key(merged)
            if key is None:
                return self._forward("slice_batch", params, None, request_id)
            candidates = self._candidates(key)
            owner = candidates[0] if candidates else ""
            groups.setdefault(owner, []).append((index, raw))
            group_key.setdefault(owner, key)
        if len(groups) == 1:
            # Single owner: forward the original request untouched so
            # the response bytes match single-daemon mode exactly.
            (owner,) = groups
            return self._forward(
                "slice_batch", params, group_key[owner], request_id
            )

        defaults = {
            k: v for k, v in params.items() if k not in ("items", "lines")
        }

        def run(owner: str) -> dict[str, Any]:
            sub_params = dict(defaults)
            sub_params["items"] = [raw for _, raw in groups[owner]]
            return self._forward(
                "slice_batch", sub_params, group_key[owner], request_id
            )

        owners = sorted(groups)
        with ThreadPoolExecutor(
            max_workers=len(owners), thread_name_prefix="repro-route-batch"
        ) as fan:
            responses = dict(zip(owners, fan.map(run, owners)))
        ordered: list[Any] = [None] * len(raw_items)
        distinct = 0
        for owner in owners:
            response = responses[owner]
            if not response["ok"]:
                # One failing sub-batch fails the whole request, exactly
                # like the daemon's all-or-nothing validation (other
                # shards may have warmed their caches — a side effect,
                # not an observable result).
                return response
            result = response["result"]
            distinct += result["distinct_programs"]
            for (index, _), payload in zip(groups[owner], result["results"]):
                ordered[index] = payload
        return ok_response(
            request_id,
            slice_batch_payload(ordered, distinct_programs=distinct),
        )

    # ------------------------------------------------------------------
    # Aggregated views
    # ------------------------------------------------------------------

    def _ping_payload(self) -> dict[str, Any]:
        return {
            "pong": True,
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "role": "router",
        }

    def _router_counters(self) -> dict[str, Any]:
        with self._stats_lock:
            return {
                "forwarded_total": self.forwarded_total,
                "failover_total": self.failover_total,
                "shed_total": self.shed_total,
                "hedges_total": self.hedges_total,
                "hedge_wins": self.hedge_wins,
                "read_repairs": self.read_repairs,
                "deadline_expired_total": self.deadline_expired_total,
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
            }

    def health_payload(self) -> dict[str, Any]:
        """Topology health from cached probe state — no I/O, so this
        answers promptly however sick the shards are."""
        shards = self.pool.snapshot()
        healthy = [a for a, s in shards.items() if s["state"] == HEALTHY]
        return {
            "healthy": bool(healthy) and not self.shutting_down,
            "shutting_down": self.shutting_down,
            "role": "router",
            "shard_count": len(shards),
            "healthy_shards": len(healthy),
            "respawns_total": self.pool.respawns_total,
            "probe_interval_s": self.pool.probe_interval_s,
            "failure_threshold": self.pool.failure_threshold,
            "uptime_s": round(time.time() - self.started, 3),
            "router": self._router_counters(),
            "shards": shards,
            "ring": {
                "replicas": self.ring.replicas,
                "ownership": {
                    address: round(share, 4)
                    for address, share in sorted(self.ring.ownership().items())
                },
            },
        }

    def stats_payload(self) -> dict[str, Any]:
        """Topology stats: the router's own counters plus a live
        ``stats`` fan-out to every shard."""
        shard_stats: dict[str, Any] = {}
        requests_total = 0
        incremental = {
            "incremental_hits": 0,
            "functions_reused": 0,
            "functions_reanalyzed": 0,
        }
        for address in self.pool.addresses():
            try:
                payload = self.pool.shard(address).call("stats", {})
            except ServerError as exc:
                shard_stats[address] = {
                    "error": {"type": exc.error_type, "message": exc.message}
                }
                continue
            shard_stats[address] = payload
            requests_total += payload.get("requests_total", 0)
            fragments = (payload.get("cache") or {}).get("fragments") or {}
            for counter in incremental:
                incremental[counter] += fragments.get(counter, 0)
        with self._stats_lock:
            methods = {
                name: stats.as_dict()
                for name, stats in sorted(self._method_stats.items())
            }
            routed_total = sum(s.count for s in self._method_stats.values())
        return {
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "role": "router",
            "uptime_s": round(time.time() - self.started, 3),
            "requests_total": routed_total,
            "shard_requests_total": requests_total,
            "methods": methods,
            "router": self._router_counters(),
            "incremental": incremental,
            "shards": shard_stats,
            "ring": {
                "replicas": self.ring.replicas,
                "ownership": {
                    address: round(share, 4)
                    for address, share in sorted(self.ring.ownership().items())
                },
            },
        }

    def _record(self, method: str, latency_ms: float, ok: bool) -> None:
        with self._stats_lock:
            stats = self._method_stats.setdefault(method, MethodStats())
            stats.record(latency_ms, ok, False)
        logger.info(
            "%s",
            json.dumps(
                {
                    "event": "route",
                    "method": method,
                    "ok": ok,
                    "latency_ms": round(latency_ms, 3),
                },
                sort_keys=True,
            ),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _begin_shutdown(self) -> dict[str, Any]:
        """Answer immediately; drain in the background."""
        already = self.shutting_down
        self.shutting_down = True
        if not already:
            threading.Thread(
                target=self.stop, name="repro-router-drain", daemon=True
            ).start()
        return {"stopping": True}

    def stop(self) -> None:
        """Stop accepting connections and drain the shard pool."""
        self.shutting_down = True
        if self._loop is not None and self._stop_async is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_async.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.pool.stop()
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._hedge_executor.shutdown(wait=False, cancel_futures=True)

    def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Serve on a background event-loop thread; returns the bound
        ``(host, port)`` (``port=0`` binds an ephemeral port)."""
        if self._thread is not None:
            raise RuntimeError("router already started")
        started = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self._serve_async(host, port, started))
            except BaseException as exc:  # bind failures land here
                self._start_error = exc
                started.set()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-router", daemon=True
        )
        self._thread.start()
        started.wait(timeout=30)
        if self._start_error is not None:
            raise self._start_error
        assert self.address is not None
        return self.address

    def join(self) -> None:
        """Block until the serving thread exits (CLI foreground mode)."""
        if self._thread is not None:
            while self._thread.is_alive():
                self._thread.join(timeout=0.5)

    async def _serve_async(
        self, host: str, port: int, started: threading.Event
    ) -> None:
        self._stop_async = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_conn, host, port, limit=self.line_limit + 2
        )
        sockname = server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        logger.info(
            "%s",
            json.dumps(
                {
                    "event": "listening",
                    "role": "router",
                    "host": self.address[0],
                    "port": self.address[1],
                },
                sort_keys=True,
            ),
        )
        started.set()
        async with server:
            await self._stop_async.wait()

    async def _read_frame(
        self, reader: asyncio.StreamReader
    ) -> bytes | None:
        """One newline-terminated frame; ``b""`` for an oversized line
        (discarded exactly through its newline, so pipelined requests
        behind it survive); ``None`` at EOF.

        Built on ``readuntil`` rather than ``readline`` because on
        overrun ``readuntil`` leaves the buffer intact (``readline``
        clears it, losing any already-buffered follow-up requests).
        """
        try:
            return await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            # EOF; a trailing unterminated fragment is not a request.
            return exc.partial or None
        except asyncio.LimitOverrunError as exc:
            await reader.readexactly(exc.consumed)
            while True:
                try:
                    await reader.readuntil(b"\n")
                    return b""
                except asyncio.LimitOverrunError as more:
                    await reader.readexactly(more.consumed)
                except asyncio.IncompleteReadError:
                    return None

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self.shutting_down:
                raw = await self._read_frame(reader)
                if raw is None:
                    break
                if raw == b"":
                    # Oversized line: a structured Protocol error, and
                    # framing has already recovered at its newline —
                    # same contract as the daemon's serving loops.
                    writer.write(
                        (self._oversize_response() + "\n").encode("utf-8")
                    )
                    await writer.drain()
                    continue
                line = raw.decode("utf-8", errors="replace")
                if not line.strip():
                    continue
                response = await self._dispatch(line)
                writer.write((response + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _oversize_response(self) -> str:
        return encode_message(
            error_response(
                None,
                "Protocol",
                f"request line exceeds {self.line_limit} bytes",
            )
        )

    async def _dispatch(self, line: str) -> str:
        """Admission + introspection fast path, on the event loop."""
        request: dict[str, Any] | None = None
        if len(line) <= _INLINE_PARSE_BYTES:
            try:
                request = decode_message(line)
            except ProtocolError as exc:
                return encode_message(error_response(None, "Protocol", str(exc)))
        if request is not None and request.get("method") in _INTROSPECTION:
            # Never queued behind forwards: health checks must answer
            # even when every forwarding slot is wedged.
            return encode_message(self.handle_request(request))
        if self._inflight >= self.max_inflight + self.max_queue:
            if request is None:
                try:
                    request = decode_message(line)
                except ProtocolError as exc:
                    return encode_message(
                        error_response(None, "Protocol", str(exc))
                    )
            with self._stats_lock:
                self.shed_total += 1
            return encode_message(
                error_response(
                    request.get("id"),
                    "Overloaded",
                    f"router at capacity ({self.max_inflight} in flight, "
                    f"{self.max_queue} queued); retry with backoff",
                )
            )
        self._inflight += 1
        loop = asyncio.get_running_loop()
        try:
            if request is not None:
                return await loop.run_in_executor(
                    self._executor,
                    lambda: encode_message(self.handle_request(request)),
                )
            return await loop.run_in_executor(
                self._executor, self.handle_line, line
            )
        finally:
            self._inflight -= 1


def start_router(
    pool: ShardPool,
    host: str = "127.0.0.1",
    port: int = 0,
    **router_kwargs: Any,
) -> Router:
    """Build a :class:`Router` over ``pool``, start probing, and serve."""
    router = Router(pool, **router_kwargs)
    pool.probe_all()  # a deterministic first round before traffic lands
    pool.start_probing()
    router.start(host, port)
    return router
