"""Two-tier analysis cache: in-memory LRU over the on-disk store.

The key is content-addressed — :func:`cache_key` hashes the exact
source text (plus the stdlib when it participates), the
:class:`repro.AnalyzeOptions` token, and the package version.  Two
submissions of byte-identical source with the same options therefore
hit, regardless of filename; changing any option (or any byte of the
source) misses.

Lookup order: memory → disk → :func:`repro.analyze`.  Every analysis
result is promoted into both tiers, so a restarted process finds the
artifact on disk and a long-lived process answers from memory.

With an ``executor`` (a :class:`repro.parallel.ProcessPool`), misses
run :func:`repro.parallel.analyze_artifact` in a worker process and the
parent receives *pickled artifact bytes*: those bytes go to the disk
tier unchanged via :meth:`DiskStore.save_bytes` and are unpickled
exactly once for the in-memory LRU — serialize-once, where the thread
path previously pickled the same object again inside ``store.save``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Any

from repro import AnalyzedProgram, AnalyzeOptions, __version__, analyze
from repro.frontend import source_fingerprint
from repro.parallel import (
    ProcessPool,
    WorkerError,
    analyze_artifact,
    load_artifact,
)
from repro.resources import ResourceExceeded
from repro.server.faults import FaultPlan
from repro.server.store import DiskStore

DEFAULT_MEMORY_CAPACITY = 8


def cache_key(source: str, options: AnalyzeOptions) -> str:
    """Content address of one ``(source, options)`` analysis request."""
    hasher = hashlib.sha256()
    hasher.update(f"repro/{__version__}\n".encode("utf-8"))
    hasher.update(options.cache_token().encode("utf-8"))
    hasher.update(b"\n")
    hasher.update(
        source_fingerprint(source, options.include_stdlib).encode("utf-8")
    )
    return hasher.hexdigest()


class AnalysisCache:
    """LRU of :class:`AnalyzedProgram` objects with an optional disk tier.

    Thread-safe: the TCP daemon serves connections from multiple
    threads.  The lock guards the LRU bookkeeping and the counters; the
    analysis itself runs outside the lock (two racing misses on the
    same key both compute, last write wins — wasteful but correct).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_MEMORY_CAPACITY,
        store: DiskStore | None = None,
        fault_plan: "FaultPlan | None" = None,
        executor: ProcessPool | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.store = store
        self.fault_plan = fault_plan
        self.executor = executor
        self._entries: OrderedDict[str, AnalyzedProgram] = OrderedDict()
        self._lock = threading.Lock()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_analyze(
        self,
        source: str,
        filename: str = "<input>",
        options: AnalyzeOptions | None = None,
        executor_ok: bool = True,
    ) -> tuple[AnalyzedProgram, str]:
        """Return ``(analyzed, origin)``, origin ∈ memory | disk | analyzed.

        ``executor_ok=False`` forces a cold miss to run in-process even
        when a process executor is attached — the daemon's circuit
        breaker uses it to degrade process→thread after repeated worker
        crashes (see :class:`repro.server.quarantine.CircuitBreaker`).
        """
        options = options or AnalyzeOptions()
        key = cache_key(source, options)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.memory_hits += 1
                return cached, "memory"
        if self.store is not None:
            loaded = self.store.load(key)
            if loaded is not None:
                with self._lock:
                    self.disk_hits += 1
                    self._put(key, loaded)
                return loaded, "disk"
        if self.fault_plan is not None:
            # Injected slow analysis / analysis-time faults.  Raising
            # here (BudgetExceeded on cancellation) leaves no cache
            # entry behind, same as a failing real analysis.
            self.fault_plan.on_analysis(options.budget)
        if self.executor is not None and executor_ok:
            analyzed, payload = self._analyze_in_executor(
                source, filename, options
            )
        else:
            analyzed, payload = analyze(source, filename, options=options), None
        with self._lock:
            self.misses += 1
            self._put(key, analyzed)
        if self.store is not None:
            if payload is not None:
                self.store.save_bytes(key, payload)
            else:
                self.store.save(key, analyzed)
        return analyzed, "analyzed"

    def _analyze_in_executor(
        self, source: str, filename: str, options: AnalyzeOptions
    ) -> tuple[AnalyzedProgram, bytes]:
        """Run one cold analysis on a worker process.

        Returns ``(analyzed, payload)``: the worker's canonical pickled
        bytes plus the single unpickled copy for the LRU, with the run's
        timings (shipped out-of-band — they are observability data, not
        artifact content) reattached to the in-memory object only.
        """
        inject_crash = False
        inject_delay = 0.0
        inject_alloc = 0.0
        if self.fault_plan is not None:
            inject_crash = self.fault_plan.take_process_crash()
            inject_delay = self.fault_plan.worker_process_delay_s
            inject_alloc = self.fault_plan.worker_alloc_mb
        budget = options.budget
        memory_limit = options.memory_limit_mb
        if budget is not None:
            # Budget tokens cannot cross the process boundary (the
            # parent enforces them by killing the worker); strip before
            # pickling the options for the task message.
            options = replace(options, budget=None)
        try:
            payload, timings = self.executor.run(
                analyze_artifact,
                source,
                filename,
                options,
                memory_limit_mb=memory_limit or 0.0,
                inject_delay_s=inject_delay,
                inject_crash=inject_crash,
                inject_alloc_mb=inject_alloc,
                budget=budget,
                rss_limit_mb=memory_limit,
            )
        except WorkerError as exc:
            if exc.error_type == "ResourceExceeded":
                # The in-worker rlimit backstop fired; re-raise as the
                # same structured error the parent-side RSS sentinel
                # produces, so callers see one taxonomy.
                raise ResourceExceeded("memory", exc.message) from None
            raise
        analyzed = load_artifact(payload)
        analyzed.timings = timings
        return analyzed, payload

    def _put(self, key: str, analyzed: AnalyzedProgram) -> None:
        self._entries[key] = analyzed
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            payload: dict[str, Any] = {
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "capacity": self.capacity,
            }
        payload["disk"] = (
            self.store.stats.as_dict() if self.store is not None else None
        )
        return payload
