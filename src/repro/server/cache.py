"""Two-tier analysis cache: in-memory LRU over the on-disk store.

The key is content-addressed — :func:`cache_key` hashes the exact
source text (plus the stdlib when it participates), the
:class:`repro.AnalyzeOptions` token, and the package version.  Two
submissions of byte-identical source with the same options therefore
hit, regardless of filename; changing any option (or any byte of the
source) misses.

Lookup order: memory → disk → replica → incremental →
:func:`repro.analyze`.  The replica level (an optional
``replica_fetch`` hook, installed by
:class:`repro.server.replication.Replicator`) asks the other ring
holders of the key for a copy before recomputing; fetched bytes are
validated, persisted locally (read repair), and served with origin
``"replica"``.
Every analysis result is promoted into both tiers, so a restarted
process finds the artifact on disk and a long-lived process answers
from memory.  The incremental level (an optional
:class:`~repro.server.fragments.FragmentStore`) catches the
highest-traffic *near*-miss: a source that is an edit of a program the
server recently analyzed re-analyzes only its changed functions and
still yields byte-identical artifact bytes (see
:mod:`repro.incremental`).

The unit cached is a :class:`CacheEntry`: a flat
:class:`~repro.artifact.ArtifactView` and/or the rich
:class:`~repro.AnalyzedProgram`.  The slice/stats hot path runs
straight off the view (mmap-backed on a disk hit — the object graph is
never reconstructed); rich-only methods (explain/why/chop) call
:meth:`CacheEntry.program`, which materializes once per entry and
memoizes.

With an ``executor`` (a :class:`repro.parallel.ProcessPool`), misses
run :func:`repro.parallel.analyze_artifact` in a worker process and
the parent receives *flat artifact bytes*: those bytes go to the disk
tier unchanged via :meth:`DiskStore.save_bytes` and the in-memory LRU
holds a view over the same buffer — serialize once, deserialize never.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Any

from repro import AnalyzedProgram, AnalyzeOptions, analyze
from repro.artifact import ArtifactView, content_key
from repro.parallel import ProcessPool, WorkerError, analyze_artifact
from repro.resources import ResourceExceeded
from repro.server.faults import FaultPlan
from repro.server.fragments import FragmentStore
from repro.server.store import DiskStore
from repro.slicing.flatslice import flat_slicer

logger = logging.getLogger("repro.server")

DEFAULT_MEMORY_CAPACITY = 8


def cache_key(source: str, options: AnalyzeOptions) -> str:
    """Content address of one ``(source, options)`` analysis request.

    Delegates to :func:`repro.artifact.content_key` — the same address
    a worker stamps into the artifacts it encodes, so a stored file can
    be validated against the key it is filed under.
    """
    return content_key(source, options)


class CacheEntry:
    """One cached analysis, lazily materialized.

    Holds a flat ``view``, a rich ``program``, or both; ``timings`` is
    the run's stage profile when this entry was produced by a live
    analysis (None for warm hits — wall times are per-run data).
    """

    def __init__(
        self,
        view: ArtifactView | None = None,
        program: AnalyzedProgram | None = None,
        timings: dict | None = None,
    ) -> None:
        if view is None and program is None:
            raise ValueError("CacheEntry needs a view or a program")
        self.view = view
        self.timings = timings
        self._program = program
        self._lock = threading.Lock()

    def program(self) -> AnalyzedProgram:
        """The rich object graph (escape hatch; memoized, thread-safe)."""
        if self._program is None:
            with self._lock:
                if self._program is None:
                    program = self.view.to_analyzed_program()
                    if self.timings is not None:
                        program.timings = self.timings
                    self._program = program
        return self._program

    def slicer(self, flavor: str):
        """A thin/traditional slicer over whichever form is cheapest:
        the already-rich program if one exists, else the flat view."""
        if self._program is not None:
            if flavor == "thin":
                return self._program.thin_slicer
            if flavor == "traditional":
                return self._program.traditional_slicer
            raise ValueError(f"unknown slice flavor: {flavor}")
        return flat_slicer(self.view, flavor)

    def stats_counts(self) -> dict[str, Any]:
        """The count fields of the ``stats`` payload, without forcing
        materialization: flat artifacts carry them in META."""
        if self._program is None:
            return dict(self.view.counts)
        analyzed = self._program
        graph = analyzed.pts.call_graph
        return {
            "classes": len(analyzed.compiled.table.classes),
            "functions_ir": len(analyzed.compiled.ir.functions),
            "reachable_functions": graph.function_count(),
            "call_graph_nodes": graph.node_count(),
            "call_graph_edges": graph.edge_count(),
            "sdg_statements": analyzed.sdg.statement_count(),
            "sdg_edges": analyzed.sdg.edge_count(),
        }


class AnalysisCache:
    """LRU of :class:`CacheEntry` objects with an optional disk tier.

    Thread-safe: the TCP daemon serves connections from multiple
    threads.  The lock guards the LRU bookkeeping and the counters; the
    analysis itself runs outside the lock (two racing misses on the
    same key both compute, last write wins — wasteful but correct).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_MEMORY_CAPACITY,
        store: DiskStore | None = None,
        fault_plan: "FaultPlan | None" = None,
        executor: ProcessPool | None = None,
        fragments: FragmentStore | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.store = store
        self.fault_plan = fault_plan
        self.executor = executor
        self.fragments = fragments
        if fragments is not None and fragments.loader is None:
            fragments.loader = self._load_for_seed
        #: Replica tier hook: ``replica_fetch(key) -> bytes | None``.
        #: Installed by the daemon when replication is configured.
        self.replica_fetch = None
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0
        self.incremental_hits = 0
        self.replica_hits = 0

    def get_entry(
        self,
        source: str,
        filename: str = "<input>",
        options: AnalyzeOptions | None = None,
        executor_ok: bool = True,
    ) -> tuple[CacheEntry, str]:
        """Return ``(entry, origin)``, origin ∈ memory | disk |
        replica | incremental | analyzed.

        ``executor_ok=False`` forces a cold miss to run in-process even
        when a process executor is attached — the daemon's circuit
        breaker uses it to degrade process→thread after repeated worker
        crashes (see :class:`repro.server.quarantine.CircuitBreaker`).
        """
        options = options or AnalyzeOptions()
        key = cache_key(source, options)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.memory_hits += 1
                return cached, "memory"
        if self.store is not None:
            view = self.store.load_view(key)
            if view is not None:
                entry = CacheEntry(view=view)
                with self._lock:
                    self.disk_hits += 1
                    self._put(key, entry)
                return entry, "disk"
        if self.replica_fetch is not None:
            # Replica level: another ring holder may have this artifact
            # warm.  A hit costs one peer round trip instead of a cold
            # analysis, and the fetched (already-validated) bytes are
            # persisted locally so the *next* miss is a plain disk hit.
            # A fetch failure of any kind is strictly a miss: replica
            # trouble may cost a recompute, never fail the request.
            try:
                payload = self.replica_fetch(key)
            except Exception as exc:  # noqa: BLE001
                logger.warning("replica fetch failed for %s: %s", key, exc)
                payload = None
            if payload is not None:
                entry = CacheEntry(view=ArtifactView.from_buffer(payload))
                with self._lock:
                    self.replica_hits += 1
                    self._put(key, entry)
                if self.store is not None:
                    self.store.save_bytes(key, payload, replicate=False)
                return entry, "replica"
        if self.fragments is not None:
            # Incremental level: if this source is an *edit* of a
            # lineage we hold a session for, re-analyze only the dirty
            # functions.  The payload is byte-identical to cold, so it
            # is promoted into both tiers exactly like a cold result.
            outcome = self.fragments.try_incremental(
                key, source, filename, options
            )
            if outcome is not None:
                entry = CacheEntry(
                    view=ArtifactView.from_buffer(outcome.payload),
                    timings=outcome.timings,
                )
                with self._lock:
                    self.incremental_hits += 1
                    self._put(key, entry)
                if self.store is not None:
                    self.store.save_bytes(key, outcome.payload)
                return entry, "incremental"
        if self.fault_plan is not None:
            # Injected slow analysis / analysis-time faults.  Raising
            # here (BudgetExceeded on cancellation) leaves no cache
            # entry behind, same as a failing real analysis.
            self.fault_plan.on_analysis(options.budget)
        if self.executor is not None and executor_ok:
            entry, payload = self._analyze_in_executor(
                source, filename, options
            )
        else:
            analyzed = analyze(source, filename, options=options)
            entry = CacheEntry(program=analyzed, timings=analyzed.timings)
            payload = None
        with self._lock:
            self.misses += 1
            self._put(key, entry)
        if self.store is not None:
            if payload is not None:
                self.store.save_bytes(key, payload)
            else:
                self.store.save(key, entry.program())
        if self.fragments is not None:
            # A completed cold analysis is the seed material for this
            # lineage's future edits (materialized lazily on the next
            # miss against the same program structure).
            self.fragments.note_cold(key, source, filename, options)
        return entry, "analyzed"

    def get_or_analyze(
        self,
        source: str,
        filename: str = "<input>",
        options: AnalyzeOptions | None = None,
        executor_ok: bool = True,
    ) -> tuple[AnalyzedProgram, str]:
        """Materialized variant of :meth:`get_entry` for callers that
        need the rich object graph."""
        entry, origin = self.get_entry(source, filename, options, executor_ok)
        return entry.program(), origin

    def _analyze_in_executor(
        self, source: str, filename: str, options: AnalyzeOptions
    ) -> tuple[CacheEntry, bytes]:
        """Run one cold analysis on a worker process.

        Returns ``(entry, payload)``: the worker's flat artifact bytes
        plus an entry holding a view over them, with the run's timings
        (shipped out-of-band — they are observability data, not
        artifact content) attached to the entry only.
        """
        inject_crash = False
        inject_delay = 0.0
        inject_alloc = 0.0
        if self.fault_plan is not None:
            inject_crash = self.fault_plan.take_process_crash()
            inject_delay = self.fault_plan.worker_process_delay_s
            inject_alloc = self.fault_plan.worker_alloc_mb
        budget = options.budget
        memory_limit = options.memory_limit_mb
        if budget is not None:
            # Budget tokens cannot cross the process boundary (the
            # parent enforces them by killing the worker); strip before
            # pickling the options for the task message.
            options = replace(options, budget=None)
        try:
            payload, timings = self.executor.run(
                analyze_artifact,
                source,
                filename,
                options,
                memory_limit_mb=memory_limit or 0.0,
                inject_delay_s=inject_delay,
                inject_crash=inject_crash,
                inject_alloc_mb=inject_alloc,
                budget=budget,
                rss_limit_mb=memory_limit,
            )
        except WorkerError as exc:
            if exc.error_type == "ResourceExceeded":
                # The in-worker rlimit backstop fired; re-raise as the
                # same structured error the parent-side RSS sentinel
                # produces, so callers see one taxonomy.
                raise ResourceExceeded("memory", exc.message) from None
            raise
        view = ArtifactView.from_buffer(payload)
        return CacheEntry(view=view, timings=timings), payload

    def _load_for_seed(
        self, key: str, source: str, filename: str, options: AnalyzeOptions
    ) -> tuple[AnalyzedProgram, bytes | None] | None:
        """Retrieve a cold result for session seeding (memory, then
        disk).  Materializing a no-rich artifact re-analyzes from its
        embedded source — the one-time cost of converting a lineage to
        incremental serving; returns None when the result is gone from
        both tiers (the lineage just stays cold)."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is not None:
            payload = None
            view = entry.view
            if view is not None:
                buffer = getattr(view, "_buffer", None)
                if buffer is not None:
                    payload = bytes(buffer)
            try:
                return entry.program(), payload
            except Exception:
                return None
        if self.store is not None:
            payload = self.store.load_payload(key)
            if payload is not None:
                try:
                    program = ArtifactView.from_buffer(
                        payload
                    ).to_analyzed_program()
                except Exception:
                    return None
                return program, payload
        return None

    def invalidate(self, key: str) -> bool:
        """Drop one entry from the memory tier (serve-time degrade).

        The daemon calls this when a slice blows up *inside* a flat
        walk — bytes that passed load-time verification but turned out
        poisoned anyway.  The entry's view is deliberately *not*
        closed: another worker thread may be mid-slice over the same
        mapping, and releasing the buffer under it would turn one bad
        request into a crash.  The mmap is reclaimed when the last
        reference drops.  Returns whether an entry was removed.
        """
        with self._lock:
            return self._entries.pop(key, None) is not None

    def _put(self, key: str, entry: CacheEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            payload: dict[str, Any] = {
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "incremental_hits": self.incremental_hits,
                "replica_hits": self.replica_hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "capacity": self.capacity,
            }
        payload["disk"] = (
            self.store.stats.as_dict() if self.store is not None else None
        )
        payload["fragments"] = (
            self.fragments.stats() if self.fragments is not None else None
        )
        return payload
