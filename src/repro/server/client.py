"""Resilient Python client for the slice server.

Two transports behind one API:

* :meth:`SliceClient.connect` — TCP to a running ``repro serve --tcp``;
* :meth:`SliceClient.spawn` — fork a private stdio daemon as a child
  process (the editor-integration shape: one daemon per tool session).

Requests are synchronous: send one line, read one line.  An error
response raises :class:`ServerError` carrying the structured type.

Resilience:

* every transport failure (broken pipe, reset, timeout, dead child)
  surfaces as a structured :class:`ServerError` — ``"Disconnected"``
  or ``"Timeout"`` — never a raw ``OSError``;
* :meth:`request` retries ``Overloaded`` and ``Disconnected`` failures
  with jittered exponential backoff (``retries`` per call or per
  client), reconnecting the TCP transport as needed.  ``shutdown`` is
  never retried — it is not idempotent (a retry after an ambiguous
  failure could kill a daemon that *did* receive the first attempt and
  already answered someone else's traffic);
* per-request ``deadline`` seconds are forwarded to the server, which
  cancels the analysis cooperatively when they pass.
"""

from __future__ import annotations

import random
import socket
import subprocess
import sys
import time
from typing import Any, Callable, Sequence

from repro.server.protocol import ProtocolError, decode_message, encode_message

#: Error types that are safe to retry: the daemon either never accepted
#: the request (Overloaded is rejected before any work starts) or the
#: connection died (idempotent queries can simply be re-asked).
RETRYABLE = frozenset({"Overloaded", "Disconnected"})

#: Methods that must never be retried automatically.
NON_IDEMPOTENT = frozenset({"shutdown"})

_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 2.0


class ServerError(RuntimeError):
    """An error response from the daemon (or a transport failure).

    ``endpoint`` names the server the failure came from (``host:port``,
    or ``spawn:<pid>`` for a private child daemon).  In router mode the
    router stamps relayed shard errors with the *shard's* address, so a
    failure deep in the tier is attributable from the client side.
    """

    def __init__(
        self, error_type: str, message: str, endpoint: str | None = None
    ) -> None:
        label = f"{error_type}: {message}"
        if endpoint:
            label += f" [from {endpoint}]"
        super().__init__(label)
        self.error_type = error_type
        self.message = message
        self.endpoint = endpoint


def _backoff_delay(attempt: int) -> float:
    """Jittered exponential backoff: attempt 0 → ~50 ms, doubling, capped."""
    delay = min(_BACKOFF_BASE_S * (2**attempt), _BACKOFF_CAP_S)
    return delay * (0.5 + random.random())


class SliceClient:
    def __init__(
        self,
        send_line: Callable[[str], None],
        recv_line: Callable[[], str],
        close: Callable[[], None],
        open_transport: (
            Callable[[], tuple[Callable[[str], None], Callable[[], str], Callable[[], None]]]
            | None
        ) = None,
        retries: int = 2,
        endpoint: str | None = None,
    ) -> None:
        self._send_line = send_line
        self._recv_line = recv_line
        self._close = close
        # Re-dialer for reconnect-on-retry; None for transports that
        # cannot be re-established (a spawned child stays dead).
        self._open_transport = open_transport
        self.retries = retries
        #: Where requests go, for error attribution (``host:port`` or
        #: ``spawn:<pid>``); every :class:`ServerError` this client
        #: raises carries it unless the server named a deeper endpoint.
        self.endpoint = endpoint
        self._next_id = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        timeout: float = 30.0,
        retries: int = 2,
    ) -> "SliceClient":
        def open_transport():
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.settimeout(timeout)
            reader = sock.makefile("r", encoding="utf-8", newline="\n")
            writer = sock.makefile("w", encoding="utf-8", newline="\n")

            def send(line: str) -> None:
                writer.write(line + "\n")
                writer.flush()

            def close() -> None:
                reader.close()
                writer.close()
                sock.close()

            return send, lambda: reader.readline(), close

        send, recv, close = open_transport()
        return cls(
            send,
            recv,
            close,
            open_transport=open_transport,
            retries=retries,
            endpoint=f"{host}:{port}",
        )

    @classmethod
    def spawn(
        cls,
        extra_args: Sequence[str] = (),
        python: str = sys.executable,
        retries: int = 2,
    ) -> "SliceClient":
        """Start ``python -m repro.cli serve`` on pipes and attach to it."""
        process = subprocess.Popen(
            [python, "-m", "repro.cli", "serve", *extra_args],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        assert process.stdin is not None and process.stdout is not None

        def send(line: str) -> None:
            # A dead child surfaces as BrokenPipeError (or ValueError on
            # a closed pipe object); both must become structured errors,
            # not leak to the caller as raw exceptions.
            try:
                process.stdin.write(line + "\n")
                process.stdin.flush()
            except (BrokenPipeError, ValueError, OSError) as exc:
                raise ServerError(
                    "Disconnected",
                    f"server process is gone (exit code {process.poll()}): {exc}",
                ) from exc

        def recv() -> str:
            try:
                return process.stdout.readline()
            except (ValueError, OSError) as exc:
                raise ServerError(
                    "Disconnected",
                    f"server process is gone (exit code {process.poll()}): {exc}",
                ) from exc

        def close() -> None:
            try:
                process.stdin.close()
            except (OSError, ValueError):
                pass
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

        client = cls(
            send, recv, close, retries=retries, endpoint=f"spawn:{process.pid}"
        )
        client.process = process
        return client

    # ------------------------------------------------------------------
    # Core request/response
    # ------------------------------------------------------------------

    def request(
        self,
        method: str,
        *,
        deadline: float | None = None,
        retries: int | None = None,
        **params: Any,
    ) -> dict[str, Any]:
        """Send one request; retry retryable failures with backoff.

        ``deadline`` (seconds) is forwarded to the server, which cancels
        the analysis cooperatively when it passes.  ``retries`` overrides
        the client-wide budget for this call; non-idempotent methods
        (``shutdown``) get exactly one attempt regardless.
        """
        if self._closed:
            raise RuntimeError("client is closed")
        if deadline is not None:
            params["deadline"] = deadline
        budget = self.retries if retries is None else retries
        attempts = 1 if method in NON_IDEMPOTENT else budget + 1
        last: ServerError | None = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(_backoff_delay(attempt - 1))
                if last is not None and last.error_type == "Disconnected":
                    if not self._reconnect_transport():
                        break
            try:
                return self._request_once(method, params)
            except ServerError as exc:
                if exc.error_type not in RETRYABLE or attempt + 1 >= attempts:
                    raise
                last = exc
        assert last is not None
        raise last

    def _request_once(self, method: str, params: dict[str, Any]) -> dict[str, Any]:
        self._next_id += 1
        request_id = self._next_id
        message = encode_message(
            {"id": request_id, "method": method, "params": params}
        )
        try:
            self._send_line(message)
            line = self._recv_line()
        except ServerError as exc:
            if exc.endpoint is None:
                raise ServerError(
                    exc.error_type, exc.message, endpoint=self.endpoint
                ) from exc
            raise
        except (socket.timeout, TimeoutError) as exc:
            raise ServerError(
                "Timeout",
                f"no response from server: {exc}",
                endpoint=self.endpoint,
            ) from exc
        except (ConnectionError, BrokenPipeError, ValueError, OSError) as exc:
            raise ServerError(
                "Disconnected",
                f"transport failure: {exc}",
                endpoint=self.endpoint,
            ) from exc
        if not line:
            raise ServerError(
                "Disconnected",
                "server closed the connection",
                endpoint=self.endpoint,
            )
        try:
            response = decode_message(line)
        except ProtocolError as exc:
            raise ServerError(
                "Protocol", str(exc), endpoint=self.endpoint
            ) from exc
        if response.get("id") != request_id:
            raise ServerError(
                "Protocol",
                f"response id {response.get('id')!r} != request id {request_id}",
                endpoint=self.endpoint,
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            # A routed error may name the shard it came from; prefer
            # that deeper endpoint over this client's own target.
            raise ServerError(
                error.get("type", "Unknown"),
                error.get("message", ""),
                endpoint=error.get("endpoint") or self.endpoint,
            )
        return response["result"]

    def _reconnect_transport(self) -> bool:
        """Re-dial after a disconnect; False when the transport can't be."""
        if self._open_transport is None:
            return False
        try:
            self._close()
        except (OSError, ValueError):
            pass
        try:
            self._send_line, self._recv_line, self._close = self._open_transport()
        except OSError:
            return False
        return True

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def health(self) -> dict[str, Any]:
        return self.request("health")

    def slice(self, source: str, line: int, **params: Any) -> dict[str, Any]:
        return self.request("slice", source=source, line=line, **params)

    def slice_program(self, program: str, line: int, **params: Any) -> dict[str, Any]:
        return self.request("slice", program=program, line=line, **params)

    def slice_batch(
        self,
        *,
        source: str | None = None,
        program: str | None = None,
        lines: Sequence[int] | None = None,
        items: Sequence[dict[str, Any]] | None = None,
        **params: Any,
    ) -> dict[str, Any]:
        """Many seeds in one round trip; see the ``slice_batch`` RPC."""
        if source is not None:
            params["source"] = source
        if program is not None:
            params["program"] = program
        if lines is not None:
            params["lines"] = list(lines)
        if items is not None:
            params["items"] = list(items)
        return self.request("slice_batch", **params)

    def explain(self, source: str, line: int, **params: Any) -> dict[str, Any]:
        return self.request("explain", source=source, line=line, **params)

    def why(
        self, source: str, source_line: int, sink_line: int, **params: Any
    ) -> dict[str, Any]:
        return self.request(
            "why",
            source=source,
            source_line=source_line,
            sink_line=sink_line,
            **params,
        )

    def chop(
        self, source: str, source_line: int, sink_line: int, **params: Any
    ) -> dict[str, Any]:
        return self.request(
            "chop",
            source=source,
            source_line=source_line,
            sink_line=sink_line,
            **params,
        )

    def stats(self, **params: Any) -> dict[str, Any]:
        return self.request("stats", **params)

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._close()

    def __enter__(self) -> "SliceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
