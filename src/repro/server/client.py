"""Thin Python client for the slice server.

Two transports behind one API:

* :meth:`SliceClient.connect` — TCP to a running ``repro serve --tcp``;
* :meth:`SliceClient.spawn` — fork a private stdio daemon as a child
  process (the editor-integration shape: one daemon per tool session).

Requests are synchronous: send one line, read one line.  An error
response raises :class:`ServerError` carrying the structured type.
"""

from __future__ import annotations

import socket
import subprocess
import sys
from typing import Any, Callable, Sequence

from repro.server.protocol import decode_message, encode_message


class ServerError(RuntimeError):
    """An error response from the daemon."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message


class SliceClient:
    def __init__(
        self,
        send_line: Callable[[str], None],
        recv_line: Callable[[], str],
        close: Callable[[], None],
    ) -> None:
        self._send_line = send_line
        self._recv_line = recv_line
        self._close = close
        self._next_id = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def connect(cls, host: str, port: int, timeout: float = 30.0) -> "SliceClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        reader = sock.makefile("r", encoding="utf-8", newline="\n")
        writer = sock.makefile("w", encoding="utf-8", newline="\n")

        def send(line: str) -> None:
            writer.write(line + "\n")
            writer.flush()

        def close() -> None:
            reader.close()
            writer.close()
            sock.close()

        return cls(send, lambda: reader.readline(), close)

    @classmethod
    def spawn(
        cls,
        extra_args: Sequence[str] = (),
        python: str = sys.executable,
    ) -> "SliceClient":
        """Start ``python -m repro.cli serve`` on pipes and attach to it."""
        process = subprocess.Popen(
            [python, "-m", "repro.cli", "serve", *extra_args],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        assert process.stdin is not None and process.stdout is not None

        def send(line: str) -> None:
            process.stdin.write(line + "\n")
            process.stdin.flush()

        def close() -> None:
            try:
                process.stdin.close()
            except OSError:
                pass
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

        client = cls(send, lambda: process.stdout.readline(), close)
        client.process = process
        return client

    # ------------------------------------------------------------------
    # Core request/response
    # ------------------------------------------------------------------

    def request(self, method: str, **params: Any) -> dict[str, Any]:
        if self._closed:
            raise RuntimeError("client is closed")
        self._next_id += 1
        request_id = self._next_id
        self._send_line(
            encode_message(
                {"id": request_id, "method": method, "params": params}
            )
        )
        line = self._recv_line()
        if not line:
            raise ServerError("Disconnected", "server closed the connection")
        response = decode_message(line)
        if response.get("id") != request_id:
            raise ServerError(
                "Protocol",
                f"response id {response.get('id')!r} != request id {request_id}",
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServerError(
                error.get("type", "Unknown"), error.get("message", "")
            )
        return response["result"]

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def slice(self, source: str, line: int, **params: Any) -> dict[str, Any]:
        return self.request("slice", source=source, line=line, **params)

    def slice_program(self, program: str, line: int, **params: Any) -> dict[str, Any]:
        return self.request("slice", program=program, line=line, **params)

    def explain(self, source: str, line: int, **params: Any) -> dict[str, Any]:
        return self.request("explain", source=source, line=line, **params)

    def why(
        self, source: str, source_line: int, sink_line: int, **params: Any
    ) -> dict[str, Any]:
        return self.request(
            "why",
            source=source,
            source_line=source_line,
            sink_line=sink_line,
            **params,
        )

    def chop(
        self, source: str, source_line: int, sink_line: int, **params: Any
    ) -> dict[str, Any]:
        return self.request(
            "chop",
            source=source,
            source_line=source_line,
            sink_line=sink_line,
            **params,
        )

    def stats(self, **params: Any) -> dict[str, Any]:
        return self.request("stats", **params)

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._close()

    def __enter__(self) -> "SliceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
