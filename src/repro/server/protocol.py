"""Wire format: one JSON object per line, in both directions.

Requests::

    {"id": 1, "method": "slice", "params": {"program": "figure2", "line": 26}}

Responses::

    {"id": 1, "ok": true, "result": {...}}
    {"id": 1, "ok": false, "error": {"type": "NoStatements", "message": "..."}}

``id`` is echoed verbatim so clients can pipeline requests; a response
to an unparseable line carries ``"id": null``.  The payload builders at
the bottom are shared by the daemon and by ``--format json`` in the
CLI, so batch and server output stay byte-identical.
"""

from __future__ import annotations

import json
from typing import Any

from repro import AnalyzedProgram
from repro.slicing.chopping import ChopResult
from repro.slicing.engine import SliceResult

PROTOCOL_VERSION = 1


class ProtocolError(Exception):
    """A line that is not a well-formed request object."""


def encode_message(message: dict[str, Any]) -> str:
    """Render one message as a single line (no embedded newlines)."""
    return json.dumps(message, separators=(",", ":"), sort_keys=True)


def decode_message(line: str) -> dict[str, Any]:
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


def ok_response(request_id: Any, result: dict[str, Any]) -> dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id: Any, error_type: str, message: str
) -> dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": error_type, "message": message},
    }


# ----------------------------------------------------------------------
# Result payloads (shared with the CLI's --format json)
# ----------------------------------------------------------------------


def slice_payload(
    result: SliceResult,
    *,
    program: str,
    line: int,
    flavor: str,
    context: int = 0,
) -> dict[str, Any]:
    return {
        "program": program,
        "flavor": flavor,
        "seed_line": line,
        "seed_count": len(result.seeds),
        "lines": sorted(result.lines),
        "line_count": len(result.lines),
        "statement_count": len(result.statements),
        "source_view": result.source_view(context=context),
    }


def slice_batch_payload(
    results: list[dict[str, Any]], *, distinct_programs: int
) -> dict[str, Any]:
    """Envelope for ``slice_batch``: per-seed :func:`slice_payload`
    dicts in request order, plus how many distinct analyses fed them."""
    return {
        "count": len(results),
        "distinct_programs": distinct_programs,
        "results": results,
    }


def stats_payload(analyzed: AnalyzedProgram, program: str) -> dict[str, Any]:
    graph = analyzed.pts.call_graph
    counts = {
        "classes": len(analyzed.compiled.table.classes),
        "functions_ir": len(analyzed.compiled.ir.functions),
        "reachable_functions": graph.function_count(),
        "call_graph_nodes": graph.node_count(),
        "call_graph_edges": graph.edge_count(),
        "sdg_statements": analyzed.sdg.statement_count(),
        "sdg_edges": analyzed.sdg.edge_count(),
    }
    return stats_payload_from_counts(
        counts, program=program, timings=analyzed.timings
    )


def stats_payload_from_counts(
    counts: dict[str, Any],
    *,
    program: str,
    timings: dict[str, Any] | None,
) -> dict[str, Any]:
    """:func:`stats_payload` from pre-extracted counts.

    A flat artifact carries the counts in its META section, so the
    daemon can answer ``stats`` for a warm entry without materializing
    the object graph.  The field set is pinned here (extra keys in
    ``counts`` are ignored) so both construction paths stay identical.
    """
    return {
        "program": program,
        "classes": counts["classes"],
        "functions_ir": counts["functions_ir"],
        "reachable_functions": counts["reachable_functions"],
        "call_graph_nodes": counts["call_graph_nodes"],
        "call_graph_edges": counts["call_graph_edges"],
        "sdg_statements": counts["sdg_statements"],
        "sdg_edges": counts["sdg_edges"],
        "timings": timings,
    }


def explain_payload(
    analyzed: AnalyzedProgram, *, program: str, line: int
) -> dict[str, Any]:
    from repro.slicing.expansion import control_explainers

    lines = analyzed.compiled.source.lines()
    conditionals: list[dict[str, Any]] = []
    seen: set[int] = set()
    for instr in analyzed.compiled.instructions_at_line(line):
        if not analyzed.sdg.nodes_of_instruction(instr):
            continue
        for conditional in control_explainers(analyzed.sdg, instr).conditionals:
            conditional_line = conditional.position.line
            if conditional_line in seen or not (
                1 <= conditional_line <= len(lines)
            ):
                continue
            seen.add(conditional_line)
            conditionals.append(
                {
                    "line": conditional_line,
                    "text": lines[conditional_line - 1].strip(),
                }
            )
    conditionals.sort(key=lambda entry: entry["line"])
    return {"program": program, "line": line, "conditionals": conditionals}


def why_payload(
    analyzed: AnalyzedProgram,
    *,
    program: str,
    source_line: int,
    sink_line: int,
) -> dict[str, Any]:
    from repro.tooling.navigator import Navigator

    navigator = Navigator(analyzed.compiled, analyzed.sdg)
    path = navigator.why(source_line, sink_line)
    payload: dict[str, Any] = {
        "program": program,
        "source_line": source_line,
        "sink_line": sink_line,
        "found": path is not None,
        "path": [],
        "rendered": "",
    }
    if path is not None:
        payload["path"] = [
            {
                "line": step.line,
                "kinds": sorted(kind.value for kind in step.kinds),
                "text": step.text,
            }
            for step in path
        ]
        payload["rendered"] = navigator.render_path(path)
    return payload


def chop_payload(
    result: ChopResult,
    analyzed: AnalyzedProgram,
    *,
    program: str,
    source_line: int,
    sink_line: int,
    flavor: str,
) -> dict[str, Any]:
    lines = analyzed.compiled.source.lines()
    rows = [
        {"line": line, "text": lines[line - 1].strip()}
        for line in sorted(result.lines)
        if 1 <= line <= len(lines)
    ]
    return {
        "program": program,
        "flavor": flavor,
        "source_line": source_line,
        "sink_line": sink_line,
        "empty": result.empty,
        "lines": rows,
        "line_count": len(rows),
    }
