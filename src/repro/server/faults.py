"""Fault injection for the serving stack (tests and chaos drills).

A :class:`FaultPlan` is a small bag of failure dials that the serving
components consult at well-defined points:

* :class:`~repro.server.daemon.SliceServer` — before a worker runs a
  query it calls :meth:`FaultPlan.on_worker` (injected worker
  exceptions), and the TCP handler calls :meth:`FaultPlan.drop_connection`
  before writing each response (torn connections);
* :class:`~repro.server.cache.AnalysisCache` — on a cache miss it calls
  :meth:`FaultPlan.on_analysis` before running the real pipeline
  (deliberately slow analyses, budget-aware so cancellation works);
* :class:`~repro.server.store.DiskStore` — :meth:`FaultPlan.torn_write`
  replaces the next N atomic saves with a truncated write straight to
  the final path, simulating a crash that bypassed the temp-file dance.

Every hook is a no-op on a default-constructed plan, and ``None`` plans
cost one attribute check — production paths pay nothing.  Counter-style
faults (``worker_errors``, ``torn_writes``, ``connection_drops``) are
consumed atomically, so concurrent requests trip each fault exactly the
requested number of times.

``tests/test_faults.py`` drives every fault through the real daemon and
asserts it keeps answering with correct counters afterwards.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.budget import Budget


class InjectedFault(RuntimeError):
    """An artificial failure raised by a :class:`FaultPlan` hook."""


@dataclass
class FaultPlan:
    """Failure dials consumed by the serving components.

    ``analysis_delay_s`` applies to *every* cold analysis while set;
    the integer dials are one-shot counters (each trip decrements).
    """

    #: Sleep this long inside every cold analysis (cooperatively: the
    #: request budget is polled every ~10 ms, so cancellation still
    #: frees the worker immediately).
    analysis_delay_s: float = 0.0
    #: Raise :class:`InjectedFault` from the next N worker executions.
    worker_errors: int = 0
    #: Replace the next N disk-store saves with a truncated write at
    #: the final artifact path (a torn file, as if the process died
    #: mid-write without the atomic-replace protection).
    torn_writes: int = 0
    #: Close the next N TCP connections instead of writing the response.
    connection_drops: int = 0
    #: Kill the worker *process* (``os._exit``) during the next N
    #: analyses dispatched to a process executor.  Consumed parent-side
    #: at dispatch and shipped to the worker as a task argument, so the
    #: death is observed exactly as a real crash: EOF on the pipe.
    #: Ignored by the thread executor (threads cannot crash in
    #: isolation).
    worker_process_crashes: int = 0
    #: Non-cooperative sleep inside process-executor analyses while set.
    #: Unlike ``analysis_delay_s`` this cannot poll a budget — only a
    #: parent-side deadline kill ends it early, which is exactly what
    #: the deadline drills need.
    worker_process_delay_s: float = 0.0
    #: Hard-kill the owning shard right before the router forwards the
    #: next N requests (the shard-kill chaos drill: the forward then
    #: fails ``Disconnected`` and must re-route via the ring with zero
    #: client-visible failures).  Only spawned shards can be killed;
    #: the counter is consumed either way.
    shard_kills: int = 0
    #: Sleep this long on the router's forwarding path while set (the
    #: shard-slow drill: inflates in-flight occupancy so admission
    #: control sheds load with ``Overloaded``).
    shard_slow_s: float = 0.0
    #: Pin this many MiB of extra RSS inside process-executor analyses
    #: while set (held across several parent poll cycles), so the
    #: memory-sentinel drills can trip ``AnalyzeOptions.memory_limit_mb``
    #: without an actually pathological program.  Ignored by the thread
    #: executor.
    worker_alloc_mb: float = 0.0

    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def _take(self, counter: str) -> bool:
        """Atomically consume one unit of a one-shot fault counter."""
        with self._lock:
            remaining = getattr(self, counter)
            if remaining <= 0:
                return False
            setattr(self, counter, remaining - 1)
            return True

    # ------------------------------------------------------------------
    # Hooks (called by the serving components)
    # ------------------------------------------------------------------

    def on_worker(self, budget: Budget | None = None) -> None:
        """Called by the daemon right before a worker runs a query."""
        if self._take("worker_errors"):
            raise InjectedFault("injected worker failure")

    def on_analysis(self, budget: Budget | None = None) -> None:
        """Called by the cache on a miss, before the real pipeline."""
        delay = self.analysis_delay_s
        if delay <= 0:
            return
        if budget is None:
            budget = Budget()
        budget.sleep(delay)

    def take_process_crash(self) -> bool:
        """Should the next process-executor analysis crash its worker?"""
        return self._take("worker_process_crashes")

    def torn_write(self) -> bool:
        """Should the next disk save be torn?  (Consumes one unit.)"""
        return self._take("torn_writes")

    def drop_connection(self) -> bool:
        """Should this TCP response be dropped?  (Consumes one unit.)"""
        return self._take("connection_drops")

    def on_route(self, pool: "Any", address: str) -> None:
        """Called by the router right before forwarding to ``address``.

        Typed loosely to avoid a circular import; ``pool`` is the
        router's :class:`~repro.server.shardpool.ShardPool`.
        """
        if self.shard_slow_s > 0:
            time.sleep(self.shard_slow_s)
        if self._take("shard_kills"):
            pool.kill_shard(address)
