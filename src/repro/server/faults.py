"""Fault injection for the serving stack (tests and chaos drills).

A :class:`FaultPlan` is a small bag of failure dials that the serving
components consult at well-defined points:

* :class:`~repro.server.daemon.SliceServer` — before a worker runs a
  query it calls :meth:`FaultPlan.on_worker` (injected worker
  exceptions), and the TCP handler calls :meth:`FaultPlan.drop_connection`
  before writing each response (torn connections);
* :class:`~repro.server.cache.AnalysisCache` — on a cache miss it calls
  :meth:`FaultPlan.on_analysis` before running the real pipeline
  (deliberately slow analyses, budget-aware so cancellation works);
* :class:`~repro.server.store.DiskStore` — :meth:`FaultPlan.torn_write`
  replaces the next N atomic saves with a truncated write straight to
  the final path, simulating a crash that bypassed the temp-file dance;
  :meth:`FaultPlan.on_store_load` corrupts the next N stored artifacts
  *before* the store maps them (``bit_flips``, ``truncate_artifacts``,
  ``stale_meta``), drilling the detect → quarantine → recompute path.

The corruptors (:func:`flip_artifact_bit` and friends) rewrite the file
via copy + :func:`os.replace` — a *new inode* — rather than in place.
In-place writes would tear pages out from under every live mmap of the
file (page cache is shared); real bit rot lands on platters, not in
mapped pages, and the new-inode dance reproduces exactly that: already
open views keep their intact bytes, the *next* open sees the damage.

Every hook is a no-op on a default-constructed plan, and ``None`` plans
cost one attribute check — production paths pay nothing.  Counter-style
faults (``worker_errors``, ``torn_writes``, ``connection_drops``) are
consumed atomically, so concurrent requests trip each fault exactly the
requested number of times.

``tests/test_faults.py`` drives every fault through the real daemon and
asserts it keeps answering with correct counters afterwards.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from dataclasses import dataclass, field
from typing import Any

from repro.budget import Budget


class InjectedFault(RuntimeError):
    """An artificial failure raised by a :class:`FaultPlan` hook."""


@dataclass
class FaultPlan:
    """Failure dials consumed by the serving components.

    ``analysis_delay_s`` applies to *every* cold analysis while set;
    the integer dials are one-shot counters (each trip decrements).
    """

    #: Sleep this long inside every cold analysis (cooperatively: the
    #: request budget is polled every ~10 ms, so cancellation still
    #: frees the worker immediately).
    analysis_delay_s: float = 0.0
    #: Raise :class:`InjectedFault` from the next N worker executions.
    worker_errors: int = 0
    #: Replace the next N disk-store saves with a truncated write at
    #: the final artifact path (a torn file, as if the process died
    #: mid-write without the atomic-replace protection).
    torn_writes: int = 0
    #: Close the next N TCP connections instead of writing the response.
    connection_drops: int = 0
    #: Kill the worker *process* (``os._exit``) during the next N
    #: analyses dispatched to a process executor.  Consumed parent-side
    #: at dispatch and shipped to the worker as a task argument, so the
    #: death is observed exactly as a real crash: EOF on the pipe.
    #: Ignored by the thread executor (threads cannot crash in
    #: isolation).
    worker_process_crashes: int = 0
    #: Non-cooperative sleep inside process-executor analyses while set.
    #: Unlike ``analysis_delay_s`` this cannot poll a budget — only a
    #: parent-side deadline kill ends it early, which is exactly what
    #: the deadline drills need.
    worker_process_delay_s: float = 0.0
    #: Hard-kill the owning shard right before the router forwards the
    #: next N requests (the shard-kill chaos drill: the forward then
    #: fails ``Disconnected`` and must re-route via the ring with zero
    #: client-visible failures).  Only spawned shards can be killed;
    #: the counter is consumed either way.
    shard_kills: int = 0
    #: Sleep this long on the router's forwarding path while set (the
    #: shard-slow drill: inflates in-flight occupancy so admission
    #: control sheds load with ``Overloaded``).
    shard_slow_s: float = 0.0
    #: Flip one payload bit in the next N stored artifacts right before
    #: the store maps them (silent bit rot: the file still parses, the
    #: digest check must catch it, quarantine it, and recompute).
    bit_flips: int = 0
    #: Truncate the next N stored artifacts to a prefix before the
    #: store maps them (a torn write that survived a crash).
    truncate_artifacts: int = 0
    #: Rewrite the next N stored artifacts with *valid* digests but a
    #: stale package-version stamp (a bad deploy that mixed store
    #: generations: digests pass, semantic validation must refuse it).
    stale_meta: int = 0
    #: Pin this many MiB of extra RSS inside process-executor analyses
    #: while set (held across several parent poll cycles), so the
    #: memory-sentinel drills can trip ``AnalyzeOptions.memory_limit_mb``
    #: without an actually pathological program.  Ignored by the thread
    #: executor.
    worker_alloc_mb: float = 0.0

    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def _take(self, counter: str) -> bool:
        """Atomically consume one unit of a one-shot fault counter."""
        with self._lock:
            remaining = getattr(self, counter)
            if remaining <= 0:
                return False
            setattr(self, counter, remaining - 1)
            return True

    # ------------------------------------------------------------------
    # Hooks (called by the serving components)
    # ------------------------------------------------------------------

    def on_worker(self, budget: Budget | None = None) -> None:
        """Called by the daemon right before a worker runs a query."""
        if self._take("worker_errors"):
            raise InjectedFault("injected worker failure")

    def on_analysis(self, budget: Budget | None = None) -> None:
        """Called by the cache on a miss, before the real pipeline."""
        delay = self.analysis_delay_s
        if delay <= 0:
            return
        if budget is None:
            budget = Budget()
        budget.sleep(delay)

    def take_process_crash(self) -> bool:
        """Should the next process-executor analysis crash its worker?"""
        return self._take("worker_process_crashes")

    def torn_write(self) -> bool:
        """Should the next disk save be torn?  (Consumes one unit.)"""
        return self._take("torn_writes")

    def drop_connection(self) -> bool:
        """Should this TCP response be dropped?  (Consumes one unit.)"""
        return self._take("connection_drops")

    def on_route(self, pool: "Any", address: str) -> None:
        """Called by the router right before forwarding to ``address``.

        Typed loosely to avoid a circular import; ``pool`` is the
        router's :class:`~repro.server.shardpool.ShardPool`.
        """
        if self.shard_slow_s > 0:
            time.sleep(self.shard_slow_s)
        if self._take("shard_kills"):
            pool.kill_shard(address)

    def on_store_load(self, path: "Any") -> None:
        """Called by the store right before mapping a stored artifact.

        Corrupts the file on disk (new inode — see the module
        docstring) so the very load that follows must detect it.
        Counters are only consumed when the file actually exists, so a
        cold miss does not eat the fault meant for a warm read.
        """
        path = Path(path)
        if not path.exists():
            return
        if self._take("bit_flips"):
            flip_artifact_bit(path)
        elif self._take("truncate_artifacts"):
            truncate_artifact(path)
        elif self._take("stale_meta"):
            stale_artifact_meta(path)


# ----------------------------------------------------------------------
# Artifact corruptors (shared by FaultPlan, tests, and chaos_soak.py).
# Each rewrites via tmp + os.replace — a new inode — so live mmaps of
# the old file keep their intact bytes, exactly like real disk rot.
# ----------------------------------------------------------------------


def _replace_file(path: Path, data: bytes) -> None:
    tmp = path.with_suffix(f".tmp.fault.{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def flip_artifact_bit(
    path: str | Path, position: int | None = None, mask: int = 0x10
) -> None:
    """Flip one bit in the artifact's payload region (silent bit rot).

    Skips the first 12 bytes (magic + format) so the file still *looks*
    like an artifact of the current format — only a digest check can
    tell it rotted.
    """
    path = Path(path)
    blob = bytearray(path.read_bytes())
    floor = min(12, len(blob) - 1)
    if position is None:
        position = max(floor, len(blob) // 2)
    position = min(max(floor, position), len(blob) - 1)
    blob[position] ^= mask & 0xFF or 0x10
    _replace_file(path, bytes(blob))


def truncate_artifact(path: str | Path, keep: int | None = None) -> None:
    """Cut the artifact to a prefix (a torn write that survived)."""
    path = Path(path)
    blob = path.read_bytes()
    if keep is None:
        keep = max(1, len(blob) // 3)
    _replace_file(path, blob[: max(1, min(keep, len(blob)))])


def stale_artifact_meta(path: str | Path, version: str = "0.0.0-stale") -> None:
    """Re-stamp the artifact with a stale package version.

    The file is re-packed, so every digest is *valid* — only semantic
    validation (version/key) can refuse it.  Drills the stale-vs-corrupt
    distinction: this file must be discarded, not quarantined.
    """
    import json

    from repro.artifact.format import pack_sections, parse_sections

    path = Path(path)
    blob = path.read_bytes()
    sections = []
    for tag, (offset, length) in parse_sections(blob).items():
        payload = blob[offset : offset + length]
        if tag == b"META":
            meta = json.loads(payload)
            meta["version"] = version
            payload = json.dumps(meta, sort_keys=True).encode("utf-8")
        sections.append((tag, payload))
    _replace_file(path, pack_sections(sections))
