"""Per-function fragment store: the serving tier's incremental level.

The :class:`~repro.server.cache.AnalysisCache` key is the whole-source
content address — any edit misses it.  The :class:`FragmentStore` sits
between that miss and the cold fallback: it keeps a small LRU of live
:class:`~repro.incremental.IncrementalSession` objects keyed by
``(structure fingerprint, options token)``, so an edited source whose
*structure* (classes, signatures, fields) matches a session's lineage
is re-analyzed function-granularly and served byte-identical to cold.

Sessions are seeded lazily: a miss with no session records a *pending
seed* (the request's key/source), the cold analysis proceeds as usual
and :meth:`note_cold` remembers it; the **next** miss in the same slot
materializes the session from the cached cold result via the injected
``loader`` and then applies its edit.  This keeps session construction
(a deep copy of the full object graph) off the path of sources that
are analyzed once and never edited.

Thread-safety: the store lock guards the LRU and counters; each slot
carries its own lock so edits against one lineage serialize while
different lineages proceed in parallel.  A session that dies mid-edit
(:class:`~repro.incremental.SessionDeadError`, or a budget
cancellation) is discarded and its slot reverts to pending-seed.

**Checkpointing** (PR 10): sessions live in process memory, so a shard
crash or rolling restart used to reset every warm lineage to cold.
When ``checkpoint_dir`` is set, the store writes a small JSON sidecar
per slot — structure fingerprint, options token, per-unit
fingerprints, and the latest artifact key + source — atomically
(tmp + rename) whenever a lineage advances (cold seed recorded,
edit applied).  The sidecar is *not* a session dump: it is the
pending-seed anchor, pointing at an artifact that is already durable
in the disk store (and replicated).  A respawned shard that misses a
slot consults the sidecar, restores the pending seed, and rebuilds
the session through the ordinary lazy materialization path — the
first post-restart edit is function-granular again instead of cold.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable

from repro import AnalyzeOptions
from repro.budget import BudgetExceeded
from repro.incremental import (
    DeclinedError,
    IncrementalOutcome,
    IncrementalSession,
    SessionDeadError,
    split_units,
)

logger = logging.getLogger("repro.server")

DEFAULT_SESSION_CAPACITY = 4

#: Sidecar format version; bumped when the schema changes so a new
#: binary quietly ignores old checkpoints instead of mis-reading them.
CHECKPOINT_VERSION = 1

#: ``loader(key, source, filename, options)`` returns the cold result
#: to seed a session from — ``(analyzed_program, payload_bytes|None)``
#: — or None when it is no longer retrievable.
SeedLoader = Callable[..., "tuple[Any, bytes | None] | None"]


class _Slot:
    """One program lineage: a live session and/or a pending seed."""

    __slots__ = ("lock", "session", "pending")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.session: IncrementalSession | None = None
        # (key, source, filename) of the cold analysis to seed from.
        self.pending: tuple[str, str, str] | None = None


class FragmentStore:
    """LRU of incremental edit sessions plus the counters they feed."""

    def __init__(
        self,
        capacity: int = DEFAULT_SESSION_CAPACITY,
        loader: SeedLoader | None = None,
        checkpoint_dir: Path | str | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.loader = loader
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self._slots: OrderedDict[tuple[str, str], _Slot] = OrderedDict()
        self._lock = threading.Lock()
        self.incremental_hits = 0
        self.incremental_misses = 0
        self.functions_reused = 0
        self.functions_reanalyzed = 0
        self.sessions_seeded = 0
        self.sessions_dropped = 0
        self.sessions_restored = 0
        self.checkpoints_written = 0
        self.checkpoint_errors = 0
        self.declines: dict[str, int] = {}
        self.tiers: dict[str, int] = {}

    # ------------------------------------------------------------------

    def _slot_key(
        self, source: str, options: AnalyzeOptions
    ) -> tuple[str, str] | None:
        try:
            shape = split_units(source)
        except DeclinedError as exc:
            self._decline(exc.reason)
            return None
        return (shape.structure_fingerprint, options.cache_token())

    def _decline(self, reason: str) -> None:
        with self._lock:
            self.incremental_misses += 1
            self.declines[reason] = self.declines.get(reason, 0) + 1

    def _get_slot(self, slot_key: tuple[str, str]) -> _Slot:
        with self._lock:
            slot = self._slots.get(slot_key)
            if slot is None:
                slot = _Slot()
                self._slots[slot_key] = slot
                while len(self._slots) > self.capacity:
                    _, evicted = self._slots.popitem(last=False)
                    if evicted.session is not None:
                        self.sessions_dropped += 1
            else:
                self._slots.move_to_end(slot_key)
            return slot

    # ------------------------------------------------------------------

    def try_incremental(
        self,
        key: str,
        source: str,
        filename: str,
        options: AnalyzeOptions,
    ) -> IncrementalOutcome | None:
        """Attempt to serve the edited ``source`` from a session.

        Returns the outcome (payload byte-identical to a cold analysis)
        or None — in which case the caller falls back to cold and, if a
        seed was registered for this slot, reports the result back via
        :meth:`note_cold`.  :class:`~repro.budget.BudgetExceeded`
        propagates (the request was cancelled, not declined).
        """
        slot_key = self._slot_key(source, options)
        if slot_key is None:
            return None
        slot = self._get_slot(slot_key)
        with slot.lock:
            if slot.session is None and slot.pending is None:
                # Fresh process (crash or rolling restart): the lineage
                # may have a checkpoint sidecar pointing at a durable
                # artifact — restore the pending seed from it.
                self._restore(slot, slot_key)
            if slot.session is None and slot.pending is not None:
                self._materialize(slot, options)
            session = slot.session
            if session is None:
                # Nothing to edit against yet; remember this request so
                # its cold result can seed the lineage.
                slot.pending = (key, source, filename)
                self._decline("no-session")
                return None
            try:
                outcome = session.apply_edit(
                    source, filename, budget=options.budget
                )
            except DeclinedError as exc:
                self._decline(exc.reason)
                return None
            except BudgetExceeded:
                slot.session = None
                slot.pending = (key, source, filename)
                with self._lock:
                    self.sessions_dropped += 1
                raise
            except SessionDeadError as exc:
                slot.session = None
                slot.pending = (key, source, filename)
                with self._lock:
                    self.sessions_dropped += 1
                self._decline(f"session-died:{type(exc.__cause__).__name__}")
                return None
        with self._lock:
            self.incremental_hits += 1
            self.functions_reused += outcome.functions_reused
            self.functions_reanalyzed += outcome.functions_reanalyzed
            self.tiers[outcome.tier] = self.tiers.get(outcome.tier, 0) + 1
        # The edited source's artifact is about to land in the durable
        # store under ``key`` — advance the lineage's crash anchor.
        self._checkpoint(slot_key, key, source, filename)
        return outcome

    def note_cold(
        self, key: str, source: str, filename: str, options: AnalyzeOptions
    ) -> None:
        """Record that a cold analysis for ``source`` just completed.

        If this slot was waiting for a seed, point the pending marker at
        the freshest cold result; materialization stays lazy.
        """
        slot_key = self._slot_key_quiet(source, options)
        if slot_key is None:
            return
        slot = self._get_slot(slot_key)
        with slot.lock:
            if slot.session is None:
                slot.pending = (key, source, filename)
        self._checkpoint(slot_key, key, source, filename)

    def _slot_key_quiet(
        self, source: str, options: AnalyzeOptions
    ) -> tuple[str, str] | None:
        try:
            shape = split_units(source)
        except DeclinedError:
            return None
        return (shape.structure_fingerprint, options.cache_token())

    def _materialize(self, slot: _Slot, options: AnalyzeOptions) -> None:
        """Build the slot's session from its pending cold result.

        Called with the slot lock held.  Failures just clear the seed
        — the lineage reverts to cold until another analysis lands.
        """
        if self.loader is None or slot.pending is None:
            return
        key, source, filename = slot.pending
        loaded = self.loader(key, source, filename, options)
        if loaded is None:
            slot.pending = None
            return
        analyzed, payload = loaded
        try:
            session = IncrementalSession.from_analyzed(
                analyzed, source, payload=payload
            )
        except DeclinedError as exc:
            self._decline(f"seed:{exc.reason}")
            slot.pending = None
            return
        slot.session = session
        slot.pending = None
        with self._lock:
            self.sessions_seeded += 1

    # ------------------------------------------------------------------
    # Checkpoint sidecars
    # ------------------------------------------------------------------

    def _checkpoint_path(self, slot_key: tuple[str, str]) -> Path | None:
        if self.checkpoint_dir is None:
            return None
        digest = hashlib.sha256(
            f"{slot_key[0]}\x00{slot_key[1]}".encode("utf-8")
        ).hexdigest()
        return self.checkpoint_dir / f"{digest[:40]}.json"

    def _checkpoint(
        self, slot_key: tuple[str, str], key: str, source: str, filename: str
    ) -> None:
        """Atomically persist the lineage's pending-seed anchor.

        Best-effort: a full disk or unwritable directory degrades the
        store to its pre-checkpoint behavior (warm state dies with the
        process) — it never fails the request that triggered it.
        """
        path = self._checkpoint_path(slot_key)
        if path is None:
            return
        try:
            shape = split_units(source)
            record = {
                "version": CHECKPOINT_VERSION,
                "structure_fingerprint": slot_key[0],
                "options_token": slot_key[1],
                "key": key,
                "filename": filename,
                "source": source,
                "unit_fingerprints": {
                    unit.name: unit.fingerprint for unit in shape.units
                },
            }
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(
                json.dumps(record, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, path)
            self._trim_checkpoints()
        except (OSError, DeclinedError) as exc:
            with self._lock:
                self.checkpoint_errors += 1
            logger.warning("session checkpoint failed: %s", exc)
            return
        with self._lock:
            self.checkpoints_written += 1

    def _trim_checkpoints(self) -> None:
        """Keep the sidecar population bounded at a small multiple of
        the session capacity, oldest-written first — mirrors the LRU."""
        assert self.checkpoint_dir is not None
        sidecars = sorted(
            self.checkpoint_dir.glob("*.json"),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )
        for stale in sidecars[max(4 * self.capacity, 8):]:
            try:
                stale.unlink()
            except OSError:
                pass

    def _restore(self, slot: _Slot, slot_key: tuple[str, str]) -> None:
        """Repopulate an empty slot's pending seed from its sidecar.

        Called with the slot lock held.  Every validation failure is
        silent — a missing/stale/corrupt sidecar simply means the
        lineage starts cold, exactly as if checkpointing were off.
        """
        path = self._checkpoint_path(slot_key)
        if path is None:
            return
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(record, dict):
            return
        if record.get("version") != CHECKPOINT_VERSION:
            return
        if (
            record.get("structure_fingerprint") != slot_key[0]
            or record.get("options_token") != slot_key[1]
        ):
            return
        key = record.get("key")
        source = record.get("source")
        filename = record.get("filename")
        if not (
            isinstance(key, str)
            and isinstance(source, str)
            and isinstance(filename, str)
        ):
            return
        slot.pending = (key, source, filename)
        with self._lock:
            self.sessions_restored += 1

    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "incremental_hits": self.incremental_hits,
                "incremental_misses": self.incremental_misses,
                "functions_reused": self.functions_reused,
                "functions_reanalyzed": self.functions_reanalyzed,
                "sessions": sum(
                    1 for s in self._slots.values() if s.session is not None
                ),
                "seeds_pending": sum(
                    1 for s in self._slots.values() if s.pending is not None
                ),
                "sessions_seeded": self.sessions_seeded,
                "sessions_dropped": self.sessions_dropped,
                "sessions_restored": self.sessions_restored,
                "checkpoints_written": self.checkpoints_written,
                "checkpoint_errors": self.checkpoint_errors,
                "capacity": self.capacity,
                "declines": dict(sorted(self.declines.items())),
                "tiers": dict(sorted(self.tiers.items())),
            }
