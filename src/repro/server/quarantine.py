"""Poison-input quarantine and the executor circuit breaker.

Two guards against the respawn-storm failure mode: a request whose
analysis *kills a worker process* (crash or memory overrun) gets the
worker respawned and can simply be sent again — and again — burning a
spawn per attempt while the daemon's counters look merely unlucky.

* :class:`Quarantine` tracks worker-killing failures per input
  fingerprint (the content-addressed cache key, so byte-identical
  resubmissions share strikes regardless of filename).  After
  ``threshold`` strikes the fingerprint is quarantined: subsequent
  requests are answered with an immediate structured ``PoisonInput``
  error — no worker dispatch, no respawn — until the daemon restarts.
  The map is a bounded LRU, so an attacker cycling fingerprints cannot
  grow it without bound (evicting a tracked fingerprint just resets its
  strikes).

* :class:`CircuitBreaker` watches pool-level health: ``threshold``
  worker crashes within ``window_s`` — crashing *inputs* rotating too
  fast for per-fingerprint quarantine, or a systemic worker bug — trip
  the breaker and the daemon degrades cold analyses process→thread
  (coarser isolation, but no spawn churn).  After ``cooldown_s`` the
  breaker goes half-open and lets analyses probe the process executor
  again; a clean success closes it, another crash re-opens it.

Both are plain thread-safe state machines with injectable clocks; the
daemon owns one of each and surfaces their ``stats()`` in ``health``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable

#: Worker-killing failures of one fingerprint before it is quarantined.
DEFAULT_POISON_THRESHOLD = 3

#: Bound on tracked fingerprints (LRU eviction beyond this).
DEFAULT_QUARANTINE_CAPACITY = 256

#: Pool-level crashes within the window before the breaker opens.
DEFAULT_BREAKER_THRESHOLD = 5

#: Sliding window (seconds) over which crashes count toward the trip.
DEFAULT_BREAKER_WINDOW_S = 30.0

#: How long the breaker stays open before probing the pool again.
DEFAULT_BREAKER_COOLDOWN_S = 60.0


@dataclass
class _Entry:
    strikes: int = 0
    quarantined: bool = False
    last_error_type: str = ""
    last_message: str = ""


class Quarantine:
    """Bounded LRU of worker-killing input fingerprints."""

    def __init__(
        self,
        threshold: int = DEFAULT_POISON_THRESHOLD,
        capacity: int = DEFAULT_QUARANTINE_CAPACITY,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold = threshold
        self.capacity = capacity
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        self.quarantined_total = 0  # monotonic: fingerprints ever poisoned
        self.rejected_total = 0  # requests answered from quarantine

    def check(self, fingerprint: str) -> str | None:
        """Poison message when quarantined (counts the rejection), else None."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None or not entry.quarantined:
                return None
            self._entries.move_to_end(fingerprint)
            self.rejected_total += 1
            return (
                f"input quarantined after {entry.strikes} worker-killing "
                f"failures (last: {entry.last_error_type}: "
                f"{entry.last_message}); it will not be analyzed again by "
                "this daemon"
            )

    def record_failure(
        self, fingerprint: str, error_type: str, message: str
    ) -> bool:
        """Count one worker-killing failure; True when now quarantined."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                entry = _Entry()
                self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            entry.strikes += 1
            entry.last_error_type = error_type
            entry.last_message = message
            if not entry.quarantined and entry.strikes >= self.threshold:
                entry.quarantined = True
                self.quarantined_total += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return entry.quarantined

    def stats(self) -> dict[str, Any]:
        with self._lock:
            quarantined = sum(
                1 for entry in self._entries.values() if entry.quarantined
            )
            return {
                "size": len(self._entries),
                "quarantined": quarantined,
                "quarantined_total": self.quarantined_total,
                "rejected_total": self.rejected_total,
                "threshold": self.threshold,
                "capacity": self.capacity,
            }


class CircuitBreaker:
    """Pool-health breaker: repeated crashes degrade process→thread."""

    def __init__(
        self,
        threshold: int = DEFAULT_BREAKER_THRESHOLD,
        window_s: float = DEFAULT_BREAKER_WINDOW_S,
        cooldown_s: float = DEFAULT_BREAKER_COOLDOWN_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.window_s = window_s
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._crash_times: deque[float] = deque()
        self._opened_at = 0.0
        self.trips_total = 0

    def _prune(self, now: float) -> None:
        while self._crash_times and now - self._crash_times[0] > self.window_s:
            self._crash_times.popleft()

    def allow_process(self) -> bool:
        """May the next cold analysis use the process executor?"""
        with self._lock:
            if self._state == "closed":
                return True
            now = self._clock()
            if self._state == "open":
                if now - self._opened_at < self.cooldown_s:
                    return False
                self._state = "half_open"
            return True  # half-open: probe traffic is allowed through

    def record_crash(self) -> bool:
        """Count one pool-level worker crash; True when the breaker is
        (now or already) open."""
        with self._lock:
            now = self._clock()
            if self._state == "half_open":
                # The probe crashed: straight back to open.
                self._state = "open"
                self._opened_at = now
                self.trips_total += 1
                self._crash_times.clear()
                return True
            if self._state == "open":
                return True
            self._crash_times.append(now)
            self._prune(now)
            if len(self._crash_times) >= self.threshold:
                self._state = "open"
                self._opened_at = now
                self.trips_total += 1
                self._crash_times.clear()
                return True
            return False

    def record_success(self) -> None:
        """A process-executor analysis completed cleanly."""
        with self._lock:
            if self._state == "half_open":
                self._state = "closed"
                self._crash_times.clear()

    def state(self) -> str:
        with self._lock:
            if (
                self._state == "open"
                and self._clock() - self._opened_at >= self.cooldown_s
            ):
                return "half_open"
            return self._state

    def stats(self) -> dict[str, Any]:
        with self._lock:
            state = self._state
            if (
                state == "open"
                and self._clock() - self._opened_at >= self.cooldown_s
            ):
                state = "half_open"
            return {
                "state": state,
                "recent_crashes": len(self._crash_times),
                "trips_total": self.trips_total,
                "threshold": self.threshold,
                "window_s": self.window_s,
                "cooldown_s": self.cooldown_s,
            }
