"""Shard lifecycle for the sharded serving tier.

A *shard* is one ordinary ``repro serve --tcp`` daemon — admission
control, quarantine, circuit breaker, and the two-tier cache all stay
per-shard, exactly as they are in a single-daemon deployment.  This
module owns everything the router needs to treat N of them as one
service:

* **Attachment** — :meth:`ShardPool.attach` registers an externally
  managed daemon by address; :meth:`ShardPool.spawn_local` forks local
  shard processes on ephemeral ports (reading the bound port back from
  the daemon's structured ``listening`` log line) so ``repro serve
  --shards N`` starts a whole tier with one command.
* **Health** — a background probe thread calls the existing ``health``
  RPC on every shard each interval.  A shard is marked ``unhealthy``
  after ``failure_threshold`` consecutive failures — immediately when
  the failure proves nothing is listening (connection refused, or a
  spawned process that has exited).  A later successful probe marks it
  healthy again; forwarding failures and successes feed the same
  counters, so a dying shard is usually demoted by live traffic before
  the next probe tick.
* **Connection reuse** — each shard keeps a small free-list of
  :class:`~repro.server.client.SliceClient` connections; the router
  borrows one per forwarded request and returns it on success, so warm
  traffic pays no re-dial.  Transport failures discard the connection.
* **Draining** — :meth:`ShardPool.stop` marks every shard draining (no
  new requests are routed to it), politely asks *spawned* shards to
  shut down via the ``shutdown`` RPC, and kills any that linger.
  Externally attached shards are left running — they may be serving
  other routers.
* **Respawn** — a *spawned* shard whose process has exited is restarted
  by the probe thread on the **same port** (the consistent-hash ring is
  built from addresses once, so the reborn shard slots straight back
  into its ring position; the daemon's listener sets
  ``SO_REUSEADDR``, so the rebind wins over ``TIME_WAIT``).  Between
  death and respawn the ring's failover answers that shard's keys from
  its neighbors — zero failed requests, then the tier heals itself.
  Exponential backoff caps the churn when a shard dies at startup
  every time; externally attached shards are never respawned (their
  lifecycle belongs to whoever started them).
"""

from __future__ import annotations

import json
import random
import subprocess
import sys
import threading
import time
from typing import Any

from repro.server.client import ServerError, SliceClient
from repro.server.ring import DEFAULT_REPLICAS

#: Consecutive probe/forward failures before a shard is demoted.
DEFAULT_FAILURE_THRESHOLD = 2

#: Seconds between health-probe rounds.
DEFAULT_PROBE_INTERVAL_S = 1.0

#: Per-probe RPC timeout — probes must never wedge the probe thread.
PROBE_TIMEOUT_S = 2.0

#: How long to wait for a spawned shard to report its bound port.
SPAWN_TIMEOUT_S = 30.0

#: Base delay before re-respawning a shard that died again; doubles per
#: consecutive failed respawn (a shard that cannot hold its port or
#: crashes during startup must not be restarted in a hot loop), with
#: 0.5–1.5x jitter (so N crash-looping shards don't respawn in
#: lockstep) and a hard cap.
RESPAWN_BACKOFF_S = 0.5
RESPAWN_BACKOFF_CAP_S = 30.0

#: A respawned shard that stays up this long is considered stable: its
#: consecutive-respawn count resets, so health distinguishes a
#: crash-*looping* shard (count climbing) from one that bounced once.
RESPAWN_STABLE_S = 10.0


def _respawn_backoff(failures: int) -> float:
    delay = min(
        RESPAWN_BACKOFF_S * (2 ** min(failures, 6)), RESPAWN_BACKOFF_CAP_S
    )
    return delay * (0.5 + random.random())

HEALTHY = "healthy"
UNHEALTHY = "unhealthy"
DRAINING = "draining"


class ShardSpawnError(RuntimeError):
    """A locally spawned shard died before reporting its address."""


class Shard:
    """One daemon endpoint: state, counters, and pooled connections."""

    def __init__(
        self,
        host: str,
        port: int,
        process: subprocess.Popen | None = None,
        request_timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.address = f"{host}:{port}"
        self.process = process
        self.request_timeout = request_timeout
        self.state = HEALTHY
        self.consecutive_failures = 0
        self.forwarded_total = 0
        self.failed_total = 0
        self.last_probe: dict[str, Any] | None = None
        self.last_error: str | None = None
        #: Times this shard's process was resurrected, and the backoff
        #: bookkeeping for the next attempt.
        self.respawns = 0
        self.respawn_failures = 0
        self.next_respawn_at = 0.0
        #: Crash-loop visibility: wall time of the last respawn and how
        #: many respawns happened without a stable stretch between them
        #: (reset once the shard stays healthy RESPAWN_STABLE_S).
        self.last_respawn_ts: float | None = None
        self.consecutive_respawns = 0
        self._respawn_monotonic: float | None = None
        #: Extra ``serve`` CLI args this shard was spawned with; a
        #: respawn must reuse them verbatim (per-shard stores mean the
        #: args differ shard to shard — same port, same store root).
        self.serve_args: list[str] = []
        self._lock = threading.Lock()
        self._free: list[SliceClient] = []

    # -- connections ---------------------------------------------------

    def _dial(self, timeout: float | None = None) -> SliceClient:
        try:
            return SliceClient.connect(
                self.host,
                self.port,
                timeout=timeout if timeout is not None else self.request_timeout,
                retries=0,
            )
        except OSError as exc:
            raise ServerError(
                "Disconnected",
                f"cannot connect to shard: {exc}",
                endpoint=self.address,
            ) from exc

    def call(self, method: str, params: dict[str, Any]) -> dict[str, Any]:
        """One forwarded request on a pooled connection.

        The borrowed client has ``retries=0``: retry policy belongs to
        the router (which re-routes via the ring), not to the per-shard
        transport — a second attempt against a dead shard would only
        add latency before the failover.
        """
        with self._lock:
            client = self._free.pop() if self._free else None
        if client is None:
            client = self._dial()
        try:
            result = client.request(method, **params)
        except ServerError:
            # Whatever the failure, this connection's state is now
            # suspect (a Timeout may leave an unread response in the
            # pipe); never return it to the pool.
            client.close()
            raise
        except BaseException:
            client.close()
            raise
        with self._lock:
            self._free.append(client)
        return result

    def probe(self) -> dict[str, Any]:
        """One ``health`` round trip on a fresh, short-timeout dial."""
        client = self._dial(timeout=PROBE_TIMEOUT_S)
        try:
            return client.health()
        finally:
            client.close()

    def close_connections(self) -> None:
        with self._lock:
            free, self._free = self._free, []
        for client in free:
            try:
                client.close()
            except (OSError, ValueError):
                pass

    def process_exited(self) -> bool:
        return self.process is not None and self.process.poll() is not None

    def snapshot(self) -> dict[str, Any]:
        """Cached state for the router's aggregated ``health`` view —
        never performs I/O, so the aggregate stays fast under failure."""
        with self._lock:
            payload: dict[str, Any] = {
                "state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "forwarded_total": self.forwarded_total,
                "failed_total": self.failed_total,
                "spawned": self.process is not None,
                "respawns": self.respawns,
                "consecutive_respawns": self.consecutive_respawns,
                "last_respawn_ts": self.last_respawn_ts,
                "last_probe": self.last_probe,
            }
            if self.process is not None:
                payload["pid"] = self.process.pid
            if self.last_error is not None:
                payload["last_error"] = self.last_error
        return payload


class ShardPool:
    """The router's view of every shard: membership, health, draining."""

    def __init__(
        self,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        probe_interval_s: float = DEFAULT_PROBE_INTERVAL_S,
        request_timeout: float = 30.0,
        echo_shard_logs: bool = True,
        respawn: bool = True,
        repair_every: int = 0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.probe_interval_s = probe_interval_s
        self.request_timeout = request_timeout
        self.echo_shard_logs = echo_shard_logs
        #: Trigger an anti-entropy ``repair`` pass on every shard each
        #: ``repair_every`` probe rounds (0 = never).  Only meaningful
        #: after :meth:`configure_replication`.
        self.repair_every = repair_every
        self._replication: dict[str, Any] | None = None
        #: Resurrect spawned shards whose process has exited (probes
        #: notice the death; ``respawn=False`` restores the PR 6
        #: demote-only behavior for drills that need a shard to stay
        #: dead).
        self.respawn = respawn
        self.respawns_total = 0
        self._shards: dict[str, Shard] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._probe_thread: threading.Thread | None = None
        self._drains: list[threading.Thread] = []
        self._spawn_python: str = sys.executable
        self._spawn_serve_args: list[str] = []

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def attach(self, host: str, port: int) -> Shard:
        """Register an externally managed daemon as a shard."""
        shard = Shard(host, port, request_timeout=self.request_timeout)
        with self._lock:
            self._shards[shard.address] = shard
        return shard

    def spawn_local(
        self,
        count: int,
        serve_args: list[str] | None = None,
        python: str = sys.executable,
        per_shard_args: list[list[str]] | None = None,
    ) -> list[Shard]:
        """Fork ``count`` local shard daemons on ephemeral ports.

        Each shard is ``python -m repro.cli serve --tcp 127.0.0.1:0``
        plus ``serve_args`` plus its own ``per_shard_args[i]`` (how the
        tier gives each shard a private store root); the bound port is
        read back from the daemon's structured ``listening`` log line
        on stderr, after which a drain thread forwards the shard's
        remaining logs to this process's stderr.  Each shard remembers
        its full arg list so respawns reproduce it exactly.
        """
        self._spawn_python = python
        self._spawn_serve_args = list(serve_args or [])
        if per_shard_args is not None and len(per_shard_args) != count:
            raise ValueError("per_shard_args must have one entry per shard")
        spawned = []
        for index in range(count):
            extra = self._spawn_serve_args + (
                list(per_shard_args[index]) if per_shard_args else []
            )
            process, port = self._spawn_process("127.0.0.1:0", extra)
            shard = Shard(
                "127.0.0.1",
                port,
                process=process,
                request_timeout=self.request_timeout,
            )
            shard.serve_args = extra
            self._start_drain(process, shard.address)
            with self._lock:
                self._shards[shard.address] = shard
            spawned.append(shard)
        return spawned

    def _spawn_process(
        self, bind: str, serve_args: list[str] | None = None
    ) -> tuple[subprocess.Popen, int]:
        """Fork one shard daemon bound to ``bind`` and await its port."""
        args = self._spawn_serve_args if serve_args is None else serve_args
        process = subprocess.Popen(
            [self._spawn_python, "-m", "repro.cli", "serve", "--tcp", bind]
            + args,
            stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            port = self._await_listening(process)
        except Exception:
            process.kill()
            process.wait()
            raise
        return process, port

    def _start_drain(self, process: subprocess.Popen, address: str) -> None:
        drain = threading.Thread(
            target=self._drain_stderr,
            args=(process, address, self.echo_shard_logs),
            name=f"repro-shard-log-{address.rsplit(':', 1)[-1]}",
            daemon=True,
        )
        drain.start()
        self._drains.append(drain)

    @staticmethod
    def _await_listening(process: subprocess.Popen) -> int:
        assert process.stderr is not None
        deadline = time.monotonic() + SPAWN_TIMEOUT_S
        collected: list[str] = []
        while time.monotonic() < deadline:
            line = process.stderr.readline()
            if not line:
                raise ShardSpawnError(
                    "shard exited before listening "
                    f"(exit code {process.poll()}): {''.join(collected)[-500:]}"
                )
            collected.append(line)
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and event.get("event") == "listening":
                return int(event["port"])
        raise ShardSpawnError("shard did not report a port in time")

    @staticmethod
    def _drain_stderr(
        process: subprocess.Popen, address: str, echo: bool = True
    ) -> None:
        """Forward a spawned shard's logs so they are not lost (and so
        the shard never blocks on a full stderr pipe).  With ``echo``
        off the pipe is still drained, just silently."""
        assert process.stderr is not None
        try:
            for line in process.stderr:
                if echo:
                    sys.stderr.write(f"[shard {address}] {line}")
        except (OSError, ValueError):
            pass

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def shard(self, address: str) -> Shard:
        with self._lock:
            return self._shards[address]

    def addresses(self) -> list[str]:
        with self._lock:
            return sorted(self._shards)

    def healthy_addresses(self) -> list[str]:
        with self._lock:
            return sorted(
                address
                for address, shard in self._shards.items()
                if shard.state == HEALTHY
            )

    def snapshot(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            shards = dict(self._shards)
        return {address: shard.snapshot() for address, shard in sorted(shards.items())}

    # ------------------------------------------------------------------
    # Health accounting (fed by probes *and* by forwarding outcomes)
    # ------------------------------------------------------------------

    def note_success(self, address: str, probe: dict[str, Any] | None = None) -> None:
        shard = self.shard(address)
        with shard._lock:
            shard.consecutive_failures = 0
            shard.last_error = None
            if probe is not None:
                shard.last_probe = probe
            if (
                shard.consecutive_respawns
                and shard._respawn_monotonic is not None
                and time.monotonic() - shard._respawn_monotonic
                >= RESPAWN_STABLE_S
            ):
                # The reborn process has stayed up long enough to count
                # as recovered rather than mid-crash-loop.
                shard.consecutive_respawns = 0
            if shard.state != DRAINING:
                shard.state = HEALTHY

    def note_failure(
        self, address: str, error: str, definitely_down: bool = False
    ) -> None:
        """One failed probe or forward.  ``definitely_down`` skips the
        consecutive-failure grace: a refused connection or an exited
        process is not a blip worth waiting out."""
        shard = self.shard(address)
        with shard._lock:
            shard.consecutive_failures += 1
            shard.last_error = error
            if shard.state == DRAINING:
                return
            if definitely_down or shard.consecutive_failures >= self.failure_threshold:
                shard.state = UNHEALTHY

    def _probe_one(self, shard: Shard) -> None:
        if shard.state == DRAINING:
            return
        if shard.process_exited():
            self.note_failure(
                shard.address,
                f"shard process exited with code {shard.process.poll()}",
                definitely_down=True,
            )
            if self.respawn and not self._stop.is_set():
                self._try_respawn(shard)
            return
        try:
            payload = shard.probe()
        except ServerError as exc:
            refused = isinstance(exc.__cause__, ConnectionRefusedError)
            self.note_failure(
                shard.address, str(exc), definitely_down=refused
            )
            return
        if payload.get("shutting_down"):
            self.note_failure(
                shard.address, "shard is shutting down", definitely_down=True
            )
            return
        self.note_success(shard.address, probe=payload)

    def probe_all(self) -> None:
        """One synchronous probe round (the probe thread's body; also
        handy for tests and for a deterministic first round)."""
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            self._probe_one(shard)

    def start_probing(self) -> None:
        if self._probe_thread is not None:
            return
        self._probe_thread = threading.Thread(
            target=self._probe_loop, name="repro-shard-probe", daemon=True
        )
        self._probe_thread.start()

    def _probe_loop(self) -> None:
        rounds = 0
        while not self._stop.wait(self.probe_interval_s):
            self.probe_all()
            rounds += 1
            if self.repair_every and rounds % self.repair_every == 0:
                self.trigger_repair()

    def _try_respawn(self, shard: Shard) -> None:
        """Resurrect a dead spawned shard on its original port.

        Runs on the probe thread.  The shard keeps its ring identity —
        same host:port, same :class:`Shard` object — so no ring rebuild
        and no key reshuffle; only the process and its connections are
        new.  A failed attempt backs off exponentially and leaves the
        shard demoted; the next probe round tries again.
        """
        now = time.monotonic()
        with shard._lock:
            if shard.process is None or now < shard.next_respawn_at:
                return
        shard.close_connections()
        try:
            process, _port = self._spawn_process(
                shard.address, shard.serve_args
            )
        except ShardSpawnError as exc:
            with shard._lock:
                shard.respawn_failures += 1
                shard.next_respawn_at = now + _respawn_backoff(
                    shard.respawn_failures
                )
                shard.last_error = f"respawn failed: {exc}"
            return
        self._start_drain(process, shard.address)
        with shard._lock:
            shard.process = process
            shard.respawns += 1
            shard.consecutive_respawns += 1
            shard.last_respawn_ts = time.time()
            shard._respawn_monotonic = time.monotonic()
            shard.respawn_failures = 0
            shard.next_respawn_at = now + RESPAWN_BACKOFF_S
        with self._lock:
            self.respawns_total += 1
        # A reborn shard starts with an empty replication engine; push
        # the tier's config before any traffic lands on it.
        self._push_replication(shard)
        # Promote immediately if the reborn daemon answers: the ring
        # should not wait a probe round to use a shard that is up.
        try:
            payload = shard.probe()
        except ServerError as exc:
            self.note_failure(shard.address, str(exc))
        else:
            self.note_success(shard.address, probe=payload)

    # ------------------------------------------------------------------
    # Replication config (pushed, because shard ports are ephemeral)
    # ------------------------------------------------------------------

    def configure_replication(
        self, factor: int, ring_replicas: int = DEFAULT_REPLICAS
    ) -> int:
        """Push the replication topology to every shard.

        Runs after the whole tier is listening: the peer list is the
        final address set, clamped ``factor`` total copies per key.
        Stored so respawns and rolling restarts re-push it to reborn
        shards.  Returns how many shards accepted the config.
        """
        with self._lock:
            addresses = sorted(self._shards)
        factor = max(1, min(int(factor), len(addresses)))
        self._replication = {
            "peers": addresses,
            "factor": factor,
            "ring_replicas": ring_replicas,
        }
        accepted = 0
        for address in addresses:
            if self._push_replication(self.shard(address)):
                accepted += 1
        return accepted

    def _push_replication(self, shard: Shard) -> bool:
        config = self._replication
        if config is None:
            return False
        try:
            shard.call(
                "replicate_config",
                {
                    "self_address": shard.address,
                    "peers": config["peers"],
                    "factor": config["factor"],
                    "ring_replicas": config["ring_replicas"],
                },
            )
            return True
        except ServerError as exc:
            with shard._lock:
                shard.last_error = f"replicate_config failed: {exc}"
            return False

    def trigger_repair(self) -> None:
        """Kick a background anti-entropy pass on every healthy shard
        (the probe loop's repair cadence; also handy for drills)."""
        if self._replication is None:
            return
        for address in self.healthy_addresses():
            try:
                self.shard(address).call("repair", {})
            except ServerError:
                pass

    # ------------------------------------------------------------------
    # Drills and draining
    # ------------------------------------------------------------------

    def restart_shard(
        self, address: str, drain_timeout_s: float = 30.0
    ) -> dict[str, Any]:
        """Zero-downtime restart of one spawned shard.

        Drain (the router stops routing new work here) → wait for
        in-flight requests to finish → polite ``shutdown`` → wait for
        the process to exit → respawn on the **original port** with the
        original args (same ring slot, same store root) → re-push
        replication config → verify health.  Raises
        :class:`ShardSpawnError` if the reborn shard never answers; the
        shard is left demoted so the probe thread's normal heal path
        owns it from there.
        """
        shard = self.shard(address)
        if shard.process is None:
            raise ValueError(f"{address} is externally managed; not restarting")
        started = time.monotonic()
        with shard._lock:
            shard.state = DRAINING
        try:
            # In-flight work finishes; nothing new is routed to a
            # draining shard, so busy+queued can only go down.
            deadline = time.monotonic() + drain_timeout_s
            while time.monotonic() < deadline:
                try:
                    payload = shard.probe()
                except ServerError:
                    break
                if not payload.get("busy") and not payload.get("queued"):
                    break
                time.sleep(0.05)
            shard.close_connections()
            if shard.process.poll() is None:
                try:
                    client = shard._dial(timeout=5.0)
                    try:
                        client.shutdown()
                    finally:
                        client.close()
                except ServerError:
                    pass
                try:
                    shard.process.wait(timeout=drain_timeout_s)
                except subprocess.TimeoutExpired:
                    shard.process.kill()
                    shard.process.wait()
            process, _port = self._spawn_process(
                shard.address, shard.serve_args
            )
        except Exception:
            # Leave the shard demoted (not draining) so probes resume
            # respawn attempts through the normal heal path.
            with shard._lock:
                shard.state = UNHEALTHY
            raise
        self._start_drain(process, shard.address)
        with shard._lock:
            shard.process = process
            shard.respawns += 1
            shard.consecutive_respawns += 1
            shard.last_respawn_ts = time.time()
            shard._respawn_monotonic = time.monotonic()
        with self._lock:
            self.respawns_total += 1
        self._push_replication(shard)
        payload = None
        last_error: ServerError | None = None
        deadline = time.monotonic() + drain_timeout_s
        while time.monotonic() < deadline:
            try:
                payload = shard.probe()
                break
            except ServerError as exc:
                last_error = exc
                time.sleep(0.1)
        if payload is None:
            with shard._lock:
                shard.state = UNHEALTHY
            raise ShardSpawnError(
                f"restarted shard {address} never answered health: {last_error}"
            )
        with shard._lock:
            shard.state = HEALTHY
            shard.consecutive_failures = 0
            shard.last_probe = payload
            shard.last_error = None
        return {
            "address": address,
            "pid": shard.process.pid,
            "duration_s": round(time.monotonic() - started, 3),
        }

    def kill_shard(self, address: str) -> bool:
        """Hard-kill a *spawned* shard (the chaos drill's hammer).
        Returns False for externally attached shards."""
        shard = self.shard(address)
        if shard.process is None:
            return False
        shard.process.kill()
        shard.process.wait()
        return True

    def stop(self, drain_timeout_s: float = 5.0) -> None:
        """Drain the tier: stop probing, stop routing, stop spawned shards."""
        self._stop.set()
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=drain_timeout_s)
            self._probe_thread = None
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            with shard._lock:
                shard.state = DRAINING
        for shard in shards:
            shard.close_connections()
            if shard.process is None or shard.process.poll() is not None:
                continue
            try:
                client = shard._dial(timeout=2.0)
                try:
                    client.shutdown()
                finally:
                    client.close()
            except ServerError:
                pass
            try:
                shard.process.wait(timeout=drain_timeout_s)
            except subprocess.TimeoutExpired:
                shard.process.kill()
                shard.process.wait()
