"""Consistent hash ring: which shard owns which ``source_fingerprint``.

The sharded tier's whole point is artifact locality — every program's
analyzed SDG should be hot in exactly one shard's LRU.  A modulo hash
would remap nearly every fingerprint whenever a shard joins or leaves;
a consistent-hash ring remaps only the ~1/N of keys whose arc the
changed node owned, so a shard failure warms the survivors instead of
flushing the whole tier.

Mechanics (the classic Karger construction):

* each node is hashed onto the ring at ``replicas`` pseudo-random
  points (virtual nodes), which smooths ownership toward fair 1/N
  shares — the more replicas, the tighter the balance;
* a key is owned by the first node point at or clockwise-after its own
  hash position;
* :meth:`HashRing.preference` walks further clockwise collecting each
  *distinct* node once — the failover order: when the owner is down,
  the next-healthy node in preference order takes the request (and,
  symmetrically, inherits the arc if the owner leaves for good).

Everything is derived from SHA-256, so placement is deterministic
across processes, Python versions, and restarts — two routers in front
of the same shard list route identically without coordination.
"""

from __future__ import annotations

import bisect
import hashlib

DEFAULT_REPLICAS = 64

#: The ring coordinate space: the first 8 bytes of a SHA-256 digest.
_SPACE = 1 << 64


def _hash64(data: str) -> int:
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Deterministic consistent-hash ring over opaque node names."""

    def __init__(
        self, nodes: list[str] | tuple[str, ...] = (), replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: list[int] = []  # sorted ring positions
        self._owners: dict[int, str] = {}  # position -> node
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = _hash64(f"{node}#{replica}")
            # A 64-bit collision between distinct (node, replica) pairs
            # is astronomically unlikely; first writer keeps the point.
            if point in self._owners:
                continue
            bisect.insort(self._points, point)
            self._owners[point] = node

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [p for p in self._points if self._owners[p] != node]
        self._owners = {
            p: n for p, n in self._owners.items() if n != node
        }

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def owner(self, key: str) -> str:
        """The node owning ``key``; raises on an empty ring."""
        if not self._points:
            raise LookupError("hash ring is empty")
        index = bisect.bisect_right(self._points, _hash64(key))
        if index == len(self._points):
            index = 0  # wrap: the lowest point owns the top arc
        return self._owners[self._points[index]]

    def preference(self, key: str) -> list[str]:
        """All nodes in clockwise walk order from ``key`` — the owner
        first, then each distinct successor: the failover order."""
        if not self._points:
            return []
        start = bisect.bisect_right(self._points, _hash64(key))
        ordered: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            node = self._owners[point]
            if node not in seen:
                seen.add(node)
                ordered.append(node)
                if len(seen) == len(self._nodes):
                    break
        return ordered

    def replicas_for(self, key: str, count: int) -> list[str]:
        """The ``count`` distinct nodes holding copies of ``key`` — the
        owner first, then its clockwise successors.

        ``count`` is the *total* copy count (owner included), clamped to
        the ring size: asking for 3 copies on a 2-node ring returns both
        nodes.  Because the list is a prefix of :meth:`preference`, the
        router's failover walk visits exactly the nodes that hold a
        replica before falling through to nodes that would recompute.
        """
        if count < 1:
            raise ValueError("replica count must be >= 1")
        return self.preference(key)[:count]

    def ownership(self) -> dict[str, float]:
        """Fraction of the hash space each node owns (sums to ~1.0)."""
        if not self._points:
            return {}
        shares: dict[str, float] = {node: 0.0 for node in self._nodes}
        for index, point in enumerate(self._points):
            previous = self._points[index - 1]  # [-1] wraps: the top arc
            arc = (point - previous) % _SPACE or _SPACE
            shares[self._owners[point]] += arc / _SPACE
        return shares
