"""Lowering from the typed MJ AST to the CFG IR.

One IR function is produced per method, per constructor (synthesized when
a class declares none), and per class with static field initializers
(``<clinit>``).  The builder relies on the resolutions recorded by the
type checker and never re-resolves names.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.errors import IRBuildError
from repro.lang.source import Position
from repro.lang.symbols import ClassTable
from repro.lang.types import BOOLEAN, ClassType, INT, STRING, Type, VOID
from repro.ir import instructions as ins
from repro.ir.cfg import BasicBlock, IRFunction, IRProgram, TryRegion


def build_program(program: ast.Program, table: ClassTable) -> IRProgram:
    """Lower every method of ``program`` into an :class:`IRProgram`."""
    ir_program = IRProgram(table)
    for decl in program.classes:
        info = table.info(decl.name)
        static_inits = [f for f in decl.fields if f.is_static and f.init is not None]
        if static_inits:
            builder = _FunctionBuilder(table, decl, None)
            ir_program.add_function(builder.build_clinit(static_inits))
        ctor = info.constructor
        builder = _FunctionBuilder(table, decl, ctor)
        ir_program.add_function(builder.build_constructor())
        for method in info.methods.values():
            builder = _FunctionBuilder(table, decl, method)
            ir_program.add_function(builder.build_method())
    ir_program.finalize()
    return ir_program


def qualified_name(class_name: str, method_name: str) -> str:
    return f"{class_name}.{method_name}"


class _LoopContext:
    """Break/continue targets for the innermost enclosing loop."""

    def __init__(self, break_target: int, continue_target: int) -> None:
        self.break_target = break_target
        self.continue_target = continue_target


class _FunctionBuilder:
    """Builds the IR of one function."""

    def __init__(
        self,
        table: ClassTable,
        class_decl: ast.ClassDecl,
        method: ast.MethodDecl | None,
    ) -> None:
        self.table = table
        self.class_decl = class_decl
        self.method = method
        self.function: IRFunction | None = None
        self.current: BasicBlock | None = None
        self._scopes: list[dict[str, str]] = []
        self._var_counter = 0
        self._loops: list[_LoopContext] = []
        self._active_regions: list[TryRegion] = []

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def build_method(self) -> IRFunction:
        method = self.method
        assert method is not None and not method.is_constructor
        self._start_function(method.name, method)
        self._push_scope()
        self._stmt(method.body)
        self._pop_scope()
        self._seal()
        return self._finish()

    def build_constructor(self) -> IRFunction:
        method = self.method  # may be None: synthesized default ctor
        name = "<init>"
        self._start_function(name, method)
        self._push_scope()
        body_stmts = list(method.body.statements) if method is not None else []
        explicit_super: ast.SuperCall | None = None
        if body_stmts and isinstance(body_stmts[0], ast.ExprStmt):
            first = body_stmts[0].expr
            if isinstance(first, ast.SuperCall):
                explicit_super = first
                body_stmts = body_stmts[1:]
        self._emit_super_call(explicit_super)
        self._emit_instance_field_inits()
        for stmt in body_stmts:
            self._stmt(stmt)
        self._pop_scope()
        self._seal()
        return self._finish()

    def build_clinit(self, static_inits: list[ast.FieldDecl]) -> IRFunction:
        self._start_function("<clinit>", None, static=True)
        self._push_scope()
        for field_decl in static_inits:
            assert field_decl.init is not None
            value = self._expr(field_decl.init)
            self._emit(
                ins.StaticStore(
                    field_decl.position,
                    self.class_decl.name,
                    field_decl.name,
                    value,
                )
            )
        self._pop_scope()
        self._seal()
        return self._finish()

    # ------------------------------------------------------------------
    # Function plumbing
    # ------------------------------------------------------------------

    def _start_function(
        self, method_name: str, method: ast.MethodDecl | None, static: bool = False
    ) -> None:
        class_name = self.class_decl.name
        if method is not None:
            is_static = method.is_static and not method.is_constructor
            params = [] if is_static else ["this"]
            param_types: list[Type] = [] if is_static else [ClassType(class_name)]
            for param in method.params:
                params.append(param.name)
                param_types.append(param.declared_type)
            return_type = method.return_type
        else:
            is_static = static
            params = [] if static else ["this"]
            param_types = [] if static else [ClassType(class_name)]
            return_type = VOID
        self.function = IRFunction(
            qualified_name(class_name, method_name),
            class_name,
            method_name,
            params,
            param_types,
            return_type,
            is_static,
        )
        self.current = self.function.block(self.function.entry_block)
        # Parameters are pre-bound names in the outermost scope.
        self._scopes = [{p: p for p in params}]

    def _seal(self) -> None:
        """Terminate any fall-through block with an implicit return."""
        assert self.function is not None
        for block in self.function.blocks.values():
            if block.terminator is None:
                position = (
                    block.instructions[-1].position
                    if block.instructions
                    else Position(0, 0, "<synthetic>")
                )
                block.instructions.append(ins.Return(position, None))

    def _finish(self) -> IRFunction:
        assert self.function is not None
        self.function.prune_unreachable()
        return self.function

    def _emit(self, instr: ins.Instruction) -> ins.Instruction:
        assert self.current is not None
        if self.current.terminator is not None:
            # Unreachable code (after return/throw/break); emit into a
            # fresh dangling block that pruning will remove.
            self.current = self.function.new_block()
        self.current.instructions.append(instr)
        return instr

    def _switch_to(self, block: BasicBlock) -> None:
        self.current = block

    def _goto(self, target: int, position: Position) -> None:
        assert self.current is not None
        if self.current.terminator is None:
            self.current.instructions.append(ins.Goto(position, target))

    def _temp(self) -> str:
        assert self.function is not None
        return self.function.new_temp()

    # ------------------------------------------------------------------
    # Scopes
    # ------------------------------------------------------------------

    def _push_scope(self) -> None:
        self._scopes.append({})

    def _pop_scope(self) -> None:
        self._scopes.pop()

    def _declare_var(self, name: str) -> str:
        ir_name = f"{name}~{self._var_counter}"
        self._var_counter += 1
        self._scopes[-1][name] = ir_name
        return ir_name

    def _lookup_var(self, name: str) -> str:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise IRBuildError(f"unresolved local {name} (typechecker bug?)")

    # ------------------------------------------------------------------
    # Constructor helpers
    # ------------------------------------------------------------------

    def _emit_super_call(self, explicit: ast.SuperCall | None) -> None:
        superclass = self.class_decl.superclass or "Object"
        if explicit is not None:
            args = [self._expr(a) for a in explicit.args]
            if superclass != "Object":
                self._emit(
                    ins.Call(
                        explicit.position,
                        None,
                        "special",
                        superclass,
                        "<init>",
                        "this",
                        args,
                    )
                )
            return
        if superclass != "Object":
            self._emit(
                ins.Call(
                    self.class_decl.position,
                    None,
                    "special",
                    superclass,
                    "<init>",
                    "this",
                    [],
                )
            )

    def _emit_instance_field_inits(self) -> None:
        for field_decl in self.class_decl.fields:
            if field_decl.is_static or field_decl.init is None:
                continue
            value = self._expr(field_decl.init)
            self._emit(
                ins.FieldStore(
                    field_decl.position,
                    "this",
                    field_decl.name,
                    self.class_decl.name,
                    value,
                )
            )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> None:
        handler = getattr(self, "_stmt_" + type(stmt).__name__, None)
        if handler is None:
            raise IRBuildError(
                f"cannot lower statement {type(stmt).__name__}", stmt.position
            )
        handler(stmt)

    def _stmt_Block(self, stmt: ast.Block) -> None:
        self._push_scope()
        for child in stmt.statements:
            self._stmt(child)
        self._pop_scope()

    def _stmt_VarDecl(self, stmt: ast.VarDecl) -> None:
        if stmt.init is not None:
            value = self._expr(stmt.init)
        else:
            value = self._default_value(stmt.declared_type, stmt.position)
        ir_name = self._declare_var(stmt.name)
        self._emit(ins.Move(stmt.position, ir_name, value))

    def _default_value(self, declared: Type, position: Position) -> str:
        temp = self._temp()
        if declared == INT:
            self._emit(ins.Const(position, temp, 0))
        elif declared == BOOLEAN:
            self._emit(ins.Const(position, temp, False))
        else:
            self._emit(ins.Const(position, temp, None))
        return temp

    def _stmt_ExprStmt(self, stmt: ast.ExprStmt) -> None:
        self._expr(stmt.expr, want_value=False)

    def _stmt_Assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.VarRef) and target.resolution is not None:
            kind, owner = target.resolution
            if kind == "local":
                self._assign_local(stmt, target.name)
                return
            if kind == "field":
                self._assign_field(stmt, "this", owner, target.name)
                return
            if kind == "static_field":
                self._assign_static(stmt, owner, target.name)
                return
            raise IRBuildError("bad assignment target", stmt.position)
        if isinstance(target, ast.FieldAccess):
            kind, owner = target.resolution or ("", "")
            if kind == "static_field":
                self._assign_static(stmt, owner, target.name)
                return
            base = self._expr(target.target)
            self._assign_field(stmt, base, owner, target.name)
            return
        if isinstance(target, ast.ArrayAccess):
            base = self._expr(target.target)
            index = self._expr(target.index)
            if stmt.op is None:
                value = self._expr(stmt.value)
            else:
                old = self._temp()
                self._emit(ins.ArrayLoad(stmt.position, old, base, index))
                rhs = self._expr(stmt.value)
                value = self._temp()
                self._emit(
                    ins.BinOp(
                        stmt.position,
                        value,
                        stmt.op,
                        old,
                        rhs,
                        self._compound_is_string(stmt),
                    )
                )
            self._emit(ins.ArrayStore(stmt.position, base, index, value))
            return
        raise IRBuildError("bad assignment target", stmt.position)

    def _assign_local(self, stmt: ast.Assign, name: str) -> None:
        ir_name = self._lookup_var(name)
        if stmt.op is None:
            value = self._expr(stmt.value)
            self._emit(ins.Move(stmt.position, ir_name, value))
        else:
            rhs = self._expr(stmt.value)
            result = self._temp()
            self._emit(
                ins.BinOp(
                    stmt.position,
                    result,
                    stmt.op,
                    ir_name,
                    rhs,
                    self._compound_is_string(stmt),
                )
            )
            self._emit(ins.Move(stmt.position, ir_name, result))

    def _compound_is_string(self, stmt: ast.Assign) -> bool:
        return stmt.op == "+" and stmt.target.type == STRING

    def _assign_field(
        self, stmt: ast.Assign, base: str, owner: str, field_name: str
    ) -> None:
        if stmt.op is None:
            value = self._expr(stmt.value)
        else:
            old = self._temp()
            self._emit(ins.FieldLoad(stmt.position, old, base, field_name, owner))
            rhs = self._expr(stmt.value)
            value = self._temp()
            self._emit(
                ins.BinOp(
                    stmt.position,
                    value,
                    stmt.op,
                    old,
                    rhs,
                    self._compound_is_string(stmt),
                )
            )
        self._emit(ins.FieldStore(stmt.position, base, field_name, owner, value))

    def _assign_static(self, stmt: ast.Assign, owner: str, field_name: str) -> None:
        if stmt.op is None:
            value = self._expr(stmt.value)
        else:
            old = self._temp()
            self._emit(ins.StaticLoad(stmt.position, old, owner, field_name))
            rhs = self._expr(stmt.value)
            value = self._temp()
            self._emit(
                ins.BinOp(
                    stmt.position,
                    value,
                    stmt.op,
                    old,
                    rhs,
                    self._compound_is_string(stmt),
                )
            )
        self._emit(ins.StaticStore(stmt.position, owner, field_name, value))

    def _stmt_If(self, stmt: ast.If) -> None:
        assert self.function is not None
        cond = self._expr(stmt.condition)
        then_block = self.function.new_block()
        join_block = self.function.new_block()
        else_target = join_block
        if stmt.else_branch is not None:
            else_target = self.function.new_block()
        self._emit(
            ins.Branch(
                stmt.condition.position, cond, then_block.block_id, else_target.block_id
            )
        )
        self._register_region_block(then_block)
        self._register_region_block(join_block)
        self._switch_to(then_block)
        self._stmt(stmt.then_branch)
        self._goto(join_block.block_id, stmt.position)
        if stmt.else_branch is not None:
            self._register_region_block(else_target)
            self._switch_to(else_target)
            self._stmt(stmt.else_branch)
            self._goto(join_block.block_id, stmt.position)
        self._switch_to(join_block)

    def _stmt_While(self, stmt: ast.While) -> None:
        assert self.function is not None
        header = self.function.new_block()
        body = self.function.new_block()
        exit_block = self.function.new_block()
        for block in (header, body, exit_block):
            self._register_region_block(block)
        self._goto(header.block_id, stmt.position)
        self._switch_to(header)
        cond = self._expr(stmt.condition)
        self._emit(
            ins.Branch(
                stmt.condition.position, cond, body.block_id, exit_block.block_id
            )
        )
        self._loops.append(_LoopContext(exit_block.block_id, header.block_id))
        self._switch_to(body)
        self._stmt(stmt.body)
        self._goto(header.block_id, stmt.position)
        self._loops.pop()
        self._switch_to(exit_block)

    def _stmt_For(self, stmt: ast.For) -> None:
        assert self.function is not None
        self._push_scope()
        if stmt.init is not None:
            self._stmt(stmt.init)
        header = self.function.new_block()
        body = self.function.new_block()
        update = self.function.new_block()
        exit_block = self.function.new_block()
        for block in (header, body, update, exit_block):
            self._register_region_block(block)
        self._goto(header.block_id, stmt.position)
        self._switch_to(header)
        if stmt.condition is not None:
            cond = self._expr(stmt.condition)
            self._emit(
                ins.Branch(
                    stmt.condition.position, cond, body.block_id, exit_block.block_id
                )
            )
        else:
            self._goto(body.block_id, stmt.position)
        self._loops.append(_LoopContext(exit_block.block_id, update.block_id))
        self._switch_to(body)
        self._stmt(stmt.body)
        self._goto(update.block_id, stmt.position)
        self._loops.pop()
        self._switch_to(update)
        if stmt.update is not None:
            self._stmt(stmt.update)
        self._goto(header.block_id, stmt.position)
        self._switch_to(exit_block)
        self._pop_scope()

    def _stmt_Return(self, stmt: ast.Return) -> None:
        value = None
        if stmt.value is not None:
            value = self._expr(stmt.value)
        self._emit(ins.Return(stmt.position, value))

    def _stmt_Break(self, stmt: ast.Break) -> None:
        if not self._loops:
            raise IRBuildError("break outside loop", stmt.position)
        self._goto(self._loops[-1].break_target, stmt.position)

    def _stmt_Continue(self, stmt: ast.Continue) -> None:
        if not self._loops:
            raise IRBuildError("continue outside loop", stmt.position)
        self._goto(self._loops[-1].continue_target, stmt.position)

    def _stmt_Throw(self, stmt: ast.Throw) -> None:
        value = self._expr(stmt.value)
        self._emit(ins.Throw(stmt.position, value))

    def _stmt_TryCatch(self, stmt: ast.TryCatch) -> None:
        assert self.function is not None
        try_block = self.function.new_block()
        catch_block = self.function.new_block()
        join_block = self.function.new_block()
        self._register_region_block(try_block)
        self._register_region_block(catch_block)
        self._register_region_block(join_block)
        self._goto(try_block.block_id, stmt.position)

        exc_type = stmt.exc_type
        exc_class = exc_type.name if isinstance(exc_type, ClassType) else "Object"
        catch_entry = ins.CatchEntry(stmt.position, self._temp(), exc_class)
        region = TryRegion(
            blocks={try_block.block_id},
            catch_block=catch_block.block_id,
            catch_entry=catch_entry,
            exc_class=exc_class,
        )
        self.function.try_regions.append(region)
        self._active_regions.append(region)
        self._switch_to(try_block)
        self._stmt(stmt.try_block)
        self._goto(join_block.block_id, stmt.position)
        self._active_regions.pop()
        # Every block of the region may raise into the catch handler.
        for block_id in region.blocks:
            block = self.function.blocks.get(block_id)
            if block is not None and catch_block.block_id not in block.exc_successors:
                block.exc_successors.append(catch_block.block_id)

        self._switch_to(catch_block)
        catch_block.instructions.append(catch_entry)
        self._push_scope()
        exc_var = self._declare_var(stmt.exc_name)
        self._emit(ins.Move(stmt.position, exc_var, catch_entry.dest))
        self._stmt(stmt.catch_block)
        self._pop_scope()
        self._goto(join_block.block_id, stmt.position)
        self._switch_to(join_block)

    def _register_region_block(self, block: BasicBlock) -> None:
        """New blocks created inside an active try region belong to it."""
        for region in self._active_regions:
            region.blocks.add(block.block_id)

    # ------------------------------------------------------------------
    # Expressions — each returns the variable holding the value
    # ------------------------------------------------------------------

    def _expr(self, expr: ast.Expr, want_value: bool = True) -> str:
        handler = getattr(self, "_expr_" + type(expr).__name__, None)
        if handler is None:
            raise IRBuildError(
                f"cannot lower expression {type(expr).__name__}", expr.position
            )
        return handler(expr, want_value)

    def _expr_IntLit(self, expr: ast.IntLit, want_value: bool) -> str:
        temp = self._temp()
        self._emit(ins.Const(expr.position, temp, expr.value))
        return temp

    def _expr_BoolLit(self, expr: ast.BoolLit, want_value: bool) -> str:
        temp = self._temp()
        self._emit(ins.Const(expr.position, temp, expr.value))
        return temp

    def _expr_StringLit(self, expr: ast.StringLit, want_value: bool) -> str:
        temp = self._temp()
        self._emit(ins.Const(expr.position, temp, expr.value))
        return temp

    def _expr_NullLit(self, expr: ast.NullLit, want_value: bool) -> str:
        temp = self._temp()
        self._emit(ins.Const(expr.position, temp, None))
        return temp

    def _expr_This(self, expr: ast.This, want_value: bool) -> str:
        return "this"

    def _expr_VarRef(self, expr: ast.VarRef, want_value: bool) -> str:
        assert expr.resolution is not None, f"unresolved var at {expr.position}"
        kind, owner = expr.resolution
        if kind == "local":
            return self._lookup_var(expr.name)
        if kind == "field":
            temp = self._temp()
            self._emit(ins.FieldLoad(expr.position, temp, "this", expr.name, owner))
            return temp
        if kind == "static_field":
            temp = self._temp()
            self._emit(ins.StaticLoad(expr.position, temp, owner, expr.name))
            return temp
        raise IRBuildError(f"class name {expr.name} used as a value", expr.position)

    def _expr_FieldAccess(self, expr: ast.FieldAccess, want_value: bool) -> str:
        assert expr.resolution is not None
        kind, owner = expr.resolution
        if kind == "static_field":
            temp = self._temp()
            self._emit(ins.StaticLoad(expr.position, temp, owner, expr.name))
            return temp
        base = self._expr(expr.target)
        temp = self._temp()
        if kind == "array_length":
            self._emit(ins.ArrayLength(expr.position, temp, base))
        else:
            self._emit(ins.FieldLoad(expr.position, temp, base, expr.name, owner))
        return temp

    def _expr_ArrayAccess(self, expr: ast.ArrayAccess, want_value: bool) -> str:
        base = self._expr(expr.target)
        index = self._expr(expr.index)
        temp = self._temp()
        self._emit(ins.ArrayLoad(expr.position, temp, base, index))
        return temp

    def _expr_Call(self, expr: ast.Call, want_value: bool) -> str:
        assert expr.resolution is not None, f"unresolved call at {expr.position}"
        kind, owner = expr.resolution
        if kind == "builtin":
            args = [self._expr(a) for a in expr.args]
            self._emit(
                ins.Call(expr.position, None, "builtin", "", expr.name, None, args)
            )
            return ""
        if kind == "native":
            assert expr.receiver is not None
            receiver = self._expr(expr.receiver)
            args = [self._expr(a) for a in expr.args]
            dest = self._temp()  # every String native returns a value
            self._emit(
                ins.Call(
                    expr.position, dest, "native", "String", expr.name, receiver, args
                )
            )
            return dest
        if kind == "static":
            args = [self._expr(a) for a in expr.args]
            dest = self._call_dest(expr)
            self._emit(
                ins.Call(expr.position, dest, "static", owner, expr.name, None, args)
            )
            return dest or ""
        # virtual
        if expr.receiver is not None:
            receiver = self._expr(expr.receiver)
        else:
            receiver = "this"
        args = [self._expr(a) for a in expr.args]
        dest = self._call_dest(expr)
        self._emit(
            ins.Call(expr.position, dest, "virtual", owner, expr.name, receiver, args)
        )
        return dest or ""

    def _call_dest(self, expr: ast.Expr) -> str | None:
        if expr.type is not None and expr.type != VOID:
            return self._temp()
        return None

    def _expr_SuperCall(self, expr: ast.SuperCall, want_value: bool) -> str:
        # Explicit super() in non-first position is checked elsewhere; a
        # first-position super() is consumed by build_constructor.
        raise IRBuildError(
            "super(...) must be the first statement of a constructor",
            expr.position,
        )

    def _expr_New(self, expr: ast.New, want_value: bool) -> str:
        temp = self._temp()
        self._emit(ins.New(expr.position, temp, expr.class_name))
        args = [self._expr(a) for a in expr.args]
        self._emit(
            ins.Call(
                expr.position, None, "special", expr.class_name, "<init>", temp, args
            )
        )
        return temp

    def _expr_NewArray(self, expr: ast.NewArray, want_value: bool) -> str:
        size = self._expr(expr.length)
        temp = self._temp()
        self._emit(ins.NewArray(expr.position, temp, expr.element_type, size))
        return temp

    def _expr_Binary(self, expr: ast.Binary, want_value: bool) -> str:
        if expr.op in ("&&", "||"):
            return self._short_circuit(expr)
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        temp = self._temp()
        is_string = expr.op == "+" and expr.type == STRING
        self._emit(
            ins.BinOp(expr.position, temp, expr.op, left, right, is_string)
        )
        return temp

    def _short_circuit(self, expr: ast.Binary) -> str:
        """Lower ``a && b`` / ``a || b`` with control flow and a local."""
        assert self.function is not None
        result = self._declare_var(f"%sc{self._var_counter}")
        left = self._expr(expr.left)
        self._emit(ins.Move(expr.position, result, left))
        eval_right = self.function.new_block()
        join_block = self.function.new_block()
        self._register_region_block(eval_right)
        self._register_region_block(join_block)
        if expr.op == "&&":
            self._emit(
                ins.Branch(
                    expr.position, left, eval_right.block_id, join_block.block_id
                )
            )
        else:
            self._emit(
                ins.Branch(
                    expr.position, left, join_block.block_id, eval_right.block_id
                )
            )
        self._switch_to(eval_right)
        right = self._expr(expr.right)
        self._emit(ins.Move(expr.position, result, right))
        self._goto(join_block.block_id, expr.position)
        self._switch_to(join_block)
        return result

    def _expr_Unary(self, expr: ast.Unary, want_value: bool) -> str:
        src = self._expr(expr.operand)
        temp = self._temp()
        self._emit(ins.UnOp(expr.position, temp, expr.op, src))
        return temp

    def _expr_Cast(self, expr: ast.Cast, want_value: bool) -> str:
        src = self._expr(expr.expr)
        temp = self._temp()
        self._emit(ins.Cast(expr.position, temp, expr.target_type, src))
        return temp

    def _expr_InstanceOf(self, expr: ast.InstanceOf, want_value: bool) -> str:
        src = self._expr(expr.expr)
        temp = self._temp()
        self._emit(ins.InstanceOf(expr.position, temp, expr.class_name, src))
        return temp

    def _expr_PostfixIncDec(self, expr: ast.PostfixIncDec, want_value: bool) -> str:
        position = expr.position
        one = self._temp()
        target = expr.target
        if isinstance(target, ast.VarRef) and target.resolution is not None:
            kind, owner = target.resolution
            if kind == "local":
                ir_name = self._lookup_var(target.name)
                old = self._temp()
                self._emit(ins.Move(position, old, ir_name))
                self._emit(ins.Const(position, one, 1))
                updated = self._temp()
                self._emit(ins.BinOp(position, updated, expr.op, old, one))
                self._emit(ins.Move(position, ir_name, updated))
                return old
            if kind == "field":
                return self._incdec_field(expr, "this", owner, target.name)
            if kind == "static_field":
                return self._incdec_static(expr, owner, target.name)
        if isinstance(target, ast.FieldAccess):
            kind, owner = target.resolution or ("", "")
            if kind == "static_field":
                return self._incdec_static(expr, owner, target.name)
            base = self._expr(target.target)
            return self._incdec_field(expr, base, owner, target.name)
        if isinstance(target, ast.ArrayAccess):
            base = self._expr(target.target)
            index = self._expr(target.index)
            old = self._temp()
            self._emit(ins.ArrayLoad(position, old, base, index))
            self._emit(ins.Const(position, one, 1))
            updated = self._temp()
            self._emit(ins.BinOp(position, updated, expr.op, old, one))
            self._emit(ins.ArrayStore(position, base, index, updated))
            return old
        raise IRBuildError("bad ++/-- target", position)

    def _incdec_field(
        self, expr: ast.PostfixIncDec, base: str, owner: str, field_name: str
    ) -> str:
        position = expr.position
        old = self._temp()
        self._emit(ins.FieldLoad(position, old, base, field_name, owner))
        one = self._temp()
        self._emit(ins.Const(position, one, 1))
        updated = self._temp()
        self._emit(ins.BinOp(position, updated, expr.op, old, one))
        self._emit(ins.FieldStore(position, base, field_name, owner, updated))
        return old

    def _incdec_static(
        self, expr: ast.PostfixIncDec, owner: str, field_name: str
    ) -> str:
        position = expr.position
        old = self._temp()
        self._emit(ins.StaticLoad(position, old, owner, field_name))
        one = self._temp()
        self._emit(ins.Const(position, one, 1))
        updated = self._temp()
        self._emit(ins.BinOp(position, updated, expr.op, old, one))
        self._emit(ins.StaticStore(position, owner, field_name, updated))
        return old
