"""Human-readable dumps of IR programs (debugging and golden tests)."""

from __future__ import annotations

from repro.ir.cfg import IRFunction, IRProgram


def format_function(function: IRFunction, positions: bool = False) -> str:
    """Render one function; optionally annotate source lines."""
    lines = [f"function {function.name}({', '.join(function.params)})"]
    for block_id in function.block_ids():
        block = function.blocks[block_id]
        suffix = ""
        if block.exc_successors:
            suffix = f"    ; exc -> {sorted(block.exc_successors)}"
        lines.append(f"B{block_id}:{suffix}")
        for instr in block.instructions:
            where = f"    ; line {instr.position.line}" if positions else ""
            lines.append(f"  {instr}{where}")
    return "\n".join(lines)


def format_program(program: IRProgram, positions: bool = False) -> str:
    chunks = [
        format_function(program.functions[name], positions)
        for name in sorted(program.functions)
    ]
    return "\n\n".join(chunks)
