"""Three-address IR instructions for MJ.

The IR is the substrate for every analysis in this project.  Two design
points matter for thin slicing:

* Every instruction classifies its variable uses as **direct uses** (the
  value participates in the computation — producer flow) or **base uses**
  (the variable is only dereferenced: field/array base pointers, array
  indices, virtual-dispatch receivers).  This is exactly the distinction
  of Section 3 of the paper: thin slices follow direct uses only.
* Every instruction carries its source position, so slices map back to
  source lines.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.lang.source import Position
from repro.lang.types import Type

_instruction_ids = itertools.count()


def _fresh_id() -> int:
    return next(_instruction_ids)


def reset_instruction_uids(start: int = 0) -> None:
    """Rewind the global uid counter so the next program starts at ``start``.

    Uids order and hash the instructions of *live* programs, so this is
    only safe when no previously compiled program will ever be touched
    again by the caller — in practice: in a single-analysis-at-a-time
    worker process (see :mod:`repro.parallel`), where it makes pickled
    artifacts deterministic.  Never call it in a threaded server parent.
    """
    global _instruction_ids
    _instruction_ids = itertools.count(start)


@dataclass
class Instruction:
    """Base class for IR instructions.

    ``uid`` is globally unique, which lets dependence graphs use
    instructions as hashable node keys across the whole program.
    """

    position: Position
    uid: int = field(init=False, compare=False)

    def __post_init__(self) -> None:
        self.uid = _fresh_id()

    # -- use/def protocol ------------------------------------------------

    def defined_var(self) -> str | None:
        return getattr(self, "dest", None)

    def direct_uses(self) -> list[str]:
        return []

    def base_uses(self) -> list[str]:
        return []

    def all_uses(self) -> list[str]:
        return self.direct_uses() + self.base_uses()

    def operands_for_renaming(self) -> list[str]:
        """Every variable operand, for SSA renaming.

        Usually ``all_uses()``; :class:`Call` overrides it because call
        arguments are *not* uses of the call node in the dependence sense
        (they flow through interprocedural parameter edges) but must
        still be renamed.
        """
        return self.all_uses()

    def rename_uses(self, mapping: dict[str, str]) -> None:
        """Rewrite used variable names in place (SSA renaming)."""

    def rename_def(self, new_name: str) -> None:
        if hasattr(self, "dest"):
            self.dest = new_name  # type: ignore[attr-defined]

    def is_terminator(self) -> bool:
        return False

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other


def _rename(mapping: dict[str, str], name: str) -> str:
    return mapping.get(name, name)


# ---------------------------------------------------------------------------
# Straight-line instructions
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Const(Instruction):
    """``dest := literal`` (int, bool, str, or None for null)."""

    dest: str
    value: int | bool | str | None

    def __str__(self) -> str:
        return f"{self.dest} := const {self.value!r}"


@dataclass(eq=False)
class Move(Instruction):
    """``dest := src`` — a pure copy (producer flow)."""

    dest: str
    src: str

    def direct_uses(self) -> list[str]:
        return [self.src]

    def rename_uses(self, mapping: dict[str, str]) -> None:
        self.src = _rename(mapping, self.src)

    def __str__(self) -> str:
        return f"{self.dest} := {self.src}"


@dataclass(eq=False)
class BinOp(Instruction):
    """``dest := left op right`` (includes String concatenation).

    ``result_is_string`` marks '+' expressions whose static type is
    String, so points-to knows the result is a string object.
    """

    dest: str
    op: str
    left: str
    right: str
    result_is_string: bool = False

    def direct_uses(self) -> list[str]:
        return [self.left, self.right]

    def rename_uses(self, mapping: dict[str, str]) -> None:
        self.left = _rename(mapping, self.left)
        self.right = _rename(mapping, self.right)

    def __str__(self) -> str:
        return f"{self.dest} := {self.left} {self.op} {self.right}"


@dataclass(eq=False)
class UnOp(Instruction):
    dest: str
    op: str
    src: str

    def direct_uses(self) -> list[str]:
        return [self.src]

    def rename_uses(self, mapping: dict[str, str]) -> None:
        self.src = _rename(mapping, self.src)

    def __str__(self) -> str:
        return f"{self.dest} := {self.op}{self.src}"


@dataclass(eq=False)
class New(Instruction):
    """``dest := new C()`` — an allocation site."""

    dest: str
    class_name: str

    def __str__(self) -> str:
        return f"{self.dest} := new {self.class_name}"


@dataclass(eq=False)
class NewArray(Instruction):
    """``dest := new T[size]`` — an array allocation site."""

    dest: str
    element_type: Type
    size: str

    def direct_uses(self) -> list[str]:
        return [self.size]

    def rename_uses(self, mapping: dict[str, str]) -> None:
        self.size = _rename(mapping, self.size)

    def __str__(self) -> str:
        return f"{self.dest} := new {self.element_type}[{self.size}]"


# ---------------------------------------------------------------------------
# Heap accesses — the heart of the thin/traditional distinction
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class FieldLoad(Instruction):
    """``dest := base.field`` — ``base`` is a base-pointer use only."""

    dest: str
    base: str
    field_name: str
    owner: str  # class that declares the field

    def base_uses(self) -> list[str]:
        return [self.base]

    def rename_uses(self, mapping: dict[str, str]) -> None:
        self.base = _rename(mapping, self.base)

    def __str__(self) -> str:
        return f"{self.dest} := {self.base}.{self.owner}::{self.field_name}"


@dataclass(eq=False)
class FieldStore(Instruction):
    """``base.field := value`` — ``value`` is the produced value."""

    base: str
    field_name: str
    owner: str
    value: str

    def direct_uses(self) -> list[str]:
        return [self.value]

    def base_uses(self) -> list[str]:
        return [self.base]

    def rename_uses(self, mapping: dict[str, str]) -> None:
        self.base = _rename(mapping, self.base)
        self.value = _rename(mapping, self.value)

    def __str__(self) -> str:
        return f"{self.base}.{self.owner}::{self.field_name} := {self.value}"


@dataclass(eq=False)
class StaticLoad(Instruction):
    dest: str
    class_name: str
    field_name: str

    def __str__(self) -> str:
        return f"{self.dest} := {self.class_name}.{self.field_name}"


@dataclass(eq=False)
class StaticStore(Instruction):
    class_name: str
    field_name: str
    value: str

    def direct_uses(self) -> list[str]:
        return [self.value]

    def rename_uses(self, mapping: dict[str, str]) -> None:
        self.value = _rename(mapping, self.value)

    def __str__(self) -> str:
        return f"{self.class_name}.{self.field_name} := {self.value}"


@dataclass(eq=False)
class ArrayLoad(Instruction):
    """``dest := base[index]`` — base *and* index are non-producer uses.

    The paper treats array indices like base pointers: explaining why two
    indices coincide is an expansion question, not producer flow (§4.1).
    """

    dest: str
    base: str
    index: str

    def base_uses(self) -> list[str]:
        return [self.base, self.index]

    def rename_uses(self, mapping: dict[str, str]) -> None:
        self.base = _rename(mapping, self.base)
        self.index = _rename(mapping, self.index)

    def __str__(self) -> str:
        return f"{self.dest} := {self.base}[{self.index}]"


@dataclass(eq=False)
class ArrayStore(Instruction):
    base: str
    index: str
    value: str

    def direct_uses(self) -> list[str]:
        return [self.value]

    def base_uses(self) -> list[str]:
        return [self.base, self.index]

    def rename_uses(self, mapping: dict[str, str]) -> None:
        self.base = _rename(mapping, self.base)
        self.index = _rename(mapping, self.index)
        self.value = _rename(mapping, self.value)

    def __str__(self) -> str:
        return f"{self.base}[{self.index}] := {self.value}"


@dataclass(eq=False)
class ArrayLength(Instruction):
    dest: str
    base: str

    def base_uses(self) -> list[str]:
        return [self.base]

    def rename_uses(self, mapping: dict[str, str]) -> None:
        self.base = _rename(mapping, self.base)

    def __str__(self) -> str:
        return f"{self.dest} := {self.base}.length"


# ---------------------------------------------------------------------------
# Calls
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Call(Instruction):
    """A call of any flavour.

    ``kind`` is one of ``virtual``, ``static``, ``special`` (constructor or
    super-constructor), ``native`` (builtin String method), ``builtin``
    (global function such as ``print``).

    For analyzable callees (virtual/static/special) the arguments flow to
    the callee formals via interprocedural SDG edges, so the Call itself
    reports no direct uses; the receiver is a dispatch (base) use.  For
    ``native``/``builtin`` callees there is no callee body: receiver and
    arguments are direct uses because the result is computed from them.
    """

    dest: str | None
    kind: str
    owner: str  # static owner class, or 'String' for natives
    method_name: str
    receiver: str | None
    args: list[str]

    def defined_var(self) -> str | None:
        return self.dest

    def direct_uses(self) -> list[str]:
        if self.kind in ("native", "builtin"):
            uses = list(self.args)
            if self.receiver is not None:
                uses.insert(0, self.receiver)
            return uses
        return []

    def base_uses(self) -> list[str]:
        if self.kind in ("native", "builtin"):
            return []
        if self.receiver is not None:
            return [self.receiver]
        return []

    def operands_for_renaming(self) -> list[str]:
        operands = list(self.args)
        if self.receiver is not None:
            operands.append(self.receiver)
        return operands

    def rename_uses(self, mapping: dict[str, str]) -> None:
        if self.receiver is not None:
            self.receiver = _rename(mapping, self.receiver)
        self.args = [_rename(mapping, a) for a in self.args]

    def rename_def(self, new_name: str) -> None:
        self.dest = new_name

    def __str__(self) -> str:
        prefix = f"{self.dest} := " if self.dest else ""
        recv = f"{self.receiver}." if self.receiver else ""
        return (
            f"{prefix}{self.kind} {recv}{self.owner}::{self.method_name}"
            f"({', '.join(self.args)})"
        )


@dataclass(eq=False)
class Cast(Instruction):
    """``dest := (T) src`` — the value flows through unchanged."""

    dest: str
    target_type: Type
    src: str

    def direct_uses(self) -> list[str]:
        return [self.src]

    def rename_uses(self, mapping: dict[str, str]) -> None:
        self.src = _rename(mapping, self.src)

    def __str__(self) -> str:
        return f"{self.dest} := ({self.target_type}) {self.src}"


@dataclass(eq=False)
class InstanceOf(Instruction):
    dest: str
    class_name: str
    src: str

    def direct_uses(self) -> list[str]:
        return [self.src]

    def rename_uses(self, mapping: dict[str, str]) -> None:
        self.src = _rename(mapping, self.src)

    def __str__(self) -> str:
        return f"{self.dest} := {self.src} instanceof {self.class_name}"


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Return(Instruction):
    value: str | None

    def direct_uses(self) -> list[str]:
        return [self.value] if self.value is not None else []

    def rename_uses(self, mapping: dict[str, str]) -> None:
        if self.value is not None:
            self.value = _rename(mapping, self.value)

    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"return {self.value or ''}".rstrip()


@dataclass(eq=False)
class Throw(Instruction):
    value: str

    def direct_uses(self) -> list[str]:
        return [self.value]

    def rename_uses(self, mapping: dict[str, str]) -> None:
        self.value = _rename(mapping, self.value)

    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"throw {self.value}"


@dataclass(eq=False)
class Branch(Instruction):
    """Two-way conditional branch; successors live on the basic block."""

    cond: str
    true_target: int
    false_target: int

    def direct_uses(self) -> list[str]:
        return [self.cond]

    def rename_uses(self, mapping: dict[str, str]) -> None:
        self.cond = _rename(mapping, self.cond)

    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"if {self.cond} goto B{self.true_target} else B{self.false_target}"


@dataclass(eq=False)
class Goto(Instruction):
    target: int

    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"goto B{self.target}"


@dataclass(eq=False)
class Phi(Instruction):
    """SSA phi: ``dest := phi(block -> var)``."""

    dest: str
    operands: dict[int, str]

    def direct_uses(self) -> list[str]:
        return list(self.operands.values())

    def rename_uses(self, mapping: dict[str, str]) -> None:
        self.operands = {b: _rename(mapping, v) for b, v in self.operands.items()}

    def __str__(self) -> str:
        ops = ", ".join(f"B{b}:{v}" for b, v in sorted(self.operands.items()))
        return f"{self.dest} := phi({ops})"


@dataclass(eq=False)
class CatchEntry(Instruction):
    """Defines the exception variable at the head of a catch block."""

    dest: str
    exc_class: str

    def __str__(self) -> str:
        return f"{self.dest} := catch {self.exc_class}"
