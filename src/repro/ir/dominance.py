"""Dominator trees and dominance frontiers.

Implemented with the Cooper–Harvey–Kennedy iterative algorithm over an
abstract graph (entry + successor map), so the same code serves both
dominance (for SSA phi placement) and post-dominance (for control
dependence, by running it on the reverse CFG with a virtual exit).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DominatorInfo:
    """Immediate dominators, dominator-tree children, and frontiers."""

    entry: int
    idom: dict[int, int | None]
    children: dict[int, list[int]] = field(default_factory=dict)
    frontier: dict[int, set[int]] = field(default_factory=dict)

    def dominates(self, a: int, b: int) -> bool:
        """True when ``a`` dominates ``b`` (reflexive)."""
        cursor: int | None = b
        while cursor is not None:
            if cursor == a:
                return True
            cursor = self.idom.get(cursor)
        return False

    def strictly_dominates(self, a: int, b: int) -> bool:
        return a != b and self.dominates(a, b)


def _reverse_postorder(entry: int, succs: dict[int, list[int]]) -> list[int]:
    order: list[int] = []
    visited: set[int] = set()

    def visit(node: int) -> None:
        stack = [(node, iter(succs.get(node, [])))]
        visited.add(node)
        while stack:
            current, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, iter(succs.get(nxt, []))))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(entry)
    order.reverse()
    return order


def compute_dominators(entry: int, succs: dict[int, list[int]]) -> DominatorInfo:
    """Compute idoms + dominance frontiers for nodes reachable from entry."""
    rpo = _reverse_postorder(entry, succs)
    rpo_index = {node: i for i, node in enumerate(rpo)}
    preds: dict[int, list[int]] = {n: [] for n in rpo}
    for node in rpo:
        for succ in succs.get(node, []):
            if succ in rpo_index:
                preds[succ].append(node)

    idom: dict[int, int | None] = {n: None for n in rpo}
    idom[entry] = entry

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]  # type: ignore[assignment]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == entry:
                continue
            candidates = [p for p in preds[node] if idom[p] is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom[node] != new_idom:
                idom[node] = new_idom
                changed = True

    idom[entry] = None  # canonical: the entry has no idom
    info = DominatorInfo(entry=entry, idom=idom)

    info.children = {n: [] for n in rpo}
    for node, parent in idom.items():
        if parent is not None:
            info.children[parent].append(node)

    info.frontier = {n: set() for n in rpo}
    for node in rpo:
        if len(preds[node]) >= 2:
            for pred in preds[node]:
                runner: int | None = pred
                while runner is not None and runner != idom[node]:
                    info.frontier[runner].add(node)
                    runner = idom[runner]
    return info


def compute_postdominators(
    exit_node: int, preds: dict[int, list[int]]
) -> DominatorInfo:
    """Post-dominance = dominance on the reverse graph from the exit."""
    return compute_dominators(exit_node, preds)
