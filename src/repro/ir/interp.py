"""An interpreter for the SSA IR.

The reference interpreter (:mod:`repro.interp`) executes the AST; this
one executes the lowered SSA CFG, phi nodes and all.  Its purpose is
validation: running both on the same program and comparing outputs
exercises the lowering, CFG construction, and SSA renaming end-to-end —
a bug in any of them shows up as divergent behaviour long before it
would corrupt a slice.

Exception semantics: a throw (or a faulting operation) unwinds to the
innermost enclosing try region of the *current or any calling* frame
whose catch class matches, entering the catch block with the region's
:class:`~repro.ir.cfg.TryRegion.catch_entry` variable bound.  Phi nodes
in the catch block are evaluated against the faulting block; operands
whose SSA version was not yet assigned on this path are left undefined
and only fault if actually read later.
"""

from __future__ import annotations

import sys

from repro.interp.natives import NativeFault, call_native
from repro.interp.values import (
    ArrayValue,
    ExecutionResult,
    FuelExhausted,
    MJThrow,
    MJValue,
    ObjectValue,
    stringify,
    values_equal,
)
from repro.ir import instructions as ins
from repro.ir.cfg import IRFunction, IRProgram
from repro.lang.types import ArrayType, BOOLEAN, ClassType, INT, Type

_MAX_FRAMES = 900
_UNDEF = object()


class _IRFrame:
    """One activation: SSA environment + control position."""

    __slots__ = ("function", "env", "block", "prev_block", "index")

    def __init__(self, function: IRFunction) -> None:
        self.function = function
        self.env: dict[str, MJValue] = {}
        self.block = function.entry_block
        self.prev_block: int | None = None
        self.index = 0

    def get(self, var: str) -> MJValue:
        value = self.env.get(var, _UNDEF)
        if value is _UNDEF:
            raise RuntimeError(
                f"read of undefined SSA variable {var} in {self.function.name}"
            )
        return value

    def set(self, var: str, value: MJValue) -> None:
        self.env[var] = value


class IRInterpreter:
    """Executes an :class:`IRProgram` from its entry points."""

    def __init__(self, program: IRProgram, max_steps: int = 5_000_000) -> None:
        self.program = program
        self.table = program.table
        self.max_steps = max_steps
        self.statics: dict[tuple[str, str], MJValue] = {}
        self.output: list[str] = []
        self.steps = 0
        self._depth = 0

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------

    def run_main(self, args: list[str] | None = None) -> ExecutionResult:
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(200_000)
        try:
            self._init_statics()
            for name in sorted(self.program.functions):
                if name.endswith(".<clinit>"):
                    self._call_function(self.program.functions[name], [])
            main = self._find_main()
            self._call_function(main, [ArrayValue(list(args or []))])
            return ExecutionResult(self.output, steps=self.steps)
        except MJThrow as thrown:
            message = thrown.value.fields.get("message")
            rendered = thrown.value.class_name
            if isinstance(message, str):
                rendered = f"{rendered}: {message}"
            return ExecutionResult(
                self.output,
                error=rendered,
                error_class=thrown.value.class_name,
                steps=self.steps,
            )
        except FuelExhausted:
            return ExecutionResult(self.output, steps=self.steps, timed_out=True)
        finally:
            sys.setrecursionlimit(old_limit)

    def _find_main(self) -> IRFunction:
        for name, function in self.program.functions.items():
            if function.method_name == "main" and function.is_static:
                return function
        raise RuntimeError("program has no static main method")

    def _init_statics(self) -> None:
        for class_name, info in self.table.classes.items():
            for field_name, decl in info.fields.items():
                if decl.is_static:
                    self.statics[(class_name, field_name)] = self._default(
                        decl.declared_type
                    )

    def _default(self, declared: Type) -> MJValue:
        if declared == INT:
            return 0
        if declared == BOOLEAN:
            return False
        return None

    # ------------------------------------------------------------------
    # Execution core
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise FuelExhausted()

    def _throw(self, exc_class: str, message: str) -> None:
        raise MJThrow(ObjectValue(exc_class, {"message": message}))

    def _call_function(self, function: IRFunction, args: list[MJValue]) -> MJValue:
        self._depth += 1
        if self._depth > _MAX_FRAMES:
            self._depth -= 1
            self._throw("StackOverflowError", f"in {function.name}")
        frame = _IRFrame(function)
        for param, arg in zip(function.params, args):
            frame.set(param, arg)
        try:
            return self._run_frame(frame)
        except MJThrow as thrown:
            handled, result = self._dispatch_exception(frame, thrown)
            if not handled:
                raise
            return result
        finally:
            self._depth -= 1

    def _dispatch_exception(
        self, frame: _IRFrame, thrown: MJThrow
    ) -> tuple[bool, MJValue]:
        """Try to continue this frame in a matching catch block.

        Returns ``(True, return_value)`` when a catch handled the
        exception and the frame ran to completion, ``(False, None)``
        when no enclosing region matches (the caller must re-raise).
        """
        while True:
            region = self._matching_region(frame, thrown.value)
            if region is None:
                return False, None
            frame.prev_block = frame.block
            frame.block = region.catch_block
            frame.index = 0
            frame.set(region.catch_entry.dest, thrown.value)
            try:
                return True, self._run_frame(
                    frame, skip_catch_entry=region.catch_entry
                )
            except MJThrow as rethrown:
                thrown = rethrown

    def _matching_region(self, frame: _IRFrame, value: ObjectValue):
        candidates = [
            region
            for region in frame.function.try_regions
            if frame.block in region.blocks
            and self._exception_matches(value, region.exc_class)
        ]
        if not candidates:
            return None
        # Innermost region: the one with the fewest blocks containing us.
        return min(candidates, key=lambda r: len(r.blocks))

    def _exception_matches(self, value: ObjectValue, exc_class: str) -> bool:
        if exc_class == "Object":
            return True
        if self.table.has_class(value.class_name):
            return self.table.is_subclass(value.class_name, exc_class)
        return value.class_name == exc_class

    def _run_frame(
        self, frame: _IRFrame, skip_catch_entry: ins.CatchEntry | None = None
    ) -> MJValue:
        function = frame.function
        while True:
            block = function.blocks[frame.block]
            instrs = block.instructions
            while frame.index < len(instrs):
                instr = instrs[frame.index]
                frame.index += 1
                self._tick()
                if isinstance(instr, ins.Phi):
                    self._exec_phi(frame, instr)
                    continue
                if instr is skip_catch_entry:
                    continue  # already bound by the dispatcher
                result = self._exec(frame, instr)
                if isinstance(instr, ins.Return):
                    return result
                if isinstance(instr, (ins.Goto, ins.Branch)):
                    break
            else:
                raise RuntimeError(
                    f"block B{frame.block} of {function.name} fell through"
                )

    def _exec_phi(self, frame: _IRFrame, instr: ins.Phi) -> None:
        pred = frame.prev_block
        operand = instr.operands.get(pred) if pred is not None else None
        if operand is None or operand.endswith(".undef"):
            frame.env[instr.dest] = _UNDEF  # dead on this path
            return
        frame.env[instr.dest] = frame.env.get(operand, _UNDEF)

    # ------------------------------------------------------------------
    # Instruction dispatch
    # ------------------------------------------------------------------

    def _exec(self, frame: _IRFrame, instr: ins.Instruction) -> MJValue:
        method = getattr(self, "_exec_" + type(instr).__name__)
        return method(frame, instr)

    def _exec_Const(self, frame, instr: ins.Const):
        frame.set(instr.dest, instr.value)

    def _exec_Move(self, frame, instr: ins.Move):
        frame.set(instr.dest, frame.get(instr.src))

    def _exec_BinOp(self, frame, instr: ins.BinOp):
        left = frame.get(instr.left)
        right = frame.get(instr.right)
        frame.set(instr.dest, self._binop(instr.op, left, right))

    def _binop(self, op: str, left, right):
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                return stringify(left) + stringify(right)
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                self._throw("ArithmeticException", "/ by zero")
            q = abs(left) // abs(right)
            return q if (left < 0) == (right < 0) else -q
        if op == "%":
            if right == 0:
                self._throw("ArithmeticException", "% by zero")
            q = abs(left) // abs(right)
            q = q if (left < 0) == (right < 0) else -q
            return left - q * right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "==":
            return values_equal(left, right)
        if op == "!=":
            return not values_equal(left, right)
        raise RuntimeError(f"unknown operator {op}")

    def _exec_UnOp(self, frame, instr: ins.UnOp):
        value = frame.get(instr.src)
        frame.set(instr.dest, (not value) if instr.op == "!" else -value)

    def _exec_New(self, frame, instr: ins.New):
        fields: dict[str, MJValue] = {}
        for ancestor in self.table.ancestors(instr.class_name):
            for name, decl in self.table.info(ancestor).fields.items():
                if not decl.is_static and name not in fields:
                    fields[name] = self._default(decl.declared_type)
        frame.set(instr.dest, ObjectValue(instr.class_name, fields))

    def _exec_NewArray(self, frame, instr: ins.NewArray):
        size = frame.get(instr.size)
        if size < 0:
            self._throw("NegativeArraySizeException", str(size))
        frame.set(
            instr.dest, ArrayValue([self._default(instr.element_type)] * size)
        )

    def _exec_FieldLoad(self, frame, instr: ins.FieldLoad):
        base = frame.get(instr.base)
        if base is None:
            self._throw("NullPointerException", f"read {instr.field_name} of null")
        frame.set(instr.dest, base.fields.get(instr.field_name))

    def _exec_FieldStore(self, frame, instr: ins.FieldStore):
        base = frame.get(instr.base)
        if base is None:
            self._throw("NullPointerException", f"write {instr.field_name} of null")
        base.fields[instr.field_name] = frame.get(instr.value)

    def _exec_StaticLoad(self, frame, instr: ins.StaticLoad):
        frame.set(instr.dest, self.statics.get((instr.class_name, instr.field_name)))

    def _exec_StaticStore(self, frame, instr: ins.StaticStore):
        self.statics[(instr.class_name, instr.field_name)] = frame.get(instr.value)

    def _exec_ArrayLoad(self, frame, instr: ins.ArrayLoad):
        base = frame.get(instr.base)
        index = frame.get(instr.index)
        if base is None:
            self._throw("NullPointerException", "load from null array")
        if not 0 <= index < len(base.elements):
            self._throw(
                "ArrayIndexOutOfBoundsException",
                f"index {index}, length {len(base.elements)}",
            )
        frame.set(instr.dest, base.elements[index])

    def _exec_ArrayStore(self, frame, instr: ins.ArrayStore):
        base = frame.get(instr.base)
        index = frame.get(instr.index)
        if base is None:
            self._throw("NullPointerException", "store into null array")
        if not 0 <= index < len(base.elements):
            self._throw(
                "ArrayIndexOutOfBoundsException",
                f"index {index}, length {len(base.elements)}",
            )
        base.elements[index] = frame.get(instr.value)

    def _exec_ArrayLength(self, frame, instr: ins.ArrayLength):
        base = frame.get(instr.base)
        if base is None:
            self._throw("NullPointerException", "length of null array")
        frame.set(instr.dest, len(base.elements))

    def _exec_Call(self, frame, instr: ins.Call):
        kind = instr.kind
        if kind == "builtin":
            self.output.append(stringify(frame.get(instr.args[0])))
            return None
        if kind == "native":
            receiver = frame.get(instr.receiver)
            if receiver is None:
                self._throw("NullPointerException", "call on null String")
            args = [frame.get(a) for a in instr.args]
            try:
                result = call_native(instr.method_name, receiver, args)
            except NativeFault as fault:
                self._throw(fault.exc_class, fault.message)
            frame.set(instr.dest, result)
            return None
        args = [frame.get(a) for a in instr.args]
        if kind == "static":
            target = self.program.functions[f"{instr.owner}.{instr.method_name}"]
            result = self._call_function(target, args)
        else:
            receiver = frame.get(instr.receiver)
            if receiver is None:
                self._throw(
                    "NullPointerException", f"call {instr.method_name}() on null"
                )
            if kind == "special":
                target_name = f"{instr.owner}.{instr.method_name}"
            else:
                owner, _ = self.table.resolve_virtual(
                    receiver.class_name, instr.method_name
                )
                target_name = f"{owner}.{instr.method_name}"
            target = self.program.functions[target_name]
            result = self._call_function(target, [receiver, *args])
        if instr.dest is not None:
            frame.set(instr.dest, result)
        return None

    def _exec_Cast(self, frame, instr: ins.Cast):
        value = frame.get(instr.src)
        target = instr.target_type
        ok = True
        if value is None:
            ok = True
        elif isinstance(target, ClassType):
            if target.name == "Object":
                ok = True
            elif target.name == "String":
                ok = isinstance(value, str)
            elif isinstance(value, ObjectValue) and self.table.has_class(
                value.class_name
            ):
                ok = self.table.is_subclass(value.class_name, target.name)
            else:
                ok = False
        elif isinstance(target, ArrayType):
            ok = isinstance(value, ArrayValue)
        if not ok:
            self._throw("ClassCastException", f"to {target}")
        frame.set(instr.dest, value)

    def _exec_InstanceOf(self, frame, instr: ins.InstanceOf):
        value = frame.get(instr.src)
        if value is None:
            result = False
        elif instr.class_name == "Object":
            result = True
        elif instr.class_name == "String":
            result = isinstance(value, str)
        elif isinstance(value, ObjectValue) and self.table.has_class(
            value.class_name
        ):
            result = self.table.is_subclass(value.class_name, instr.class_name)
        else:
            result = False
        frame.set(instr.dest, result)

    def _exec_Return(self, frame, instr: ins.Return):
        if instr.value is None:
            return None
        return frame.get(instr.value)

    def _exec_Throw(self, frame, instr: ins.Throw):
        value = frame.get(instr.value)
        if value is None:
            self._throw("NullPointerException", "throw null")
        raise MJThrow(value)

    def _exec_Goto(self, frame, instr: ins.Goto):
        frame.prev_block = frame.block
        frame.block = instr.target
        frame.index = 0

    def _exec_Branch(self, frame, instr: ins.Branch):
        condition = frame.get(instr.cond)
        frame.prev_block = frame.block
        frame.block = instr.true_target if condition else instr.false_target
        frame.index = 0

    def _exec_CatchEntry(self, frame, instr: ins.CatchEntry):
        # Reached only when control falls into a catch block without an
        # in-flight exception (impossible via normal edges: catch blocks
        # are only exceptional successors).  Bind null defensively.
        frame.set(instr.dest, None)


def run_ir_program(
    program: IRProgram, args: list[str] | None = None, max_steps: int = 5_000_000
) -> ExecutionResult:
    """Run an IR program's main (after SSA construction)."""
    return IRInterpreter(program, max_steps).run_main(args)
