"""SSA construction (Cytron et al.) for IR functions.

After :func:`to_ssa`, every variable has exactly one defining instruction,
so flow-sensitive local def-use chains — the intraprocedural producer
edges of the paper's SDG variant (§5.1, "we operate on an SSA
representation") — fall out of a single scan.

Variable naming: ``base.version`` (user variables were made unique by the
builder with ``name~k``, and ``.`` cannot appear in MJ identifiers, so SSA
names never collide).
"""

from __future__ import annotations

from collections import defaultdict

from repro.ir import instructions as ins
from repro.ir.cfg import IRFunction
from repro.ir.dominance import DominatorInfo, compute_dominators


def to_ssa(function: IRFunction) -> DominatorInfo:
    """Convert ``function`` to SSA in place; returns its dominator info."""
    dom = compute_dominators(function.entry_block, function.successor_map())
    _place_phis(function, dom)
    _rename(function, dom)
    prune_dead_phis(function)
    return dom


def prune_dead_phis(function: IRFunction) -> None:
    """Remove phis whose value is never read (minimal→pruned-ish SSA).

    Phi placement at dominance frontiers inserts merges for every
    variable live anywhere, producing many ``x := phi(...)`` whose dest is
    dead.  Removing them keeps dependence graphs small and readable.
    """
    # A phi is live iff its destination is (transitively) read by some
    # non-phi instruction; a plain used-by-anyone test would keep cycles
    # of phis that only feed each other.
    phi_defs: dict[str, ins.Phi] = {}
    live: set[str] = set()
    for instr in function.instructions():
        if isinstance(instr, ins.Phi):
            phi_defs[instr.dest] = instr
        else:
            live.update(instr.operands_for_renaming())
    worklist = [v for v in live if v in phi_defs]
    while worklist:
        var = worklist.pop()
        for operand in phi_defs[var].operands.values():
            if operand not in live:
                live.add(operand)
                if operand in phi_defs:
                    worklist.append(operand)
    for block in function.blocks.values():
        block.instructions = [
            instr
            for instr in block.instructions
            if not (isinstance(instr, ins.Phi) and instr.dest not in live)
        ]


def _assigned_vars(function: IRFunction) -> dict[str, set[int]]:
    """Map each variable to the set of blocks that assign it."""
    sites: dict[str, set[int]] = defaultdict(set)
    for block_id, block in function.blocks.items():
        for instr in block.instructions:
            var = instr.defined_var()
            if var is not None:
                sites[var].add(block_id)
    return sites


def _place_phis(function: IRFunction, dom: DominatorInfo) -> None:
    preds = function.predecessors()
    for var, def_blocks in _assigned_vars(function).items():
        placed: set[int] = set()
        worklist = list(def_blocks)
        while worklist:
            block_id = worklist.pop()
            for frontier_block in dom.frontier.get(block_id, ()):
                if frontier_block in placed:
                    continue
                placed.add(frontier_block)
                block = function.blocks[frontier_block]
                operands = {p: var for p in preds[frontier_block]}
                anchor = (
                    block.instructions[0].position
                    if block.instructions
                    else function.blocks[function.entry_block]
                    .instructions[0]
                    .position
                )
                phi = ins.Phi(anchor, var, operands)
                block.instructions.insert(0, phi)
                if frontier_block not in def_blocks:
                    worklist.append(frontier_block)


def _rename(function: IRFunction, dom: DominatorInfo) -> None:
    """Dominator-tree renaming walk, iterative to avoid recursion limits."""
    counters: dict[str, int] = defaultdict(int)
    stacks: dict[str, list[str]] = defaultdict(list)
    for param in function.params:
        stacks[param].append(param)

    def fresh(base: str) -> str:
        counters[base] += 1
        name = f"{base}.{counters[base]}"
        stacks[base].append(name)
        return name

    def current(base: str) -> str:
        if stacks[base]:
            return stacks[base][-1]
        # Use of a never-defined variable (possible only in code the
        # checker proved unreachable); bind to a distinguished undef name.
        return f"{base}.undef"

    # Each work item is ('enter', block) or ('exit', block, pushed_names).
    work: list[tuple] = [("enter", function.entry_block)]
    while work:
        item = work.pop()
        if item[0] == "exit":
            for base in item[2]:
                stacks[base].pop()
            continue
        block_id = item[1]
        block = function.blocks[block_id]
        pushed: list[str] = []
        for instr in block.instructions:
            if not isinstance(instr, ins.Phi):
                ops = instr.operands_for_renaming()
                if ops:
                    instr.rename_uses({v: current(v) for v in set(ops)})
            var = instr.defined_var()
            if var is not None:
                instr.rename_def(fresh(var))
                pushed.append(var)
        for succ in block.successors():
            for phi in function.blocks[succ].phis():
                base = phi.operands.get(block_id)
                if base is not None and "." not in base:
                    phi.operands[block_id] = current(base)
        work.append(("exit", block_id, pushed))
        for child in reversed(dom.children.get(block_id, [])):
            work.append(("enter", child))


def verify_ssa(function: IRFunction) -> list[str]:
    """Return a list of SSA invariant violations (empty when valid)."""
    problems: list[str] = []
    seen_defs: set[str] = set()
    for instr in function.instructions():
        var = instr.defined_var()
        if var is not None:
            if var in seen_defs:
                problems.append(f"{function.name}: multiple defs of {var}")
            seen_defs.add(var)
    defined = seen_defs | set(function.params)
    for instr in function.instructions():
        for used in instr.all_uses():
            if used not in defined and not used.endswith(".undef"):
                problems.append(
                    f"{function.name}: use of undefined {used} in '{instr}'"
                )
    return problems
