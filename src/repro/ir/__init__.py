"""MJ intermediate representation: instructions, CFGs, SSA, dominance."""

from repro.ir import instructions
from repro.ir.builder import build_program, qualified_name
from repro.ir.cfg import BasicBlock, IRFunction, IRProgram, TryRegion
from repro.ir.dominance import (
    DominatorInfo,
    compute_dominators,
    compute_postdominators,
)
from repro.ir.interp import IRInterpreter, run_ir_program
from repro.ir.printer import format_function, format_program
from repro.ir.ssa import to_ssa, verify_ssa

__all__ = [
    "BasicBlock",
    "DominatorInfo",
    "IRFunction",
    "IRProgram",
    "TryRegion",
    "build_program",
    "compute_dominators",
    "compute_postdominators",
    "IRInterpreter",
    "format_function",
    "format_program",
    "run_ir_program",
    "instructions",
    "qualified_name",
    "to_ssa",
    "verify_ssa",
]
