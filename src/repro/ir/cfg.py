"""Control-flow graph containers: basic blocks, functions, whole programs.

Exception modelling: each ``try`` region records its member blocks and its
catch-entry block.  Every block in the region gets an *exceptional
successor* edge to the catch entry — a conservative static approximation
("anything in the try may throw").  The reference interpreter runs on the
AST and implements exact semantics, so this approximation only affects
the static analyses, mirroring how bytecode slicers approximate
exceptional control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir import instructions as ins
from repro.lang.symbols import ClassTable
from repro.lang.types import Type


@dataclass
class BasicBlock:
    """A straight-line instruction sequence ending in a terminator."""

    block_id: int
    instructions: list[ins.Instruction] = field(default_factory=list)
    exc_successors: list[int] = field(default_factory=list)

    @property
    def terminator(self) -> ins.Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def normal_successors(self) -> list[int]:
        term = self.terminator
        if isinstance(term, ins.Goto):
            return [term.target]
        if isinstance(term, ins.Branch):
            return [term.true_target, term.false_target]
        return []

    def successors(self) -> list[int]:
        return self.normal_successors() + list(self.exc_successors)

    def phis(self) -> list[ins.Phi]:
        return [i for i in self.instructions if isinstance(i, ins.Phi)]


@dataclass
class TryRegion:
    """Blocks protected by one ``try``, plus where its catch begins."""

    blocks: set[int]
    catch_block: int
    catch_entry: ins.CatchEntry
    exc_class: str


class IRFunction:
    """The IR of a single method, constructor, or class initializer."""

    def __init__(
        self,
        name: str,
        class_name: str,
        method_name: str,
        params: list[str],
        param_types: list[Type],
        return_type: Type,
        is_static: bool,
    ) -> None:
        self.name = name  # qualified, e.g. 'Vector.add'
        self.class_name = class_name
        self.method_name = method_name
        self.params = params  # includes 'this' for instance methods
        self.param_types = param_types
        self.return_type = return_type
        self.is_static = is_static
        self.blocks: dict[int, BasicBlock] = {}
        self.entry_block = 0
        self.try_regions: list[TryRegion] = []
        self._next_block = 0
        self._next_temp = 0
        self.new_block()  # entry

    # ------------------------------------------------------------------
    # Construction helpers (used by the builder)
    # ------------------------------------------------------------------

    def new_block(self) -> BasicBlock:
        block = BasicBlock(self._next_block)
        self.blocks[self._next_block] = block
        self._next_block += 1
        return block

    def new_temp(self) -> str:
        name = f"%t{self._next_temp}"
        self._next_temp += 1
        return name

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def block(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    def block_ids(self) -> list[int]:
        return sorted(self.blocks)

    def instructions(self):
        """All instructions, in block order."""
        for block_id in self.block_ids():
            yield from self.blocks[block_id].instructions

    def predecessors(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {b: [] for b in self.blocks}
        for block in self.blocks.values():
            for succ in block.successors():
                preds[succ].append(block.block_id)
        return preds

    def successor_map(self) -> dict[int, list[int]]:
        return {b: blk.successors() for b, blk in self.blocks.items()}

    def returns(self) -> list[ins.Return]:
        return [i for i in self.instructions() if isinstance(i, ins.Return)]

    def throws(self) -> list[ins.Throw]:
        return [i for i in self.instructions() if isinstance(i, ins.Throw)]

    def calls(self) -> list[ins.Call]:
        return [i for i in self.instructions() if isinstance(i, ins.Call)]

    def def_sites(self) -> dict[str, ins.Instruction]:
        """SSA-only: the unique defining instruction per variable."""
        defs: dict[str, ins.Instruction] = {}
        for instr in self.instructions():
            var = instr.defined_var()
            if var is not None:
                defs[var] = instr
        return defs

    def prune_unreachable(self) -> None:
        """Drop blocks not reachable from the entry (dead code after
        return/break/throw); must run before SSA construction."""
        reachable: set[int] = set()
        stack = [self.entry_block]
        while stack:
            block_id = stack.pop()
            if block_id in reachable:
                continue
            reachable.add(block_id)
            stack.extend(self.blocks[block_id].successors())
        self.blocks = {b: blk for b, blk in self.blocks.items() if b in reachable}
        for region in self.try_regions:
            region.blocks &= reachable
        self.try_regions = [
            r for r in self.try_regions if r.catch_block in reachable or r.blocks
        ]

    def __str__(self) -> str:
        lines = [f"function {self.name}({', '.join(self.params)})"]
        for block_id in self.block_ids():
            block = self.blocks[block_id]
            exc = (
                f"  [exc -> {sorted(block.exc_successors)}]"
                if block.exc_successors
                else ""
            )
            lines.append(f"  B{block_id}:{exc}")
            for instr in block.instructions:
                lines.append(f"    {instr}")
        return "\n".join(lines)


class IRProgram:
    """All IR functions of a whole program plus its class table."""

    def __init__(self, table: ClassTable) -> None:
        self.table = table
        self.functions: dict[str, IRFunction] = {}
        self._owner_of: dict[int, str] = {}

    def add_function(self, function: IRFunction) -> None:
        self.functions[function.name] = function

    def finalize(self) -> None:
        """Index instruction ownership; call once after building."""
        self._owner_of = {}
        for function in self.functions.values():
            for instr in function.instructions():
                self._owner_of[instr.uid] = function.name

    def function_of(self, instr: ins.Instruction) -> IRFunction:
        return self.functions[self._owner_of[instr.uid]]

    def all_instructions(self):
        for function in self.functions.values():
            yield from function.instructions()

    def entry_points(self) -> list[str]:
        """Analysis roots: every <clinit> plus the main method."""
        roots = [n for n in self.functions if n.endswith(".<clinit>")]
        roots.extend(n for n in self.functions if n.endswith(".main"))
        return roots

    def instructions_at_line(self, filename: str, line: int) -> list[ins.Instruction]:
        """All instructions whose source position is on ``line``."""
        return [
            i
            for i in self.all_instructions()
            if i.position.line == line and i.position.filename == filename
        ]
