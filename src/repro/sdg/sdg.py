"""System dependence graph construction.

The SDG is built over the call graph's *method instances* — (function,
object-sensitivity context) pairs — so container methods cloned per
receiver object contribute distinct statement nodes, exactly like the
cloning-based WALA SDG the paper uses (Table 1's "call graph nodes
exceed methods").  With the NoObjSens configuration every function has a
single instance and the graph collapses to the classic one-node-per-
statement form.

Two heap modes, mirroring §5 of the paper:

* ``heap_mode='direct'`` — the context-insensitive representation
  (§5.2): heap-based value flow becomes *direct* store→load edges keyed
  by per-instance points-to aliasing.  No heap parameters; this is what
  makes the context-insensitive slicers scale.
* ``heap_mode='params'`` — the traditional HRB representation (§5.3):
  procedures get formal-in/out nodes for every heap partition they
  transitively read/write (from mod-ref), call sites get matching
  actual-in/out nodes, and heap flow is routed through them.  Node
  counts explode on heap-heavy programs — reproducing the scalability
  wall the paper reports.

Edges are stored *backward*: ``deps[n]`` lists the nodes ``n`` depends
on, which is the direction every slicer walks.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.callgraph import MethodInstance
from repro.analysis.heapmodel import ARRAY_FIELD, VarKey
from repro.budget import Budget
from repro.analysis.modref import ModRefResult, field_loc, static_loc
from repro.analysis.pointsto import PointsToResult
from repro.frontend import CompiledProgram
from repro.ir import instructions as ins
from repro.ir.cfg import IRFunction
from repro.lang.source import Position
from repro.sdg.controldeps import instruction_control_deps
from repro.sdg.nodes import EdgeKind, ParamNode, SDGNode, StmtNode, is_statement

_EMPTY_PTS: dict[str, frozenset] = {}


class SDG:
    """The dependence graph over statement and parameter nodes."""

    def __init__(self, heap_mode: str, include_control: bool) -> None:
        self.heap_mode = heap_mode
        self.include_control = include_control
        self.deps: dict[SDGNode, list[tuple[SDGNode, EdgeKind]]] = defaultdict(list)
        self.nodes: set[SDGNode] = set()
        # Nodes are interned: add_node returns the canonical instance and
        # stamps it with a small-int ``_nid``, so edge dedup hashes int
        # triples instead of recursive dataclasses.
        self._intern: dict[SDGNode, SDGNode] = {}
        self._edge_seen: set[tuple[int, int, int]] = set()
        # Procedure membership (function name), for pts queries.
        self.proc_of: dict[SDGNode, str] = {}
        # Instruction -> its statement nodes (one per instance).
        self.stmt_index: dict[ins.Instruction, list[StmtNode]] = defaultdict(list)
        self.formal_in: dict[tuple, ParamNode] = {}
        self.formal_out: dict[tuple, ParamNode] = {}
        # Per-instance entry nodes (HRB interprocedural control).
        self.entries: dict[tuple, ParamNode] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, node: SDGNode, proc: str) -> SDGNode:
        """Register ``node`` and return its canonical instance."""
        canonical = self._intern.get(node)
        if canonical is not None:
            return canonical
        object.__setattr__(node, "_nid", len(self._intern))
        self._intern[node] = node
        self.nodes.add(node)
        self.proc_of[node] = proc
        if isinstance(node, StmtNode):
            self.stmt_index[node.instr].append(node)
        return node

    def add_edge(self, frm: SDGNode, to: SDGNode, kind: EdgeKind) -> None:
        """Record that ``frm`` depends on ``to`` (both must be canonical
        instances previously returned by :meth:`add_node`)."""
        key = (frm._nid, to._nid, kind.index)
        if key in self._edge_seen:
            return
        self._edge_seen.add(key)
        self.deps[frm].append((to, kind))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def dependencies(self, node: SDGNode) -> list[tuple[SDGNode, EdgeKind]]:
        return self.deps.get(node, [])

    def nodes_of_instruction(self, instr: ins.Instruction) -> list[StmtNode]:
        return self.stmt_index.get(instr, [])

    def node_count(self) -> int:
        return len(self.nodes)

    def statement_count(self) -> int:
        return sum(1 for n in self.nodes if is_statement(n))

    def param_node_count(self) -> int:
        return sum(1 for n in self.nodes if isinstance(n, ParamNode))

    def edge_count(self) -> int:
        return len(self._edge_seen)

    def statement_nodes(self):
        for node in self.nodes:
            if isinstance(node, StmtNode):
                yield node

    # ------------------------------------------------------------------
    # Graph protocol, shared with repro.artifact.view.ArtifactView: the
    # tabulation slicer speaks only these methods (plus dependencies()),
    # so it runs unchanged over rich nodes or flat artifact ids.
    # ------------------------------------------------------------------

    def graph_nodes(self):
        return self.nodes

    def node_role(self, node: SDGNode) -> str | None:
        """Parameter-node role, or None for plain statements."""
        return node.role if isinstance(node, ParamNode) else None

    def site_of(self, node: SDGNode) -> int | None:
        """The call-site uid a node belongs to, for actual-in/out
        matching in tabulation; None for nodes off any call site."""
        if isinstance(node, ParamNode):
            if node.role in ("actual_in", "actual_out"):
                return node.site
            return None
        if isinstance(node, StmtNode) and isinstance(node.instr, ins.Call):
            return node.instr.uid
        return None

    def formal_out_nodes(self):
        return list(self.formal_out.values())


class SDGBudgetExceeded(Exception):
    """Raised when 'params' construction exceeds its node budget —
    the analogue of the paper's >10M-node SDGs exhausting memory."""

    def __init__(self, nodes_so_far: int) -> None:
        self.nodes_so_far = nodes_so_far
        super().__init__(f"SDG exceeded node budget at {nodes_so_far} nodes")


def build_sdg(
    compiled: CompiledProgram,
    pts: PointsToResult,
    heap_mode: str = "direct",
    include_control: bool = True,
    modref: ModRefResult | None = None,
    node_budget: int | None = None,
    index_as_producer: bool = False,
    budget: Budget | None = None,
    flow_pairs_cache: dict | None = None,
    ctrl_pairs_cache: dict | None = None,
) -> SDG:
    """Assemble the SDG for every call-graph-reachable method instance.

    ``index_as_producer`` is an ablation switch: the paper treats array
    indices like base pointers (excluded from thin slices, recoverable
    via expansion — §4.1); setting this flag classifies index uses as
    producer flow instead, so benches can measure the cost of the
    alternative design.

    ``budget`` (a :class:`repro.budget.Budget`) is polled at the
    per-instance loop heads, so a cancelled request abandons
    construction with :class:`~repro.budget.BudgetExceeded`.

    ``flow_pairs_cache``/``ctrl_pairs_cache`` optionally inject the
    per-function dependence-pair memos, letting an incremental caller
    (:mod:`repro.incremental`) carry them across edits: the pairs hold
    instruction objects, which for unedited functions are the *same*
    objects from one build to the next, so only edited functions pay
    for re-deriving their def-use chains and control dependences.  The
    caller owns eviction — any entry for a function whose body changed
    must be dropped before the build.
    """
    if heap_mode not in ("direct", "params"):
        raise ValueError(f"unknown heap_mode {heap_mode!r}")
    if heap_mode == "params" and modref is None:
        raise ValueError("heap_mode='params' requires a mod-ref result")
    builder = _SDGBuilder(
        compiled, pts, heap_mode, include_control, modref, node_budget,
        index_as_producer, budget,
        flow_pairs_cache=flow_pairs_cache,
        ctrl_pairs_cache=ctrl_pairs_cache,
    )
    return builder.build()


class _SDGBuilder:
    def __init__(
        self,
        compiled: CompiledProgram,
        pts: PointsToResult,
        heap_mode: str,
        include_control: bool,
        modref: ModRefResult | None,
        node_budget: int | None,
        index_as_producer: bool = False,
        budget: Budget | None = None,
        flow_pairs_cache: dict | None = None,
        ctrl_pairs_cache: dict | None = None,
    ) -> None:
        self.compiled = compiled
        self.program = compiled.ir
        self.pts = pts
        self.modref = modref
        self.node_budget = node_budget
        self.index_as_producer = index_as_producer
        self.budget = budget
        self.graph = SDG(heap_mode, include_control)
        # Every reachable method instance with an IR body.
        self.instances: list[tuple[str, object]] = sorted(
            (
                (name, ctx)
                for name, ctxs in pts.instances.items()
                if name in self.program.functions
                for ctx in ctxs
            ),
            key=lambda pair: (pair[0], str(pair[1])),
        )
        # def site of each SSA variable per instance (params -> formal-in)
        self._defs: dict[tuple[str, object], dict[str, SDGNode]] = {}
        # One StmtNode per (instruction, context): later passes reuse the
        # node built by _add_instance_nodes, so its cached hash and set
        # identity pay off across every add_edge call.
        self._stmt_cache: dict[tuple[int, object], StmtNode] = {}
        # pts VarKey entries regrouped per method instance (lazy).
        self._pts_by_instance: dict[tuple[str, object], dict[str, frozenset]] | None = None
        # Per-function dependence pairs, shared by every instance of the
        # function: local def-use chains and control deps are properties
        # of the SSA body, so computing them once and replaying against
        # each context's nodes avoids re-walking multi-instance methods.
        self._flow_pairs_cache: dict[str, list[tuple]] = (
            flow_pairs_cache if flow_pairs_cache is not None else {}
        )
        self._ctrl_pairs_cache: dict[str, list[tuple]] = (
            ctrl_pairs_cache if ctrl_pairs_cache is not None else {}
        )

    # ------------------------------------------------------------------

    def build(self) -> SDG:
        for name, ctx in self.instances:
            self._poll()
            self._add_instance_nodes(name, ctx)
        for name, ctx in self.instances:
            self._poll()
            self._local_flow(name, ctx)
            if self.graph.include_control:
                self._control(name, ctx)
            self._catch_flow(name, ctx)
        for name, ctx in self.instances:
            self._poll()
            self._calls(name, ctx)
        if self.graph.heap_mode == "direct":
            self._heap_direct()
        else:
            self._heap_params()
        self._array_lengths()
        return self.graph

    def _poll(self) -> None:
        if self.budget is not None:
            self.budget.poll()

    def _check_budget(self) -> None:
        if (
            self.node_budget is not None
            and self.graph.node_count() > self.node_budget
        ):
            raise SDGBudgetExceeded(self.graph.node_count())

    def _function(self, name: str) -> IRFunction:
        return self.program.functions[name]

    def _entry_position(self, function: IRFunction) -> Position:
        entry = function.blocks[function.entry_block]
        if entry.instructions:
            return entry.instructions[0].position
        return Position(0, 0, "<synthetic>")

    def _instance_pts(self, name: str, ctx: object) -> dict[str, frozenset]:
        """Points-to sets of one method instance, keyed by variable."""
        if self._pts_by_instance is None:
            grouped: dict[tuple[str, object], dict[str, frozenset]] = defaultdict(dict)
            for key, objs in self.pts.pts.items():
                if type(key) is VarKey:
                    grouped[(key.function, key.context)][key.var] = objs
            self._pts_by_instance = dict(grouped)
        return self._pts_by_instance.get((name, ctx), _EMPTY_PTS)

    def _pts_of(self, name: str, var: str, ctx: object):
        return self._instance_pts(name, ctx).get(var, frozenset())

    def _add_instance_nodes(self, name: str, ctx: object) -> None:
        function = self._function(name)
        defs: dict[str, SDGNode] = {}
        position = self._entry_position(function)
        if self.graph.include_control:
            entry = self.graph.add_node(
                ParamNode("entry", name, 0, "<entry>", position, ctx), name
            )
            self.graph.entries[(name, ctx)] = entry
        for param in function.params:
            node = self.graph.add_node(
                ParamNode("formal_in", name, 0, param, position, ctx), name
            )
            self.graph.formal_in[(name, ctx, param)] = node
            defs[param] = node
        for instr in function.instructions():
            stmt = self.graph.add_node(StmtNode(instr, ctx), name)
            self._stmt_cache[(instr.uid, ctx)] = stmt
            var = instr.defined_var()
            if var is not None:
                defs[var] = stmt
        self._defs[(name, ctx)] = defs
        self._check_budget()

    def _def_of(self, name: str, ctx: object, var: str) -> SDGNode | None:
        if var.endswith(".undef"):
            return None
        return self._defs[(name, ctx)].get(var)

    def _stmt(self, name: str, ctx: object, instr: ins.Instruction) -> StmtNode:
        node = self._stmt_cache.get((instr.uid, ctx))
        if node is None:
            node = StmtNode(instr, ctx)
            self._stmt_cache[(instr.uid, ctx)] = node
        return node

    def _flow_pairs(self, name: str) -> list[tuple]:
        """(use instr, def instr | param name, kind) triples for ``name``."""
        pairs = self._flow_pairs_cache.get(name)
        if pairs is not None:
            return pairs
        function = self._function(name)
        defs: dict[str, object] = {param: param for param in function.params}
        for instr in function.instructions():
            var = instr.defined_var()
            if var is not None:
                defs[var] = instr
        pairs = []
        for instr in function.instructions():
            direct = list(instr.direct_uses())
            base = list(instr.base_uses())
            if self.index_as_producer and isinstance(
                instr, (ins.ArrayLoad, ins.ArrayStore)
            ):
                base = [instr.base]
                direct.append(instr.index)
            for var in direct:
                definition = defs.get(var)
                if definition is not None:
                    pairs.append((instr, definition, EdgeKind.FLOW))
            for var in base:
                definition = defs.get(var)
                if definition is not None:
                    pairs.append((instr, definition, EdgeKind.BASE))
        self._flow_pairs_cache[name] = pairs
        return pairs

    def _local_flow(self, name: str, ctx: object) -> None:
        stmt_cache = self._stmt_cache
        formal_in = self.graph.formal_in
        add_edge = self.graph.add_edge
        for instr, definition, kind in self._flow_pairs(name):
            if definition.__class__ is str:
                def_node = formal_in.get((name, ctx, definition))
                if def_node is None:
                    continue
            else:
                def_node = stmt_cache[(definition.uid, ctx)]
            add_edge(stmt_cache[(instr.uid, ctx)], def_node, kind)

    def _ctrl_pairs(self, name: str) -> list[tuple]:
        """(instr, controlling instrs | None) pairs; None = entry region."""
        pairs = self._ctrl_pairs_cache.get(name)
        if pairs is not None:
            return pairs
        function = self._function(name)
        controlled = instruction_control_deps(function)
        pairs = []
        for instr in function.instructions():
            controllers = controlled.get(instr)
            if controllers:
                pairs.append(
                    (instr, tuple(c for c in controllers if c is not instr))
                )
            else:
                pairs.append((instr, None))
        self._ctrl_pairs_cache[name] = pairs
        return pairs

    def _control(self, name: str, ctx: object) -> None:
        entry = self.graph.entries.get((name, ctx))
        stmt_cache = self._stmt_cache
        add_edge = self.graph.add_edge
        for instr, controllers in self._ctrl_pairs(name):
            if controllers is None:
                # Top-level statements are control dependent on the
                # procedure entry (Ferrante-style region node); the
                # entry links back to the call sites below, giving the
                # HRB interprocedural control dependence.
                if entry is not None:
                    add_edge(stmt_cache[(instr.uid, ctx)], entry, EdgeKind.CONTROL)
            else:
                node = stmt_cache[(instr.uid, ctx)]
                for controller in controllers:
                    add_edge(node, stmt_cache[(controller.uid, ctx)], EdgeKind.CONTROL)

    def _catch_flow(self, name: str, ctx: object) -> None:
        function = self._function(name)
        for region in function.try_regions:
            catch_node = self._stmt(name, ctx, region.catch_entry)
            if catch_node not in self.graph.nodes:
                continue
            for block_id in region.blocks:
                block = function.blocks.get(block_id)
                if block is None:
                    continue
                for instr in block.instructions:
                    if isinstance(instr, ins.Throw):
                        self.graph.add_edge(
                            catch_node, self._stmt(name, ctx, instr), EdgeKind.CATCH
                        )

    # ------------------------------------------------------------------
    # Calls: value parameters and returns, per callee instance
    # ------------------------------------------------------------------

    def _calls(self, name: str, ctx: object) -> None:
        function = self._function(name)
        caller_instance = MethodInstance(name, ctx)
        for call in function.calls():
            if call.kind in ("native", "builtin"):
                continue  # receiver/args are direct uses of the call node
            callees = self.pts.call_graph.edges.get((caller_instance, call.uid))
            if not callees:
                continue
            for callee in sorted(callees, key=str):
                if callee.function not in self.program.functions:
                    continue
                self._bind_call(name, ctx, call, callee)

    def _bind_call(
        self, caller: str, ctx: object, call: ins.Call, callee: MethodInstance
    ) -> None:
        callee_fn = self._function(callee.function)
        formals = list(callee_fn.params)
        actuals: list[tuple[str, str]] = []  # (formal, actual var)
        if not callee_fn.is_static:
            this_formal = formals.pop(0)
            if call.receiver is not None:
                actuals.append((this_formal, call.receiver))
        for formal, actual in zip(formals, call.args):
            actuals.append((formal, actual))
        for formal, actual in actuals:
            actual_in = self.graph.add_node(
                ParamNode(
                    "actual_in", caller, call.uid, formal, call.position, ctx
                ),
                caller,
            )
            definition = self._def_of(caller, ctx, actual)
            if definition is not None:
                self.graph.add_edge(actual_in, definition, EdgeKind.FLOW)
            formal_in = self.graph.formal_in.get(
                (callee.function, callee.context, formal)
            )
            if formal_in is not None:
                self.graph.add_edge(formal_in, actual_in, EdgeKind.PARAM_IN)
        if call.dest is not None:
            formal_out = self._formal_out(callee, "<ret>")
            self.graph.add_edge(
                self._stmt(caller, ctx, call), formal_out, EdgeKind.PARAM_OUT
            )
        entry = self.graph.entries.get((callee.function, callee.context))
        if entry is not None:
            # Call edge: the callee's entry depends on the call site —
            # an ascend-class edge (PARAM_IN) so both the CI traditional
            # slicer and tabulation's phase structure treat it like the
            # other interprocedural bindings.  Thin slicers never reach
            # entry nodes (they skip CONTROL), so thin slices are
            # unaffected.
            self.graph.add_edge(
                entry, self._stmt(caller, ctx, call), EdgeKind.PARAM_IN
            )
        self._check_budget()

    def _formal_out(self, callee: MethodInstance, slot: str) -> ParamNode:
        key = (callee.function, callee.context, slot)
        node = self.graph.formal_out.get(key)
        if node is None:
            function = self._function(callee.function)
            node = self.graph.add_node(
                ParamNode(
                    "formal_out",
                    callee.function,
                    0,
                    slot,
                    self._entry_position(function),
                    callee.context,
                ),
                callee.function,
            )
            self.graph.formal_out[key] = node
            if slot == "<ret>":
                for ret in function.returns():
                    if ret.value is not None:
                        self.graph.add_edge(
                            node,
                            self._stmt(callee.function, callee.context, ret),
                            EdgeKind.FLOW,
                        )
        return node

    # ------------------------------------------------------------------
    # Heap flow, direct mode (§5.2) — per-instance points-to aliasing
    # ------------------------------------------------------------------

    def _store_sites(self) -> dict[tuple[str, object], list[SDGNode]]:
        """Index of writers per (field, abstract object) or static key."""
        writers: dict[tuple[str, object], list[SDGNode]] = defaultdict(list)
        for name, ctx in self.instances:
            self._poll()
            pmap = self._instance_pts(name, ctx)
            for instr in self._function(name).instructions():
                node = self._stmt(name, ctx, instr)
                if isinstance(instr, ins.FieldStore):
                    for obj in pmap.get(instr.base, ()):
                        writers[(instr.field_name, obj)].append(node)
                elif isinstance(instr, ins.ArrayStore):
                    for obj in pmap.get(instr.base, ()):
                        writers[(ARRAY_FIELD, obj)].append(node)
                elif isinstance(instr, ins.NewArray):
                    for obj in pmap.get(instr.dest, ()):
                        writers[(ARRAY_FIELD, obj)].append(node)
                elif isinstance(instr, ins.StaticStore):
                    writers[
                        ("<static>", (instr.class_name, instr.field_name))
                    ].append(node)
        return writers

    def _heap_direct(self) -> None:
        writers = self._store_sites()
        for name, ctx in self.instances:
            self._poll()
            pmap = self._instance_pts(name, ctx)
            for instr in self._function(name).instructions():
                if not isinstance(
                    instr, (ins.FieldLoad, ins.ArrayLoad, ins.StaticLoad)
                ):
                    continue
                node = self._stmt(name, ctx, instr)
                if isinstance(instr, ins.FieldLoad):
                    for obj in pmap.get(instr.base, ()):
                        for store in writers.get((instr.field_name, obj), ()):
                            self.graph.add_edge(node, store, EdgeKind.HEAP)
                elif isinstance(instr, ins.ArrayLoad):
                    for obj in pmap.get(instr.base, ()):
                        for store in writers.get((ARRAY_FIELD, obj), ()):
                            self.graph.add_edge(node, store, EdgeKind.HEAP)
                elif isinstance(instr, ins.StaticLoad):
                    key = ("<static>", (instr.class_name, instr.field_name))
                    for store in writers.get(key, ()):
                        self.graph.add_edge(node, store, EdgeKind.HEAP)

    # ------------------------------------------------------------------
    # Heap flow, heap-parameter mode (§5.3)
    # ------------------------------------------------------------------

    def _access_locs(self, name: str, ctx: object, instr: ins.Instruction):
        if isinstance(instr, (ins.FieldStore, ins.FieldLoad)):
            return [
                field_loc(o, instr.field_name)
                for o in self._pts_of(name, instr.base, ctx)
            ]
        if isinstance(instr, (ins.ArrayStore, ins.ArrayLoad)):
            return [
                field_loc(o, ARRAY_FIELD)
                for o in self._pts_of(name, instr.base, ctx)
            ]
        if isinstance(instr, ins.NewArray):
            return [
                field_loc(o, ARRAY_FIELD)
                for o in self._pts_of(name, instr.dest, ctx)
            ]
        if isinstance(instr, (ins.StaticStore, ins.StaticLoad)):
            return [static_loc(instr.class_name, instr.field_name)]
        return []

    def _heap_params(self) -> None:
        assert self.modref is not None
        modref = self.modref
        # Formal-in/out heap nodes per instance (mod-ref is per function;
        # instances of one function share its partition sets).
        for name, ctx in self.instances:
            self._poll()
            function = self._function(name)
            position = self._entry_position(function)
            for loc in sorted(modref.ref.get(name, ()), key=str):
                node = self.graph.add_node(
                    ParamNode("formal_in", name, 0, f"heap:{loc}", position, ctx),
                    name,
                )
                self.graph.formal_in[(name, ctx, f"heap:{loc}")] = node
            for loc in sorted(modref.mod.get(name, ()), key=str):
                node = self.graph.add_node(
                    ParamNode("formal_out", name, 0, f"heap:{loc}", position, ctx),
                    name,
                )
                self.graph.formal_out[(name, ctx, f"heap:{loc}")] = node
            self._check_budget()

        for name, ctx in self.instances:
            self._poll()
            self._heap_params_for_instance(name, ctx)

    def _heap_params_for_instance(self, name: str, ctx: object) -> None:
        assert self.modref is not None
        modref = self.modref
        function = self._function(name)
        caller_instance = MethodInstance(name, ctx)

        # Writers/readers per heap loc inside this instance.
        writers: dict[object, list[SDGNode]] = defaultdict(list)
        readers: dict[object, list[SDGNode]] = defaultdict(list)
        for instr in function.instructions():
            locs = self._access_locs(name, ctx, instr)
            node = self._stmt(name, ctx, instr)
            if isinstance(
                instr, (ins.FieldStore, ins.ArrayStore, ins.StaticStore, ins.NewArray)
            ):
                for loc in locs:
                    writers[loc].append(node)
            elif isinstance(instr, (ins.FieldLoad, ins.ArrayLoad, ins.StaticLoad)):
                for loc in locs:
                    readers[loc].append(node)

        # Call-site actual-in/out heap nodes, per callee instance.
        for call in function.calls():
            if call.kind in ("native", "builtin"):
                continue
            callees = self.pts.call_graph.edges.get((caller_instance, call.uid))
            if not callees:
                continue
            for callee in sorted(callees, key=str):
                if callee.function not in self.program.functions:
                    continue
                for loc in sorted(modref.ref.get(callee.function, ()), key=str):
                    actual_in = self.graph.add_node(
                        ParamNode(
                            "actual_in", name, call.uid, f"heap:{loc}",
                            call.position, ctx,
                        ),
                        name,
                    )
                    readers[loc].append(actual_in)
                    formal_in = self.graph.formal_in.get(
                        (callee.function, callee.context, f"heap:{loc}")
                    )
                    if formal_in is not None:
                        self.graph.add_edge(
                            formal_in, actual_in, EdgeKind.PARAM_IN
                        )
                for loc in sorted(modref.mod.get(callee.function, ()), key=str):
                    actual_out = self.graph.add_node(
                        ParamNode(
                            "actual_out", name, call.uid, f"heap:{loc}",
                            call.position, ctx,
                        ),
                        name,
                    )
                    writers[loc].append(actual_out)
                    formal_out = self.graph.formal_out.get(
                        (callee.function, callee.context, f"heap:{loc}")
                    )
                    if formal_out is not None:
                        self.graph.add_edge(
                            actual_out, formal_out, EdgeKind.PARAM_OUT
                        )
            self._check_budget()

        # Flow-insensitive intraprocedural wiring: every reader of a loc
        # depends on every writer of it, plus the incoming formal-in; the
        # formal-out depends on every writer.
        all_locs = set(writers) | set(readers)
        for loc in all_locs:
            formal_in = self.graph.formal_in.get((name, ctx, f"heap:{loc}"))
            formal_out = self.graph.formal_out.get((name, ctx, f"heap:{loc}"))
            for reader in readers.get(loc, ()):
                for writer in writers.get(loc, ()):
                    if reader != writer:
                        self.graph.add_edge(reader, writer, EdgeKind.HEAP)
                if formal_in is not None:
                    self.graph.add_edge(reader, formal_in, EdgeKind.FLOW)
            if formal_out is not None:
                for writer in writers.get(loc, ()):
                    self.graph.add_edge(formal_out, writer, EdgeKind.FLOW)

    # ------------------------------------------------------------------
    # Array lengths: reads of .length reach the allocation's size in both
    # modes (allocation-site based; a documented approximation).
    # ------------------------------------------------------------------

    def _array_lengths(self) -> None:
        allocs: dict[object, list[SDGNode]] = defaultdict(list)
        for name, ctx in self.instances:
            self._poll()
            for instr in self._function(name).instructions():
                if isinstance(instr, ins.NewArray):
                    node = self._stmt(name, ctx, instr)
                    for obj in self._pts_of(name, instr.dest, ctx):
                        allocs[obj].append(node)
        for name, ctx in self.instances:
            for instr in self._function(name).instructions():
                if isinstance(instr, ins.ArrayLength):
                    node = self._stmt(name, ctx, instr)
                    for obj in self._pts_of(name, instr.base, ctx):
                        for alloc in allocs.get(obj, ()):
                            self.graph.add_edge(node, alloc, EdgeKind.HEAP)
