"""Graphviz (DOT) export of SDGs and slices.

CodeSurfer-style dependence browsing starts with seeing the graph; this
module renders an SDG (or the subgraph a slice touched) with edge kinds
styled by role: producer flow solid, base-pointer flow dashed, control
dotted — matching the paper's Figure 3 conventions.
"""

from __future__ import annotations

from repro.ir import instructions as ins
from repro.sdg.nodes import EdgeKind, ParamNode, SDGNode, StmtNode
from repro.sdg.sdg import SDG

_EDGE_STYLE = {
    EdgeKind.FLOW: 'color="black"',
    EdgeKind.HEAP: 'color="black" penwidth=2',
    EdgeKind.CATCH: 'color="black" style=bold',
    EdgeKind.PARAM_IN: 'color="blue"',
    EdgeKind.PARAM_OUT: 'color="blue" arrowhead=empty',
    EdgeKind.SUMMARY: 'color="blue" style=dashed',
    EdgeKind.BASE: 'color="gray40" style=dashed',
    EdgeKind.CONTROL: 'color="gray40" style=dotted',
}


def _node_id(node: SDGNode) -> str:
    if isinstance(node, StmtNode):
        ctx = abs(hash(node.context)) % 10_000 if node.context else 0
        return f"s{node.instr.uid}_{ctx}"
    assert isinstance(node, ParamNode)
    return f"p{abs(hash(node)) % 10_000_000}"


def _node_label(node: SDGNode) -> str:
    if isinstance(node, StmtNode):
        text = str(node.instr).replace('"', "'")
        return f"{node.instr.position.line}: {text[:48]}"
    assert isinstance(node, ParamNode)
    return f"{node.role}\\n{node.slot[:32]}"


def _node_attrs(node: SDGNode) -> str:
    if isinstance(node, ParamNode):
        return "shape=ellipse fontsize=9 color=gray50"
    assert isinstance(node, StmtNode)
    if isinstance(node.instr, (ins.FieldStore, ins.ArrayStore, ins.StaticStore)):
        return "shape=box style=filled fillcolor=lightyellow"
    if isinstance(node.instr, (ins.FieldLoad, ins.ArrayLoad, ins.StaticLoad)):
        return "shape=box style=filled fillcolor=lightblue"
    return "shape=box"


def sdg_to_dot(
    sdg: SDG,
    nodes: set[SDGNode] | None = None,
    highlight: set[SDGNode] | None = None,
    title: str = "SDG",
) -> str:
    """Render ``sdg`` (restricted to ``nodes`` when given) as DOT text.

    Edges are drawn in *dependence direction* (dependent → dependee),
    like the paper's Figure 3.
    """
    chosen = nodes if nodes is not None else sdg.nodes
    highlight = highlight or set()
    lines = [
        "digraph sdg {",
        f'  label="{title}";',
        "  rankdir=BT;",
        "  node [fontname=monospace fontsize=10];",
    ]
    for node in sorted(chosen, key=_node_id):
        attrs = _node_attrs(node)
        if node in highlight:
            attrs += " penwidth=3 color=red"
        lines.append(f'  {_node_id(node)} [label="{_node_label(node)}" {attrs}];')
    for node in chosen:
        for dep, kind in sdg.dependencies(node):
            if dep not in chosen:
                continue
            style = _EDGE_STYLE.get(kind, "")
            lines.append(f"  {_node_id(node)} -> {_node_id(dep)} [{style}];")
    lines.append("}")
    return "\n".join(lines)


def slice_to_dot(result, sdg: SDG, title: str = "slice") -> str:
    """Render just the nodes a slice visited, seeds highlighted."""
    nodes = set(result.traversal.order)
    return sdg_to_dot(sdg, nodes=nodes, highlight=set(result.seeds), title=title)
