"""Control dependence via post-dominance frontiers (Ferrante et al.).

A block ``w`` is control dependent on the branch ending block ``u`` when
``u`` has a successor edge into a region that ``w`` post-dominates while
``w`` does not post-dominate ``u`` itself.  We compute this per function
on the CFG including exceptional successors (so catch blocks come out
control dependent on their try region), using a virtual exit node that
all returning/throwing blocks reach.
"""

from __future__ import annotations

from collections import defaultdict

from repro.ir import instructions as ins
from repro.ir.cfg import IRFunction
from repro.ir.dominance import compute_dominators

VIRTUAL_EXIT = -1


def block_control_deps(function: IRFunction) -> dict[int, set[int]]:
    """Map each block to the set of blocks whose terminator controls it."""
    succs: dict[int, list[int]] = {}
    exit_preds: list[int] = []
    for block_id, block in function.blocks.items():
        out = block.successors()
        succs[block_id] = list(out)
        term = block.terminator
        if isinstance(term, (ins.Return, ins.Throw)) or not out:
            succs[block_id] = list(out) + [VIRTUAL_EXIT]
            exit_preds.append(block_id)
    succs[VIRTUAL_EXIT] = []

    # Post-dominance: dominance on the reversed CFG rooted at the exit.
    reverse: dict[int, list[int]] = defaultdict(list)
    for block_id, out in succs.items():
        for succ in out:
            reverse[succ].append(block_id)
    for block_id in succs:
        reverse.setdefault(block_id, [])
    pdom = compute_dominators(VIRTUAL_EXIT, dict(reverse))

    deps: dict[int, set[int]] = {b: set() for b in function.blocks}
    for u, out in succs.items():
        if u == VIRTUAL_EXIT or len(out) < 2:
            continue
        for v in out:
            if v == VIRTUAL_EXIT:
                continue
            # Walk the post-dominator tree from v up to ipdom(u).
            stop = pdom.idom.get(u)
            runner: int | None = v
            seen: set[int] = set()
            while (
                runner is not None
                and runner != stop
                and runner != VIRTUAL_EXIT
                and runner not in seen
            ):
                seen.add(runner)
                if runner in deps:
                    deps[runner].add(u)
                runner = pdom.idom.get(runner)
    return deps


def instruction_control_deps(
    function: IRFunction,
) -> dict[ins.Instruction, set[ins.Instruction]]:
    """Map each instruction to the branch instructions controlling it."""
    block_deps = block_control_deps(function)
    result: dict[ins.Instruction, set[ins.Instruction]] = {}
    for block_id, controlling in block_deps.items():
        if not controlling:
            continue
        controllers = set()
        for controller_block in controlling:
            term = function.blocks[controller_block].terminator
            if term is not None:
                controllers.add(term)
        if not controllers:
            continue
        for instr in function.blocks[block_id].instructions:
            result[instr] = set(controllers)
    return result
