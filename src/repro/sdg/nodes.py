"""SDG node and edge vocabulary.

Nodes are either real IR instructions or synthetic parameter nodes
(formal-in/out, actual-in/out) in the style of Horwitz–Reps–Binkley.
Synthetic nodes carry a source position for display but are not counted
as inspected statements by the evaluation metric.

Edge kinds encode the paper's taxonomy directly:

* ``FLOW`` — producer flow dependence (assignment chains, §3),
* ``BASE`` — base-pointer flow dependence (ignored by thin slicing),
* ``CONTROL`` — control dependence (ignored by thin slicing),
* ``HEAP`` — direct store→load edges of the context-insensitive
  algorithm (§5.2),
* ``CATCH`` — throw→catch value flow,
* ``PARAM_IN``/``PARAM_OUT`` — interprocedural bindings (the
  parenthesis symbols of context-sensitive slicing, §5.3),
* ``SUMMARY`` — same-level transitive edges from actual-out to
  actual-in, computed by the tabulation solver.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.heapmodel import _CachedHash
from repro.ir import instructions as ins
from repro.lang.source import Position


class EdgeKind(enum.Enum):
    FLOW = "flow"
    BASE = "base"
    CONTROL = "control"
    HEAP = "heap"
    CATCH = "catch"
    PARAM_IN = "param-in"
    PARAM_OUT = "param-out"
    SUMMARY = "summary"


# Plain int tag per member, read as a C-level attribute in the SDG's
# edge-dedup hot path (enum.__hash__ and .value both go through Python).
for _index, _kind in enumerate(EdgeKind):
    _kind.index = _index
del _index, _kind


#: Kinds a thin slicer traverses: pure producer flow.
THIN_KINDS = frozenset(
    {
        EdgeKind.FLOW,
        EdgeKind.HEAP,
        EdgeKind.CATCH,
        EdgeKind.PARAM_IN,
        EdgeKind.PARAM_OUT,
        EdgeKind.SUMMARY,
    }
)

#: Kinds a traditional slicer traverses: everything.
TRADITIONAL_KINDS = THIN_KINDS | {EdgeKind.BASE, EdgeKind.CONTROL}


@dataclass(frozen=True)
class StmtNode(_CachedHash):
    """An IR instruction inside one method *instance*.

    The SDG is built over the call graph's method instances (function ×
    object-sensitivity context), mirroring WALA's cloning-based SDG:
    ``Vector.get`` analyzed for two different Vectors yields two
    distinct statement nodes, which is what makes the object-sensitive
    configuration more precise than the NoObjSens ablation.
    """

    instr: ins.Instruction
    context: object = None  # AbstractObject | None

    __hash_fields__ = ("instr", "context")

    def __hash__(self) -> int:  # specialized _CachedHash: no getattr loop
        try:
            return self._hash
        except AttributeError:
            value = hash((self.instr, self.context))
            object.__setattr__(self, "_hash", value)
            return value

    @property
    def position(self) -> Position:
        return self.instr.position

    def __str__(self) -> str:
        ctx = f" @{self.context}" if self.context is not None else ""
        return f"{self.instr}{ctx}"


@dataclass(frozen=True)
class ParamNode(_CachedHash):
    """A synthetic parameter node.

    ``role`` is ``formal_in``/``formal_out``/``actual_in``/``actual_out``.
    ``function`` is the owning procedure for formals, the *calling*
    procedure for actuals; ``context`` is that procedure instance's
    object-sensitivity context.  ``site`` is the call-instruction uid
    for actuals (0 for formals).  ``slot`` names what is passed: a
    parameter name, ``<ret>``, or a heap partition label.
    """

    role: str
    function: str
    site: int
    slot: str
    position: Position
    context: object = None  # AbstractObject | None

    __hash_fields__ = ("role", "function", "site", "slot", "position", "context")

    def __hash__(self) -> int:  # specialized _CachedHash: no getattr loop
        try:
            return self._hash
        except AttributeError:
            value = hash(
                (self.role, self.function, self.site, self.slot,
                 self.position, self.context)
            )
            object.__setattr__(self, "_hash", value)
            return value

    def __str__(self) -> str:
        where = f"@{self.site}" if self.site else ""
        ctx = f" @{self.context}" if self.context is not None else ""
        return f"{self.role}({self.function}{where}{ctx}, {self.slot})"


SDGNode = object  # StmtNode | ParamNode


def is_statement(node: SDGNode) -> bool:
    """True for nodes that count as inspectable statements."""
    return isinstance(node, StmtNode)


def node_position(node: SDGNode) -> Position:
    if isinstance(node, (StmtNode, ParamNode)):
        return node.position
    assert isinstance(node, ins.Instruction)
    return node.position


def node_line(node: SDGNode) -> int:
    return node_position(node).line
