"""System dependence graphs: nodes, control deps, and two build modes."""

from repro.sdg.controldeps import block_control_deps, instruction_control_deps
from repro.sdg.nodes import (
    EdgeKind,
    ParamNode,
    StmtNode,
    SDGNode,
    THIN_KINDS,
    TRADITIONAL_KINDS,
    is_statement,
    node_line,
    node_position,
)
from repro.sdg.export import sdg_to_dot, slice_to_dot
from repro.sdg.sdg import SDG, SDGBudgetExceeded, build_sdg

__all__ = [
    "EdgeKind",
    "ParamNode",
    "SDG",
    "SDGBudgetExceeded",
    "SDGNode",
    "StmtNode",
    "THIN_KINDS",
    "TRADITIONAL_KINDS",
    "block_control_deps",
    "build_sdg",
    "instruction_control_deps",
    "is_statement",
    "node_line",
    "node_position",
    "sdg_to_dot",
    "slice_to_dot",
]
