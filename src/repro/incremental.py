"""Incremental, edit-aware analysis: function-granular reuse.

The whole-source cache key (:func:`repro.server.cache.cache_key`) makes
warm *hits* nearly free, but any edit — even one line — misses it and
pays a full cold analysis.  This module closes that gap: an
:class:`IncrementalSession` keeps the fully materialized state of one
analyzed program (AST, class table, SSA IR, points-to result, SDG pair
caches) and, given an edited source, re-analyzes **only what the edit
invalidated** while producing artifact bytes that are *byte-identical*
to a cold analysis of the edited source.

How the pieces fit:

* :func:`split_units` lexes the source into per-member textual units
  (class headers, fields, methods) and fingerprints each one
  (token kinds + texts + unit-relative positions, after
  :func:`repro.frontend.normalize_source`).  Units whose fingerprints
  match are *clean*: their IR, SSA form, and points-to constraint
  fragments are reused wholesale.  A *structure* fingerprint over class
  names, supertypes, member order, signatures, and field declarations
  decides whether the reuse is sound at all — signature or field
  changes fall back to cold.

* Clean functions' instructions are reused **in place**: positions are
  relocated through a piecewise line map and uids are renumbered in
  program order, which reproduces exactly the relative uid order (and
  therefore the call-site ranks and within-function node sort) a cold
  compile of the edited source would produce.  Dirty methods are
  re-parsed in a synthetic class wrapper padded to their true line
  offset, re-checked, re-lowered, and SSA-converted individually.

* The dirty functions' *constraint fragments* (an alpha-normalized
  rendering of exactly what :class:`~repro.analysis.pointsto.
  PointsToAnalysis` would generate) are compared old-vs-new.  If every
  dirty fragment is unchanged or grew by appended constraints, the old
  points-to solution is translated into the new uid/label space and
  fed to the delta-propagating solver as a warm start
  (``warm_pts``): pre-seeded sets are already the old least fixpoint,
  so old constraints propagate nothing and only the genuinely new
  constraints cascade.  Monotonicity of Andersen's analysis makes this
  exact — the warm solve converges to the same least fixpoint a cold
  solve reaches.  Any other shape of change re-solves from scratch
  (still reusing the relocated frontend).

* The SDG is rebuilt over the new points-to result, but the per-function
  flow/control dependence pair caches survive across edits for clean
  functions (the instruction objects are the same Python objects).

* An edit that only moves lines (comments, whitespace — zero dirty
  units) skips analysis entirely: the previous artifact's ``LINE`` and
  ``LKEY`` sections are rewritten through the line map and ``META`` /
  ``SRC `` are swapped, reusing every node/edge section verbatim.

Fallbacks (``DeclinedError``) are always to the cold path, never to a
wrong answer: structure changes, parse/type errors in a dirty unit
(cold reproduces the exact diagnostics), lexically odd layouts
(members sharing a line), non-``direct`` heap modes.
"""

from __future__ import annotations

import array
import hashlib
import itertools
import json
import pickle
import threading
from bisect import bisect_right
from dataclasses import dataclass, field, replace

from repro.analysis.heapmodel import AbstractObject
from repro.analysis.pointsto import PointsToResult, solve_points_to
from repro.budget import Budget, BudgetExceeded
from repro.frontend import CompiledProgram, normalize_source, stdlib_source
from repro.ir import instructions as ins
from repro.ir.builder import _FunctionBuilder
from repro.ir.ssa import to_ssa
from repro.lang import ast
from repro.lang.errors import MJError
from repro.lang.lexer import tokenize
from repro.lang.parser import Parser
from repro.lang.source import Position, SourceFile
from repro.lang.tokens import TokenKind
from repro.lang.typechecker import TypeChecker
from repro.profiling import StageProfiler
from repro.sdg.sdg import build_sdg
from repro.artifact.encode import content_key, encode_artifact
from repro.artifact.format import CANONICAL_TAGS, parse_sections


class DeclinedError(Exception):
    """The edit cannot be served incrementally; fall back to cold.

    ``reason`` is a short machine-readable tag surfaced in the server's
    fragment-store counters.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class SessionDeadError(Exception):
    """The session mutated past the point of no return and then failed;
    its state may be inconsistent and it must be discarded."""


# ---------------------------------------------------------------------------
# Source units and fingerprints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SourceUnit:
    """One textual member of the program: a class header, field, or method.

    ``name`` is the qualified IR function name for methods
    (``Cls.method`` / ``Cls.<init>``); header and field units use
    ``Cls#header`` / ``Cls#field:name``.  ``start_line``/``end_line``
    span the member's tokens (inclusive, 1-based).  ``fingerprint``
    covers token kinds, texts, and unit-relative positions, so any
    change *inside* the span — including comment or whitespace shifts
    between its tokens — dirties the unit, while edits elsewhere leave
    it clean under a pure line shift.
    """

    kind: str  # 'header' | 'field' | 'method'
    class_name: str
    name: str
    start_line: int
    end_line: int
    fingerprint: str
    is_constructor: bool = False
    method_name: str = ""


@dataclass
class ProgramShape:
    """The unit decomposition of one normalized source text."""

    units: list[SourceUnit]
    structure_fingerprint: str
    line_count: int

    def methods(self) -> dict[str, SourceUnit]:
        return {u.name: u for u in self.units if u.kind == "method"}


def _unit_fingerprint(tokens, start_line: int) -> str:
    hasher = hashlib.sha256()
    for token in tokens:
        hasher.update(
            f"{token.kind.name}\x00{token.text}\x00"
            f"{token.position.line - start_line}\x00{token.position.column}\x01"
            .encode("utf-8")
        )
    return hasher.hexdigest()


def split_units(text: str) -> ProgramShape:
    """Decompose normalized source into per-member units.

    Raises :class:`DeclinedError` for anything the splitter cannot
    handle conservatively: lex/structure errors (the cold path will
    produce the real diagnostic) or two members sharing a source line
    (the per-line relocation and wrapper re-parse both assume member
    spans are line-disjoint).
    """
    try:
        tokens = list(tokenize(text, "<units>"))
    except MJError:
        raise DeclinedError("lex-error") from None
    units: list[SourceUnit] = []
    structure = hashlib.sha256()
    i = 0
    n = len(tokens)

    def _kind(j):
        return tokens[j].kind if j < n else TokenKind.EOF

    while _kind(i) is not TokenKind.EOF:
        if _kind(i) is not TokenKind.CLASS:
            raise DeclinedError("structure-parse")
        header_start = i
        i += 1
        if _kind(i) is not TokenKind.IDENT:
            raise DeclinedError("structure-parse")
        class_name = tokens[i].text
        i += 1
        superclass = ""
        if _kind(i) is TokenKind.EXTENDS:
            i += 1
            if _kind(i) is not TokenKind.IDENT:
                raise DeclinedError("structure-parse")
            superclass = tokens[i].text
            i += 1
        if _kind(i) is not TokenKind.LBRACE:
            raise DeclinedError("structure-parse")
        i += 1
        header_tokens = tokens[header_start:i]
        units.append(
            SourceUnit(
                "header",
                class_name,
                f"{class_name}#header",
                header_tokens[0].position.line,
                header_tokens[-1].position.line,
                _unit_fingerprint(
                    header_tokens, header_tokens[0].position.line
                ),
            )
        )
        structure.update(
            f"class\x00{class_name}\x00{superclass}\x01".encode("utf-8")
        )
        while _kind(i) is not TokenKind.RBRACE:
            if _kind(i) is TokenKind.EOF:
                raise DeclinedError("structure-parse")
            member_start = i
            while _kind(i) in (TokenKind.STATIC, TokenKind.FINAL):
                i += 1
            is_ctor = (
                _kind(i) is TokenKind.IDENT
                and tokens[i].text == class_name
                and _kind(i + 1) is TokenKind.LPAREN
            )
            if not is_ctor:
                # Type: base type token plus [] pairs, then the name.
                if _kind(i) not in (
                    TokenKind.INT,
                    TokenKind.BOOLEAN,
                    TokenKind.VOID,
                    TokenKind.IDENT,
                ):
                    raise DeclinedError("structure-parse")
                i += 1
                while (
                    _kind(i) is TokenKind.LBRACKET
                    and _kind(i + 1) is TokenKind.RBRACKET
                ):
                    i += 2
                if _kind(i) is not TokenKind.IDENT:
                    raise DeclinedError("structure-parse")
            member_name = tokens[i].text
            i += 1
            if _kind(i) is TokenKind.LPAREN:
                # Method or constructor: skip params, then the body.
                while _kind(i) is not TokenKind.RPAREN:
                    if _kind(i) is TokenKind.EOF:
                        raise DeclinedError("structure-parse")
                    i += 1
                i += 1
                sig_end = i  # tokens[member_start:sig_end] = signature
                if _kind(i) is not TokenKind.LBRACE:
                    raise DeclinedError("structure-parse")
                depth = 0
                while True:
                    if _kind(i) is TokenKind.EOF:
                        raise DeclinedError("structure-parse")
                    if _kind(i) is TokenKind.LBRACE:
                        depth += 1
                    elif _kind(i) is TokenKind.RBRACE:
                        depth -= 1
                        if depth == 0:
                            break
                    i += 1
                i += 1
                member_tokens = tokens[member_start:i]
                method_name = "<init>" if is_ctor else member_name
                signature = "\x00".join(
                    t.text for t in tokens[member_start:sig_end]
                )
                units.append(
                    SourceUnit(
                        "method",
                        class_name,
                        f"{class_name}.{method_name}",
                        member_tokens[0].position.line,
                        member_tokens[-1].position.line,
                        _unit_fingerprint(
                            member_tokens, member_tokens[0].position.line
                        ),
                        is_constructor=is_ctor,
                        method_name=method_name,
                    )
                )
                structure.update(
                    f"method\x00{method_name}\x00{signature}\x01"
                    .encode("utf-8")
                )
            else:
                # Field: everything through the terminating semicolon.
                while _kind(i) is not TokenKind.SEMI:
                    if _kind(i) is TokenKind.EOF:
                        raise DeclinedError("structure-parse")
                    i += 1
                i += 1
                member_tokens = tokens[member_start:i]
                fp = _unit_fingerprint(
                    member_tokens, member_tokens[0].position.line
                )
                units.append(
                    SourceUnit(
                        "field",
                        class_name,
                        f"{class_name}#field:{member_name}",
                        member_tokens[0].position.line,
                        member_tokens[-1].position.line,
                        fp,
                    )
                )
                # Field declarations (including initializer expressions,
                # which lower into <init>/<clinit>) are structural: any
                # change to them falls back to cold.
                structure.update(
                    f"field\x00{member_name}\x00{fp}\x01".encode("utf-8")
                )
        i += 1  # closing RBRACE
    return ProgramShape(
        units=units,
        structure_fingerprint=structure.hexdigest(),
        line_count=text.count("\n") + 1,
    )


# ---------------------------------------------------------------------------
# Line maps
# ---------------------------------------------------------------------------


class LineMap:
    """Piecewise-constant old-line -> new-line shift.

    Built from the aligned unit spans of two shapes with identical
    structure; lines between units (comments, blank lines) inherit the
    preceding unit's shift, which is safe because no IR position ever
    lands there.  The stdlib region (lines past the old user text)
    shifts uniformly by the change in user line count.
    """

    def __init__(self, old: ProgramShape, new: ProgramShape) -> None:
        starts: list[int] = []
        deltas: list[int] = []
        last = None
        prev_end = 0
        for old_unit, new_unit in zip(old.units, new.units):
            delta = new_unit.start_line - old_unit.start_line
            if delta != last:
                if old_unit.start_line <= prev_end:
                    # Two units share a source line but want different
                    # shifts (one-line classes pulled apart by an edit);
                    # a per-line map cannot express that.
                    raise DeclinedError("span-shift-conflict")
                starts.append(old_unit.start_line)
                deltas.append(delta)
                last = delta
            prev_end = max(prev_end, old_unit.end_line)
        tail = new.line_count - old.line_count
        if tail != last:
            starts.append(old.line_count + 1)
            deltas.append(tail)
        self._starts = starts
        self._deltas = deltas

    def map(self, line: int) -> int:
        if line <= 0:
            return line
        idx = bisect_right(self._starts, line) - 1
        if idx < 0:
            return line
        return line + self._deltas[idx]


# ---------------------------------------------------------------------------
# Constraint fragments
# ---------------------------------------------------------------------------


@dataclass
class Fragment:
    """Alpha-normalized points-to constraints of one SSA function.

    ``ops`` mirrors exactly what ``PointsToAnalysis._gen_constraints``
    would emit, with SSA variable names replaced by first-occurrence
    symbols and allocation sites by ordinals.  Two functions with equal
    fragments contribute isomorphic constraint systems; if one
    fragment's op list is a prefix of the other's, the shorter system
    is a subsystem of the longer (symbols are assigned left to right,
    so the shared prefix normalizes identically in both).
    """

    params: tuple[str, ...]
    ops: tuple
    var_names: list[str]  # symbol index -> SSA variable name
    alloc_instrs: list  # alloc ordinal -> New/NewArray instruction


def constraint_fragment(function) -> Fragment:
    var_ids: dict[str, int] = {}
    var_names: list[str] = []
    alloc_instrs: list = []
    ops: list = []

    def sym(name: str) -> int:
        i = var_ids.get(name)
        if i is None:
            i = len(var_names)
            var_ids[name] = i
            var_names.append(name)
        return i

    for instr in function.instructions():
        if isinstance(instr, ins.Const):
            if isinstance(instr.value, str):
                ops.append(("conststr", sym(instr.dest)))
        elif isinstance(instr, ins.Move):
            ops.append(("move", sym(instr.src), sym(instr.dest)))
        elif isinstance(instr, ins.Phi):
            operands = tuple(
                sym(op)
                for op in instr.operands.values()
                if not op.endswith(".undef")
            )
            ops.append(("phi", sym(instr.dest), operands))
        elif isinstance(instr, ins.Cast):
            filt = (
                str(instr.target_type)
                if instr.target_type.is_reference()
                else None
            )
            ops.append(("cast", sym(instr.src), sym(instr.dest), filt))
        elif isinstance(instr, ins.BinOp):
            if getattr(instr, "result_is_string", False):
                ops.append(("binstr", sym(instr.dest)))
        elif isinstance(instr, ins.New):
            ordinal = len(alloc_instrs)
            alloc_instrs.append(instr)
            ops.append(("new", ordinal, instr.class_name, sym(instr.dest)))
        elif isinstance(instr, ins.NewArray):
            ordinal = len(alloc_instrs)
            alloc_instrs.append(instr)
            ops.append(("newarray", ordinal, sym(instr.dest)))
        elif isinstance(instr, ins.FieldLoad):
            ops.append(
                ("fload", sym(instr.base), instr.field_name, sym(instr.dest))
            )
        elif isinstance(instr, ins.FieldStore):
            ops.append(
                ("fstore", sym(instr.base), instr.field_name, sym(instr.value))
            )
        elif isinstance(instr, ins.ArrayLoad):
            ops.append(("aload", sym(instr.base), sym(instr.dest)))
        elif isinstance(instr, ins.ArrayStore):
            ops.append(("astore", sym(instr.base), sym(instr.value)))
        elif isinstance(instr, ins.StaticLoad):
            ops.append(
                ("sload", instr.class_name, instr.field_name, sym(instr.dest))
            )
        elif isinstance(instr, ins.StaticStore):
            ops.append(
                ("sstore", instr.class_name, instr.field_name, sym(instr.value))
            )
        elif isinstance(instr, ins.Return):
            if instr.value is not None:
                ops.append(("ret", sym(instr.value)))
        elif isinstance(instr, ins.Call):
            if instr.kind == "builtin":
                continue
            if instr.kind == "native":
                ops.append(
                    (
                        "native",
                        instr.method_name,
                        None if instr.dest is None else sym(instr.dest),
                    )
                )
                continue
            ops.append(
                (
                    "call",
                    instr.kind,
                    instr.owner,
                    instr.method_name,
                    None if instr.receiver is None else sym(instr.receiver),
                    tuple(sym(a) for a in instr.args),
                    None if instr.dest is None else sym(instr.dest),
                )
            )
    for region in function.try_regions:
        for block_id in sorted(region.blocks):
            block = function.blocks.get(block_id)
            if block is None:
                continue
            for instr in block.instructions:
                if isinstance(instr, ins.Throw):
                    ops.append(
                        (
                            "catchflow",
                            sym(instr.value),
                            sym(region.catch_entry.dest),
                        )
                    )
    return Fragment(
        params=tuple(function.params),
        ops=tuple(ops),
        var_names=var_names,
        alloc_instrs=alloc_instrs,
    )


# ---------------------------------------------------------------------------
# Incremental session
# ---------------------------------------------------------------------------


@dataclass
class IncrementalOutcome:
    """One successful incremental re-analysis."""

    payload: bytes
    key: str
    tier: str  # 'relocate' | 'delta' | 'resolve'
    functions_reused: int
    functions_reanalyzed: int
    timings: dict


_counter_lock = threading.Lock()


def _reserve_uids_above(maximum: int) -> None:
    """Ensure the global instruction uid counter is past ``maximum``.

    Sessions adopt unpickled programs whose uids came from another
    process (workers reset the counter); advancing — never rewinding —
    the shared counter keeps every uid this process hands out unique
    relative to adopted ones.
    """
    with _counter_lock:
        probe = next(ins._instruction_ids)
        if probe <= maximum:
            ins._instruction_ids = itertools.count(maximum + 1)


class IncrementalSession:
    """Mutable analysis state for one program lineage.

    Keyed by (structure fingerprint, options token) in the server's
    fragment store; :meth:`apply_edit` advances the session to the
    edited source and returns cold-identical artifact bytes.  Not
    thread-safe — callers serialize edits per session (the fragment
    store holds a per-session lock).
    """

    def __init__(
        self,
        compiled: CompiledProgram,
        pts: PointsToResult,
        options,
        user_source: str,
        shape: ProgramShape,
        payload: bytes | None,
    ) -> None:
        self.compiled = compiled
        self.pts = pts
        self.options = options
        self.user_source = user_source
        self.shape = shape
        self.payload = payload
        self.flow_pairs_cache: dict[str, list] = {}
        self.ctrl_pairs_cache: dict[str, list] = {}
        self.fragment_memo: dict[str, Fragment] = {}
        self.dead = False
        self.edits = 0

    # -- construction ----------------------------------------------------

    @classmethod
    def from_analyzed(
        cls, analyzed, user_source: str, payload: bytes | None = None
    ) -> "IncrementalSession":
        """Seed a session from a cold analysis result.

        The analyzed program is deep-copied via a pickle round trip:
        the session mutates instructions in place (positions, uids),
        which must never leak into a cached entry that shares the
        object graph.  The round trip also forces every pending
        demand-SSA conversion, so the session works over plain dicts.
        """
        if analyzed.options.heap_mode != "direct":
            raise DeclinedError("heap-mode")
        user_source = normalize_source(user_source)
        shape = split_units(user_source)
        own = pickle.loads(
            pickle.dumps(
                replace(analyzed, sdg=None, timings=None),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        )
        max_uid = 0
        for function in own.compiled.ir.functions.values():
            for instr in function.instructions():
                if instr.uid > max_uid:
                    max_uid = instr.uid
        _reserve_uids_above(max_uid)
        return cls(
            compiled=own.compiled,
            pts=own.pts,
            options=own.options,
            user_source=user_source,
            shape=shape,
            payload=payload,
        )

    # -- the edit path ---------------------------------------------------

    def apply_edit(
        self,
        text: str,
        filename: str = "<input>",
        budget: "Budget | None" = None,
    ) -> IncrementalOutcome:
        """Re-analyze the edited ``text`` incrementally.

        Raises :class:`DeclinedError` when the edit is out of scope
        (caller falls back to cold with the session intact) and
        :class:`SessionDeadError` when a failure occurred after session
        state was already mutated (caller must discard the session).
        """
        if self.dead:
            raise DeclinedError("session-dead")
        profiler = StageProfiler()
        text = normalize_source(text)
        with profiler.stage("units"):
            new_shape = split_units(text)
            if (
                new_shape.structure_fingerprint
                != self.shape.structure_fingerprint
            ):
                raise DeclinedError("structure-changed")
            old_units = self.shape.units
            new_units = new_shape.units
            dirty: list[tuple[SourceUnit, SourceUnit]] = []
            for old_unit, new_unit in zip(old_units, new_units):
                if old_unit.fingerprint != new_unit.fingerprint:
                    if old_unit.kind != "method":
                        # header/field changes that survived the
                        # structure check are positional-only for
                        # headers; fields are covered by structure.
                        if old_unit.kind == "field":
                            raise DeclinedError("field-changed")
                        raise DeclinedError("header-changed")
                    dirty.append((old_unit, new_unit))
        line_map = LineMap(self.shape, new_shape)
        if budget is not None:
            budget.check()

        options = self.options
        key = content_key(text, options)
        method_units = sum(1 for u in new_units if u.kind == "method")

        if not dirty:
            payload = self._relocate_artifact(text, filename, key, line_map)
            if payload is not None:
                # The payload is rewritten through the line map, and the
                # in-memory graph must follow: a later delta/resolve-tier
                # edit relocates AST and instruction positions through
                # *its* line map, whose domain is the last committed
                # text.  Skipping this here would leave positions in the
                # text of two edits ago.
                self._relocate_state(line_map, filename)
                self._commit(text, filename, new_shape, payload)
                profiler.add_count("functions_reused", method_units)
                profiler.add_count("functions_reanalyzed", 0)
                return IncrementalOutcome(
                    payload=payload,
                    key=key,
                    tier="relocate",
                    functions_reused=method_units,
                    functions_reanalyzed=0,
                    timings=profiler.as_dict(),
                )

        # Re-compile every dirty method before touching session state:
        # everything up to here is failure-safe (decline -> cold).
        with profiler.stage("frontend"):
            rebuilt = [
                (
                    old_unit,
                    new_unit,
                    self._recompile_method(text, new_unit, filename),
                )
                for old_unit, new_unit in dirty
            ]
            old_fragments = {}
            for old_unit, _new_unit in dirty:
                frag = self.fragment_memo.get(old_unit.fingerprint)
                if frag is None:
                    frag = constraint_fragment(
                        self.compiled.ir.functions[old_unit.name]
                    )
                old_fragments[old_unit.name] = frag
        if budget is not None:
            budget.check()

        # ---- point of no return: session state is mutated below ----
        try:
            outcome = self._apply_and_analyze(
                text,
                filename,
                key,
                new_shape,
                line_map,
                rebuilt,
                old_fragments,
                profiler,
                budget,
                method_units,
            )
        except BudgetExceeded:
            # Preserve the cancellation taxonomy for the server, but
            # the half-mutated session still has to go.
            self.dead = True
            raise
        except Exception as exc:
            self.dead = True
            raise SessionDeadError(str(exc)) from exc
        return outcome

    # -- tier 0: pure line shift ----------------------------------------

    def _relocate_artifact(
        self, text: str, filename: str, key: str, line_map: LineMap
    ) -> bytes | None:
        """Rewrite the previous artifact's position-bearing sections.

        A zero-dirty edit cannot change any node, edge, site rank, or
        function span — only source lines moved.  ``LINE`` entries and
        ``LKEY`` line keys map through the (strictly monotonic on code
        lines) line map, ``SRC `` and ``META`` are replaced, ``RICH``
        is dropped.  Returns None when no previous payload is held
        (first edit of a freshly seeded session): the caller then runs
        the full reuse path, which produces the identical bytes.
        """
        from repro.artifact.format import pack_sections

        payload = self.payload
        if payload is None:
            return None
        sections = parse_sections(payload)
        meta = json.loads(bytes(_section(payload, sections, b"META")))
        lines = array.array("i")
        lines.frombytes(_section(payload, sections, b"LINE"))
        for i, line in enumerate(lines):
            if line > 0:
                lines[i] = line_map.map(line)
        lkey = array.array("i")
        lkey.frombytes(_section(payload, sections, b"LKEY"))
        for i, line in enumerate(lkey):
            lkey[i] = line_map.map(line)
        for i in range(1, len(lkey)):
            if lkey[i] <= lkey[i - 1]:
                return None  # non-monotonic shift; take the slow path
        full_text = text
        if self.options.include_stdlib:
            full_text = text + "\n" + stdlib_source()
        meta["key"] = key
        meta["filename"] = filename
        meta["user_len"] = len(text)
        out: list[tuple[bytes, bytes]] = []
        for tag in CANONICAL_TAGS:
            if tag == b"META":
                out.append((tag, json.dumps(meta, sort_keys=True).encode("utf-8")))
            elif tag == b"LINE":
                out.append((tag, lines.tobytes()))
            elif tag == b"LKEY":
                out.append((tag, lkey.tobytes()))
            elif tag == b"SRC ":
                out.append((tag, full_text.encode("utf-8")))
            elif tag in sections:
                out.append((tag, bytes(_section(payload, sections, tag))))
        return pack_sections(out)

    def _relocate_state(self, line_map: LineMap, filename: str) -> None:
        """Shift the in-memory AST and instruction positions in place.

        The zero-dirty tier rewrites the stored payload; this keeps the
        live object graph in the same coordinate system so the next
        non-trivial edit's line map (old committed text -> new text)
        applies to positions that really are in the old committed text.
        Pure mutation of ``position`` fields — no uids, fragments, or
        points-to state change.
        """
        user_classes = {u.class_name for u in self.shape.units}
        for decl in self.compiled.ast.classes:
            if decl.name in user_classes:
                _relocate_decl(decl, line_map, filename)
        for function in self.compiled.ir.functions.values():
            for instr in function.instructions():
                position = instr.position
                new_line = line_map.map(position.line)
                if (
                    new_line != position.line
                    or position.filename != filename
                ):
                    instr.position = Position(
                        new_line, position.column, filename
                    )

    # -- dirty-method recompilation --------------------------------------

    def _recompile_method(self, text: str, unit: SourceUnit, filename: str):
        """Parse + type-check + lower + SSA one edited method.

        The method's lines are re-parsed inside a synthetic class
        wrapper padded with blank lines, so every token carries its
        true position in the edited file.  Any diagnostic here declines
        the edit — the cold path reproduces the exact error text and
        position for the whole program.
        """
        src_lines = text.split("\n")
        start, end = unit.start_line, unit.end_line
        if start < 2 or end > len(src_lines):
            raise DeclinedError("span-bounds")
        wrapper = "\n".join(
            [""] * (start - 2)
            + [f"class {unit.class_name} {{"]
            + src_lines[start - 1 : end]
            + ["}"]
        )
        try:
            parsed = Parser(tokenize(wrapper, filename)).parse_program()
        except MJError:
            raise DeclinedError("frontend-error") from None
        if len(parsed.classes) != 1 or len(parsed.classes[0].methods) != 1:
            raise DeclinedError("wrapper-shape")
        method = parsed.classes[0].methods[0]
        if method.is_constructor != unit.is_constructor or (
            not unit.is_constructor and method.name != unit.method_name
        ):
            raise DeclinedError("wrapper-shape")
        table = self.compiled.table
        decl = table.info(unit.class_name).decl
        checker = TypeChecker(table)
        checker._check_method(decl, method)
        if checker.errors:
            raise DeclinedError("frontend-error")
        # Probe-lower the method on a throwaway builder: some
        # diagnostics (e.g. ``super(...)`` placement) only fire at IR
        # build time, and the real lowering runs after the session has
        # started mutating — it must not be the first to see them.  The
        # probe result is discarded; only burned instruction uids
        # remain, and uids are encoded as ranks, so that is harmless.
        builder = _FunctionBuilder(table, decl, method)
        try:
            if unit.is_constructor:
                to_ssa(builder.build_constructor())
            else:
                to_ssa(builder.build_method())
        except MJError:
            raise DeclinedError("frontend-error") from None
        return method

    # -- the mutating phase ----------------------------------------------

    def _apply_and_analyze(
        self,
        text: str,
        filename: str,
        key: str,
        new_shape: ProgramShape,
        line_map: LineMap,
        rebuilt: list,
        old_fragments: dict[str, Fragment],
        profiler: StageProfiler,
        budget: "Budget | None",
        method_units: int,
    ) -> IncrementalOutcome:
        compiled = self.compiled
        table = compiled.table
        ir = compiled.ir
        dirty_names = {old_unit.name for old_unit, _n, _m in rebuilt}

        with profiler.stage("frontend"):
            # Swap the edited methods into the AST and class table, and
            # relocate the AST positions a later rebuild could consume
            # (class headers and field declarations — their initializer
            # expressions lower into constructors).
            user_classes = {u.class_name for u in new_shape.units}
            for decl in compiled.ast.classes:
                if decl.name in user_classes:
                    _relocate_decl(decl, line_map, filename)
            for old_unit, _new_unit, method in rebuilt:
                info = table.info(old_unit.class_name)
                decl = info.decl
                if old_unit.is_constructor:
                    old_method = info.constructor
                    info.constructor = method
                else:
                    old_method = info.methods[old_unit.method_name]
                    info.methods[old_unit.method_name] = method
                decl.methods[decl.methods.index(old_method)] = method

            # Lower + SSA the dirty methods.
            new_functions: dict[str, object] = {}
            for old_unit, _new_unit, method in rebuilt:
                decl = table.info(old_unit.class_name).decl
                builder = _FunctionBuilder(table, decl, method)
                if old_unit.is_constructor:
                    function = builder.build_constructor()
                else:
                    function = builder.build_method()
                compiled.dominators[function.name] = to_ssa(function)
                new_functions[function.name] = function
            for name, function in new_functions.items():
                ir.functions[name] = function  # same slot: order preserved

            # Relocate surviving instructions and renumber everything in
            # program order — reproducing the uid order (and with it the
            # call-site ranks and node sort) of a cold compile.
            uid_instr: dict[int, ins.Instruction] = {}
            site_owner: dict[int, str] = {}
            fresh = ins._instruction_ids
            for name, function in ir.functions.items():
                relocate = name not in dirty_names
                instrs = sorted(function.instructions(), key=lambda i: i.uid)
                for instr in instrs:
                    old_uid = instr.uid
                    instr.uid = next(fresh)
                    if relocate:
                        uid_instr[old_uid] = instr
                        site_owner[old_uid] = name
                        position = instr.position
                        new_line = line_map.map(position.line)
                        if (
                            new_line != position.line
                            or position.filename != filename
                        ):
                            instr.position = Position(
                                new_line, position.column, filename
                            )
            ir._owner_of = {
                instr.uid: name
                for name, function in ir.functions.items()
                for instr in function.instructions()
            }
            for name in dirty_names:
                self.flow_pairs_cache.pop(name, None)
                self.ctrl_pairs_cache.pop(name, None)

            full_text = text
            if self.options.include_stdlib:
                full_text = text + "\n" + stdlib_source()
            new_compiled = CompiledProgram(
                source=SourceFile(filename, full_text),
                ast=compiled.ast,
                table=table,
                ir=ir,
                dominators=compiled.dominators,
            )
            self.compiled = new_compiled

            # Classify: can the old solution warm-start the solver?
            new_fragments: dict[str, Fragment] = {}
            warm = True
            for old_unit, new_unit, _method in rebuilt:
                name = old_unit.name
                fragment = constraint_fragment(ir.functions[name])
                new_fragments[name] = fragment
                self.fragment_memo[new_unit.fingerprint] = fragment
                old_fragment = old_fragments[name]
                if old_fragment.params != fragment.params or (
                    fragment.ops[: len(old_fragment.ops)] != old_fragment.ops
                ):
                    warm = False
        if budget is not None:
            budget.check()

        with profiler.stage("pointsto"):
            warm_pts = None
            if warm:
                warm_pts = _translate_pts(
                    self.pts,
                    uid_instr,
                    site_owner,
                    ir,
                    {
                        name: (old_fragments[name], new_fragments[name])
                        for name in new_fragments
                    },
                )
            if warm_pts is not None:
                tier = "delta"
            else:
                tier = "resolve"
            pts = solve_points_to(
                ir,
                containers=self.options.containers,
                budget=budget,
                warm_pts=warm_pts,
            )

        with profiler.stage("sdg"):
            sdg = build_sdg(
                new_compiled,
                pts,
                heap_mode=self.options.heap_mode,
                include_control=self.options.include_control,
                budget=budget,
                flow_pairs_cache=self.flow_pairs_cache,
                ctrl_pairs_cache=self.ctrl_pairs_cache,
            )

        with profiler.stage("encode"):
            from repro import AnalyzedProgram

            analyzed = AnalyzedProgram(
                new_compiled, pts, sdg, self.options, None
            )
            payload = encode_artifact(analyzed, key=key, include_rich=False)

        self.pts = pts
        self._commit(text, filename, new_shape, payload)
        reused = method_units - len(rebuilt)
        profiler.add_count("functions_reused", reused)
        profiler.add_count("functions_reanalyzed", len(rebuilt))
        return IncrementalOutcome(
            payload=payload,
            key=key,
            tier=tier,
            functions_reused=reused,
            functions_reanalyzed=len(rebuilt),
            timings=profiler.as_dict(),
        )

    def _commit(
        self, text: str, filename: str, shape: ProgramShape, payload: bytes
    ) -> None:
        self.user_source = text
        self.shape = shape
        self.payload = payload
        self.edits += 1
        if len(self.fragment_memo) > 256:
            self.fragment_memo.clear()


# ---------------------------------------------------------------------------
# Translation of the old solution into the new id/label space
# ---------------------------------------------------------------------------


def _translate_pts(
    old: PointsToResult,
    uid_instr: dict[int, ins.Instruction],
    site_owner: dict[int, str],
    ir,
    dirty_fragments: dict[str, tuple[Fragment, Fragment]],
) -> "dict | None":
    """Map every old pointer key / abstract object into the new space.

    Surviving instructions were renumbered in place, so ``uid_instr``
    carries old-uid -> instruction; dirty functions contribute an
    alloc-ordinal and variable-symbol correspondence from their
    fragment pair.  Returns None when any old key cannot be mapped
    (the caller then re-solves cold — never guesses).
    """
    var_maps: dict[str, dict[str, str]] = {}
    for name, (old_frag, new_frag) in dirty_fragments.items():
        var_maps[name] = {
            old_var: new_frag.var_names[i]
            for i, old_var in enumerate(old_frag.var_names)
        }
        for i, instr in enumerate(old_frag.alloc_instrs):
            # Old alloc instruction objects were replaced; route their
            # (stale) uids to the corresponding new instructions.
            uid_instr[instr.uid] = new_frag.alloc_instrs[i]
            site_owner[instr.uid] = name

    obj_memo: dict[AbstractObject, AbstractObject | None] = {}

    def translate_obj(obj: AbstractObject | None):
        if obj is None:
            return None
        cached = obj_memo.get(obj)
        if cached is not None:
            return cached
        if obj.site < 0:
            obj_memo[obj] = obj
            return obj
        instr = uid_instr.get(obj.site)
        if instr is None:
            raise _Unmappable()
        owner = site_owner[obj.site]
        translated = AbstractObject(
            instr.uid,
            obj.class_name,
            obj.kind,
            translate_obj(obj.context),
            f"{owner}:{instr.position.line}",
        )
        obj_memo[obj] = translated
        return translated

    set_memo: dict[int, frozenset] = {}

    def translate_set(objs: frozenset) -> frozenset:
        cached = set_memo.get(id(objs))
        if cached is None:
            cached = frozenset(translate_obj(o) for o in objs)
            set_memo[id(objs)] = cached
        return cached

    from repro.analysis.heapmodel import (
        FieldKey,
        RetKey,
        StaticKey,
        VarKey,
    )

    out: dict = {}
    try:
        for pkey, objs in old.pts.items():
            cls = type(pkey)
            if cls is VarKey:
                var = pkey.var
                mapping = var_maps.get(pkey.function)
                if mapping is not None:
                    var = mapping.get(var)
                    if var is None:
                        raise _Unmappable()
                new_key = VarKey(
                    pkey.function, var, translate_obj(pkey.context)
                )
            elif cls is FieldKey:
                new_key = FieldKey(translate_obj(pkey.obj), pkey.field)
            elif cls is RetKey:
                new_key = RetKey(pkey.function, translate_obj(pkey.context))
            elif cls is StaticKey:
                new_key = pkey
            else:
                raise _Unmappable()
            out[new_key] = translate_set(objs)
    except _Unmappable:
        return None
    return out


class _Unmappable(Exception):
    pass


# ---------------------------------------------------------------------------
# AST relocation (headers and fields only; method bodies are replaced)
# ---------------------------------------------------------------------------


def _relocate_decl(decl: ast.ClassDecl, line_map: LineMap, filename: str) -> None:
    _relocate_node(decl, line_map, filename, set())
    for field_decl in decl.fields:
        _relocate_tree(field_decl, line_map, filename)


def _relocate_tree(node, line_map: LineMap, filename: str) -> None:
    seen: set[int] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        _relocate_node(current, line_map, filename, seen)
        for value in vars(current).values():
            if isinstance(value, ast.Node):
                stack.append(value)
            elif isinstance(value, list):
                stack.extend(v for v in value if isinstance(v, ast.Node))


def _relocate_node(node, line_map: LineMap, filename: str, _seen) -> None:
    position = getattr(node, "position", None)
    if isinstance(position, Position) and position.line > 0:
        new_line = line_map.map(position.line)
        if new_line != position.line or position.filename != filename:
            moved = Position(new_line, position.column, filename)
            try:
                node.position = moved
            except AttributeError:  # frozen dataclass node
                object.__setattr__(node, "position", moved)


def _section(payload: bytes, sections: dict, tag: bytes):
    offset, length = sections[tag]
    return payload[offset : offset + length]
