"""Resource sentinels: structured memory accounting for analyses.

Hostile or pathological inputs can exhaust memory long before they
exhaust a wall-clock budget.  This module gives the pipeline a
*structured* answer to that failure mode, mirroring what
:class:`repro.budget.Budget` does for time:

* :class:`ResourceExceeded` — the error every layer raises/transports
  when a resource cap is hit.  Like :class:`~repro.budget.BudgetExceeded`
  it carries a machine-checkable ``reason`` (currently ``"memory"``),
  but it is deliberately *not* a subclass: the daemon maps budget
  overruns to ``Timeout``/``Cancelled`` and resource overruns to their
  own ``ResourceExceeded`` wire type.
* :func:`process_rss_mb` — resident-set sampling via ``/proc`` (gated:
  returns ``None`` where unavailable).  The parent side of
  :class:`repro.parallel.ProcessPool` polls this alongside its deadline
  poll and **kills** a worker that outgrows
  ``AnalyzeOptions.memory_limit_mb``, surfacing :class:`ResourceExceeded`
  instead of an OOM kill.
* :func:`apply_memory_rlimit` — the in-worker backstop:
  ``resource.setrlimit(RLIMIT_AS)`` with headroom above the RSS cap, so
  a single allocation too fast for the parent's ~50 ms poll raises
  ``MemoryError`` inside the worker instead of taking the host down.
  Task code converts that ``MemoryError`` to :class:`ResourceExceeded`.

Nothing here imports the analysis pipeline, so worker processes and the
fuzz oracle can use it without cycles.
"""

from __future__ import annotations

import os

try:  # POSIX only; Windows has neither resource nor /proc.
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None  # type: ignore[assignment]

#: Extra address space granted above ``memory_limit_mb`` by the rlimit
#: backstop.  RLIMIT_AS bounds *virtual* memory, which for a Python
#: process sits well above its RSS (allocator arenas, mapped files),
#: so the backstop needs room or it would fire before the RSS cap.
RLIMIT_HEADROOM_MB = 512

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


class ResourceExceeded(Exception):
    """An analysis outran a resource cap (currently: worker memory).

    ``reason`` is a short machine-checkable tag (``"memory"``);
    ``limit_mb``/``observed_mb`` record the cap and the measurement that
    tripped it (``observed_mb`` may be None when the in-worker rlimit
    backstop fired — there is no sample, only the failed allocation).
    """

    def __init__(
        self,
        reason: str,
        detail: str = "",
        *,
        limit_mb: float | None = None,
        observed_mb: float | None = None,
    ) -> None:
        self.reason = reason
        self.limit_mb = limit_mb
        self.observed_mb = observed_mb
        super().__init__(detail or reason)


def process_rss_mb(pid: int | None = None) -> float | None:
    """Resident set size of ``pid`` (default: this process) in MiB.

    Reads ``/proc/<pid>/statm`` — one short read, cheap enough for a
    50 ms poll loop.  Returns ``None`` where /proc is unavailable (the
    sentinel then degrades to the rlimit backstop alone) or when the
    process is already gone.
    """
    target = os.getpid() if pid is None else pid
    try:
        with open(f"/proc/{target}/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE / (1024 * 1024)
    except (OSError, ValueError, IndexError):
        return None


def apply_memory_rlimit(limit_mb: float) -> bool:
    """Best-effort ``RLIMIT_AS`` backstop at ``limit_mb`` + headroom.

    Called inside worker processes before an analysis runs.  Returns
    True when a limit was installed.  Raising the soft limit back up
    for a later unlimited task is allowed (the hard limit is left
    untouched), so warm workers can run tasks with different caps.
    """
    if _resource is None or limit_mb <= 0:
        return False
    soft_bytes = int((limit_mb + RLIMIT_HEADROOM_MB) * 1024 * 1024)
    try:
        _, hard = _resource.getrlimit(_resource.RLIMIT_AS)
        if hard != _resource.RLIM_INFINITY:
            soft_bytes = min(soft_bytes, hard)
        _resource.setrlimit(_resource.RLIMIT_AS, (soft_bytes, hard))
        return True
    except (OSError, ValueError):  # pragma: no cover - platform quirks
        return False


def clear_memory_rlimit() -> None:
    """Reset the soft ``RLIMIT_AS`` to the hard limit (end of task)."""
    if _resource is None:
        return
    try:
        _, hard = _resource.getrlimit(_resource.RLIMIT_AS)
        _resource.setrlimit(_resource.RLIMIT_AS, (hard, hard))
    except (OSError, ValueError):  # pragma: no cover - platform quirks
        pass
