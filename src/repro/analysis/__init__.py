"""Whole-program analyses: points-to, call graph, mod-ref."""

from repro.analysis.callgraph import CallGraph, MethodInstance
from repro.analysis.heapmodel import (
    ARRAY_FIELD,
    AbstractObject,
    FieldKey,
    RetKey,
    STRING_OBJECT,
    StaticKey,
    VarKey,
)
from repro.analysis.modref import HeapLoc, ModRefResult, compute_modref
from repro.analysis.pointsto import (
    DEFAULT_CONTAINER_CLASSES,
    PointsToAnalysis,
    PointsToResult,
    solve_points_to,
)

__all__ = [
    "ARRAY_FIELD",
    "AbstractObject",
    "CallGraph",
    "DEFAULT_CONTAINER_CLASSES",
    "FieldKey",
    "HeapLoc",
    "MethodInstance",
    "ModRefResult",
    "PointsToAnalysis",
    "PointsToResult",
    "RetKey",
    "STRING_OBJECT",
    "StaticKey",
    "VarKey",
    "compute_modref",
    "solve_points_to",
]
