"""Interprocedural mod-ref analysis over heap partitions.

For the context-sensitive SDG (§5.3), every procedure needs formal-in
nodes for the heap partitions it may (transitively) read and formal-out
nodes for those it may write.  Partitions reuse the points-to heap
abstraction — ``(abstract object, field)`` pairs and static fields — as
in the paper: "Our implementation introduces such parameters using the
same heap partitions used by the preliminary pointer analysis."
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.heapmodel import ARRAY_FIELD, AbstractObject
from repro.analysis.pointsto import PointsToResult
from repro.ir import instructions as ins
from repro.ir.cfg import IRProgram


@dataclass(frozen=True)
class HeapLoc:
    """One heap partition: an object field, array contents, or a static."""

    kind: str  # 'field' | 'static'
    obj: AbstractObject | None
    class_name: str
    field: str

    def __str__(self) -> str:
        if self.kind == "static":
            return f"{self.class_name}.{self.field}"
        return f"{self.obj}.{self.field}"


def field_loc(obj: AbstractObject, field: str) -> HeapLoc:
    return HeapLoc("field", obj, obj.class_name, field)


def static_loc(class_name: str, field: str) -> HeapLoc:
    return HeapLoc("static", None, class_name, field)


@dataclass
class ModRefResult:
    """Per-function transitive mod/ref heap partition sets."""

    mod: dict[str, frozenset[HeapLoc]]
    ref: dict[str, frozenset[HeapLoc]]
    local_mod: dict[str, frozenset[HeapLoc]]
    local_ref: dict[str, frozenset[HeapLoc]]

    def heap_param_count(self, function: str) -> int:
        return len(self.mod.get(function, ())) + len(self.ref.get(function, ()))


def _locs_for_access(
    pts: PointsToResult, function: str, base_var: str, field: str
) -> set[HeapLoc]:
    return {field_loc(obj, field) for obj in pts.points_to(function, base_var)}


def compute_modref(program: IRProgram, pts: PointsToResult) -> ModRefResult:
    """Direct mod/ref per function, then transitive closure over calls."""
    local_mod: dict[str, set[HeapLoc]] = defaultdict(set)
    local_ref: dict[str, set[HeapLoc]] = defaultdict(set)

    reachable = pts.call_graph.reachable_functions()
    for name in reachable:
        function = program.functions.get(name)
        if function is None:
            continue
        for instr in function.instructions():
            if isinstance(instr, ins.FieldStore):
                local_mod[name] |= _locs_for_access(
                    pts, name, instr.base, instr.field_name
                )
            elif isinstance(instr, ins.FieldLoad):
                local_ref[name] |= _locs_for_access(
                    pts, name, instr.base, instr.field_name
                )
            elif isinstance(instr, ins.ArrayStore):
                local_mod[name] |= _locs_for_access(
                    pts, name, instr.base, ARRAY_FIELD
                )
            elif isinstance(instr, (ins.ArrayLoad, ins.ArrayLength)):
                local_ref[name] |= _locs_for_access(
                    pts, name, instr.base, ARRAY_FIELD
                )
            elif isinstance(instr, ins.StaticStore):
                local_mod[name].add(static_loc(instr.class_name, instr.field_name))
            elif isinstance(instr, ins.StaticLoad):
                local_ref[name].add(static_loc(instr.class_name, instr.field_name))

    mod = {name: set(v) for name, v in local_mod.items()}
    ref = {name: set(v) for name, v in local_ref.items()}
    for name in reachable:
        mod.setdefault(name, set())
        ref.setdefault(name, set())

    # Propagate callee effects to callers until fixpoint.
    changed = True
    while changed:
        changed = False
        for caller in reachable:
            for callee in pts.call_graph.callee_functions(caller):
                for table, source in ((mod, mod), (ref, ref)):
                    extra = source.get(callee, set()) - table[caller]
                    if extra:
                        table[caller] |= extra
                        changed = True

    return ModRefResult(
        mod={k: frozenset(v) for k, v in mod.items()},
        ref={k: frozenset(v) for k, v in ref.items()},
        local_mod={k: frozenset(v) for k, v in local_mod.items()},
        local_ref={k: frozenset(v) for k, v in local_ref.items()},
    )
