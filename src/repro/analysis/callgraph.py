"""Call graph built on the fly by the points-to analysis.

Nodes are *method instances*: a function name plus its object-sensitivity
context (None for context-insensitively analyzed methods).  As in the
paper's Table 1, the node count can exceed the method count because of
cloning-based context sensitivity.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.heapmodel import AbstractObject, _CachedHash


@dataclass(frozen=True)
class MethodInstance(_CachedHash):
    function: str
    context: AbstractObject | None = None

    __hash_fields__ = ("function", "context")

    def __hash__(self) -> int:  # specialized _CachedHash: no getattr loop
        try:
            return self._hash
        except AttributeError:
            value = hash((self.function, self.context))
            object.__setattr__(self, "_hash", value)
            return value

    def __str__(self) -> str:
        if self.context is None:
            return self.function
        return f"{self.function}@{self.context}"


class CallGraph:
    """Instance-level call graph with call-site-resolved edges."""

    def __init__(self) -> None:
        self.nodes: set[MethodInstance] = set()
        # (caller instance, call-site uid) -> callee instances
        self.edges: dict[tuple[MethodInstance, int], set[MethodInstance]] = (
            defaultdict(set)
        )
        self._callees_by_site: dict[int, set[MethodInstance]] = defaultdict(set)
        self._callers_of: dict[str, set[tuple[MethodInstance, int]]] = defaultdict(set)
        self._function_callees: dict[str, set[str]] = defaultdict(set)

    def add_node(self, node: MethodInstance) -> None:
        self.nodes.add(node)

    def add_edge(
        self, caller: MethodInstance, call_uid: int, callee: MethodInstance
    ) -> None:
        self.add_node(caller)
        self.add_node(callee)
        self.edges[(caller, call_uid)].add(callee)
        self._callees_by_site[call_uid].add(callee)
        self._callers_of[callee.function].add((caller, call_uid))
        self._function_callees[caller.function].add(callee.function)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def targets_of_site(self, call_uid: int) -> set[str]:
        """Function names a call site may dispatch to (contexts merged)."""
        return {inst.function for inst in self._callees_by_site.get(call_uid, ())}

    def instances_of_site(self, call_uid: int) -> set[MethodInstance]:
        return set(self._callees_by_site.get(call_uid, ()))

    def call_sites_of(self, function: str) -> set[tuple[MethodInstance, int]]:
        """(caller instance, call-site uid) pairs that reach ``function``."""
        return set(self._callers_of.get(function, ()))

    def callee_functions(self, function: str) -> set[str]:
        return set(self._function_callees.get(function, ()))

    def reachable_functions(self) -> set[str]:
        return {node.function for node in self.nodes}

    def node_count(self) -> int:
        return len(self.nodes)

    def function_count(self) -> int:
        return len(self.reachable_functions())

    def edge_count(self) -> int:
        return sum(len(v) for v in self.edges.values())
