"""Andersen-style points-to analysis with on-the-fly call graph.

This is the reproduction of the paper's §6.1 configuration: "a variant of
Andersen's analysis with on-the-fly call graph construction, with fully
object-sensitive cloning for objects of key collections classes".

* Field-sensitive subset constraints over allocation-site objects.
* Call graph discovered during solving (receivers resolve targets).
* Methods whose receiver is an instance of a configured *container*
  class are cloned per receiver object, and allocations inside cloned
  instances carry that context — so each Vector's backing array is a
  distinct abstract object.  Passing an empty container set yields the
  context-insensitive baseline used for the NoObjSens ablation columns
  of Tables 2 and 3.

The solver here is the optimized one (see ``docs/PERFORMANCE.md``):

* pointer keys and abstract objects are interned to small integers, so
  points-to sets are sets of ints and the hot loops never re-hash
  recursive dataclasses;
* online cycle collapsing — the copy-edge graph (unfiltered subset
  edges only; cast/param edges with declared-type filters are *not*
  pure copies and never collapse) is periodically condensed with
  Tarjan's SCC algorithm over a union-find, so every variable in a
  copy cycle shares one points-to set;
* the worklist is a priority queue ordered by the condensation's
  topological rank (sources first), recomputed at each collapse;
* difference propagation: only the delta of a points-to set flows along
  edges, and type-filter verdicts are memoized per ``(object, type)``.

The original straightforward solver is preserved verbatim in
:mod:`repro.analysis.pointsto_reference`; ``tests/test_differential.py``
pins this solver to it result-for-result on every suite program.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from heapq import heappop, heappush

from repro.analysis.heapmodel import (
    ARGS_ARRAY_OBJECT,
    ARRAY_FIELD,
    AbstractObject,
    FieldKey,
    PointerKey,
    RetKey,
    STRING_OBJECT,
    StaticKey,
    VarKey,
    make_object,
)
from repro.analysis.callgraph import CallGraph, MethodInstance
from repro.budget import Budget
from repro.ir import instructions as ins
from repro.ir.cfg import IRFunction, IRProgram
from repro.lang.symbols import STRING_NATIVES
from repro.lang.types import ArrayType, ClassType, STRING, Type

DEFAULT_CONTAINER_CLASSES = frozenset(
    {
        "Vector",
        "VectorIterator",
        "HashMap",
        "MapEntry",
        "LinkedList",
        "ListNode",
        "Stack",
        "StringBuilder",
        "TreeMap",
        "TreeNode",
    }
)

_STRING_RETURNING_NATIVES = frozenset(
    name for (name, _), sig in STRING_NATIVES.items() if sig.return_type == STRING
)


@dataclass
class _CallSite:
    """A call awaiting receiver objects for resolution."""

    instr: ins.Call
    caller: str
    context: AbstractObject | None


@dataclass
class PointsToResult:
    """Solved points-to sets plus the discovered call graph."""

    pts: dict[PointerKey, frozenset[AbstractObject]]
    call_graph: CallGraph
    instances: dict[str, set[AbstractObject | None]]
    containers: frozenset[str]

    def points_to(self, function: str, var: str) -> set[AbstractObject]:
        """The merged (over contexts) points-to set of an SSA variable."""
        memo = self.__dict__.setdefault("_points_to_memo", {})
        cached = memo.get((function, var))
        if cached is None:
            merged: set[AbstractObject] = set()
            for context in self.instances.get(function, {None}):
                merged |= self.pts.get(VarKey(function, var, context), frozenset())
            cached = frozenset(merged)
            memo[(function, var)] = cached
        return set(cached)

    def may_alias(self, fn_a: str, var_a: str, fn_b: str, var_b: str) -> bool:
        return bool(self.points_to(fn_a, var_a) & self.points_to(fn_b, var_b))

    def static_points_to(self, class_name: str, field_name: str):
        return set(self.pts.get(StaticKey(class_name, field_name), frozenset()))

    def __getstate__(self):
        # The points_to memo is a per-process cache; don't persist it.
        state = dict(self.__dict__)
        state.pop("_points_to_memo", None)
        return state


class PointsToAnalysis:
    """Constraint generation + cycle-collapsing worklist solver.

    All solver state is indexed by small integers: ``_keys[i]`` is the
    pointer key interned as id ``i`` and ``_objs[o]`` the abstract
    object interned as ``o``.  ``_rep`` is a union-find forest over key
    ids; every read goes through :meth:`_find`, so after an SCC merge
    all members transparently share the representative's state.
    """

    def __init__(
        self,
        program: IRProgram,
        containers: frozenset[str] | None = DEFAULT_CONTAINER_CLASSES,
        max_context_depth: int = 2,
        budget: Budget | None = None,
        warm_pts: dict | None = None,
    ) -> None:
        self.program = program
        self.table = program.table
        self.containers = frozenset(containers or ())
        self.max_context_depth = max_context_depth
        self.budget = budget
        self.warm_pts = warm_pts

        # Interning tables.
        self._key_id: dict[PointerKey, int] = {}
        self._keys: list[PointerKey] = []
        self._obj_id: dict[AbstractObject, int] = {}
        self._objs: list[AbstractObject] = []
        # Fast-path id caches keyed by plain tuples, so the hot paths
        # hash C-level tuples of interned strings/ints instead of
        # constructing and hashing a fresh dataclass key every time.
        self._var_ids: dict[tuple, int] = {}
        self._field_ids: dict[tuple[int, str], int] = {}

        # Per-key-id solver state (parallel lists).
        self._rep: list[int] = []  # union-find parent
        self._pts: list[set[int]] = []
        self._pending: list[set[int]] = []  # delta not yet propagated
        self._copy_out: list[set[int]] = []  # unfiltered subset edges
        self._filtered_out: list[set[tuple[int, Type]]] = []
        # Deps are insertion-ordered and deduplicated (dict-as-set).
        self._load_deps: list[dict[tuple[str, int], None]] = []
        self._store_deps: list[dict[tuple[str, int, Type | None], None]] = []
        self._dispatch_deps: list[dict[tuple, _CallSite]] = []

        # Topologically ranked priority worklist.
        self._rank: list[int] = []
        self._next_rank = 0
        self._wl: list[tuple[int, int]] = []

        # Cycle collapsing trigger.
        self._copy_edges_added = 0
        self._collapse_threshold = 512

        # Memos.
        self._passes_memo: dict[tuple[int, Type], bool] = {}
        self._container_memo: dict[str, bool] = {}

        self._processed: set[tuple[str, AbstractObject | None]] = set()
        self._instances: dict[str, set[AbstractObject | None]] = defaultdict(set)
        self.call_graph = CallGraph()

    # ------------------------------------------------------------------
    # Interning and union-find
    # ------------------------------------------------------------------

    def _find(self, i: int) -> int:
        rep = self._rep
        root = i
        while rep[root] != root:
            root = rep[root]
        while rep[i] != root:  # path compression
            rep[i], i = root, rep[i]
        return root

    def _id(self, key: PointerKey) -> int:
        """Intern ``key`` and return its *representative* id."""
        i = self._key_id.get(key)
        if i is None:
            i = len(self._keys)
            self._key_id[key] = i
            self._keys.append(key)
            self._rep.append(i)
            self._pts.append(set())
            self._pending.append(set())
            self._copy_out.append(set())
            self._filtered_out.append(set())
            self._load_deps.append({})
            self._store_deps.append({})
            self._dispatch_deps.append({})
            self._rank.append(self._next_rank)
            self._next_rank += 1
            return i
        return self._find(i)

    def _oid(self, obj: AbstractObject) -> int:
        o = self._obj_id.get(obj)
        if o is None:
            o = len(self._objs)
            self._obj_id[obj] = o
            self._objs.append(obj)
        return o

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def solve(self) -> PointsToResult:
        if self.warm_pts:
            # Warm start (incremental re-solve, see repro.incremental):
            # pre-seed with a translated *prior* least fixpoint whose
            # constraint system is a subset of this program's.  The
            # seeds are final for the old system, so nothing is queued
            # as a delta — old edges would propagate no news — while
            # constraint generation below reads the full sets (field
            # load/store expansion and dispatch resolution walk
            # ``self._pts`` directly) and any genuinely new object
            # still cascades through ``_add_oids`` as usual.  With the
            # subset premise the solve converges to exactly the least
            # fixpoint a cold solve reaches.
            for key, objects in self.warm_pts.items():
                k = self._id(key)
                self._pts[k] |= {self._oid(obj) for obj in objects}
        for root in self.program.entry_points():
            self._ensure_instance(root, None)
            function = self.program.functions[root]
            if function.method_name == "main" and function.params:
                args_key = self._id(VarKey(root, function.params[-1], None))
                self._add_oids(args_key, {self._oid(ARGS_ARRAY_OBJECT)})
                self._add_oids(
                    self._id(FieldKey(ARGS_ARRAY_OBJECT, ARRAY_FIELD)),
                    {self._oid(STRING_OBJECT)},
                )
        self._iterate()
        # Expand representatives back out: every interned key reports
        # the merged set of its SCC, sharing one frozenset per rep.
        objs = self._objs
        fs_cache: dict[int, frozenset[AbstractObject]] = {}
        pts_out: dict[PointerKey, frozenset[AbstractObject]] = {}
        for key, i in self._key_id.items():
            r = self._find(i)
            fs = fs_cache.get(r)
            if fs is None:
                fs = frozenset(objs[o] for o in self._pts[r])
                fs_cache[r] = fs
            pts_out[key] = fs
        return PointsToResult(
            pts=pts_out,
            call_graph=self.call_graph,
            instances=dict(self._instances),
            containers=self.containers,
        )

    # ------------------------------------------------------------------
    # Worklist machinery
    # ------------------------------------------------------------------

    def _add_oids(self, k: int, oids: set[int]) -> None:
        """Add object ids to rep ``k``, queueing the delta."""
        pts = self._pts[k]
        new = oids - pts
        if not new:
            return
        pts |= new
        pending = self._pending[k]
        if not pending:
            heappush(self._wl, (self._rank[k], k))
        pending |= new

    def _add_edge(self, src: int, dst: int, filt: Type | None = None) -> None:
        """Subset edge between representative ids (self-loops are no-ops:
        an unfiltered one propagates nothing new and a filtered one only
        ever selects a subset of what is already there)."""
        if src == dst:
            return
        if filt is None:
            out = self._copy_out[src]
            if dst in out:
                return
            out.add(dst)
            self._copy_edges_added += 1
            existing = self._pts[src]
            if existing:
                self._add_oids(dst, existing)
        else:
            out = self._filtered_out[src]
            edge = (dst, filt)
            if edge in out:
                return
            out.add(edge)
            existing = self._pts[src]
            if existing:
                filtered = self._filter_oids(existing, filt)
                if filtered:
                    self._add_oids(dst, filtered)

    def _filter_oids(self, oids, filt: Type) -> set[int]:
        memo = self._passes_memo
        objs = self._objs
        result: set[int] = set()
        for o in oids:
            verdict = memo.get((o, filt))
            if verdict is None:
                verdict = self._passes(objs[o], filt)
                memo[(o, filt)] = verdict
            if verdict:
                result.add(o)
        return result

    def _passes(self, obj: AbstractObject, declared: Type) -> bool:
        if isinstance(declared, ClassType):
            if declared.name == "Object":
                return True
            if declared.name == "String":
                return obj.kind == "string"
            return obj.kind == "object" and self.table.is_subclass(
                obj.class_name, declared.name
            )
        if isinstance(declared, ArrayType):
            return obj.kind == "array"
        return False

    def _iterate(self) -> None:
        wl = self._wl
        find = self._find
        objs = self._objs
        budget = self.budget
        while wl:
            if budget is not None:
                budget.poll()
            if self._copy_edges_added >= self._collapse_threshold:
                self._collapse()
            _, k = heappop(wl)
            k = find(k)
            delta = self._pending[k]
            if not delta:
                continue
            self._pending[k] = set()
            for dst in list(self._copy_out[k]):
                d = find(dst)
                if d != k:
                    self._add_oids(d, delta)
            for dst, filt in list(self._filtered_out[k]):
                d = find(dst)
                if d != k:
                    filtered = self._filter_oids(delta, filt)
                    if filtered:
                        self._add_oids(d, filtered)
            if self._load_deps[k]:
                for field_name, dest in list(self._load_deps[k]):
                    d = find(dest)
                    for o in delta:
                        self._add_edge(self._fid(o, field_name), d)
            if self._store_deps[k]:
                for field_name, src, filt in list(self._store_deps[k]):
                    s = find(src)
                    for o in delta:
                        self._add_edge(s, self._fid(o, field_name), filt)
            if self._dispatch_deps[k]:
                for site in list(self._dispatch_deps[k].values()):
                    for o in delta:
                        self._resolve_call(site, objs[o])

    # ------------------------------------------------------------------
    # Online cycle detection
    # ------------------------------------------------------------------

    def _collapse(self) -> None:
        """Condense SCCs of the copy-edge graph and re-rank the worklist.

        Only unfiltered edges participate: a filtered edge is not a pure
        copy (it may drop objects), so collapsing through one would be
        unsound.  Merging is idempotent downstream — constraint
        generation, call linking, and edge insertion all dedupe — so a
        merged representative may conservatively re-propagate its whole
        set when members disagreed mid-flight.
        """
        self._copy_edges_added = 0
        rep = self._rep
        find = self._find
        # Only nodes with outgoing copy edges can sit on a copy cycle;
        # pure sinks are reached as successors and emitted as singletons.
        nodes = [
            i for i, out in enumerate(self._copy_out) if out and rep[i] == i
        ]

        # Iterative Tarjan over the representative copy graph.
        index: dict[int, int] = {}
        low: dict[int, int] = {}
        on_stack: set[int] = set()
        stack: list[int] = []
        sccs: list[list[int]] = []
        succs: dict[int, list[int]] = {}
        next_index = 0
        for root in nodes:
            if root in index:
                continue
            work = [(root, 0)]
            while work:
                v, pi = work[-1]
                if pi == 0:
                    index[v] = low[v] = next_index
                    next_index += 1
                    stack.append(v)
                    on_stack.add(v)
                    succs[v] = [
                        d
                        for d in {find(t) for t in self._copy_out[v]}
                        if d != v
                    ]
                recursed = False
                succ_list = succs[v]
                while pi < len(succ_list):
                    w = succ_list[pi]
                    pi += 1
                    if w not in index:
                        work[-1] = (v, pi)
                        work.append((w, 0))
                        recursed = True
                        break
                    if w in on_stack and index[w] < low[v]:
                        low[v] = index[w]
                if recursed:
                    continue
                work.pop()
                if work:
                    u = work[-1][0]
                    if low[v] < low[u]:
                        low[u] = low[v]
                if low[v] == index[v]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == v:
                            break
                    sccs.append(scc)

        # Tarjan emits SCCs sinks-first; rank sources first so the
        # worklist drains the condensation in topological order.
        total = len(sccs)
        for position, scc in enumerate(sccs):
            rank = total - position
            if len(scc) == 1:
                self._rank[scc[0]] = rank
                continue
            scc.sort()
            r = scc[0]
            self._rank[r] = rank
            merged = self._pts[r]
            uniform = True
            for m in scc[1:]:
                if self._pts[m] != merged:
                    uniform = False
                    break
            for m in scc[1:]:
                rep[m] = r
                merged |= self._pts[m]
                self._pending[r] |= self._pending[m]
                self._copy_out[r] |= self._copy_out[m]
                self._filtered_out[r] |= self._filtered_out[m]
                self._load_deps[r].update(self._load_deps[m])
                self._store_deps[r].update(self._store_deps[m])
                self._dispatch_deps[r].update(self._dispatch_deps[m])
                # Free member state; all reads go through _find.
                self._pts[m] = set()
                self._pending[m] = set()
                self._copy_out[m] = set()
                self._filtered_out[m] = set()
                self._load_deps[m] = {}
                self._store_deps[m] = {}
                self._dispatch_deps[m] = {}
            if not uniform:
                # Members saw different prefixes of the merged set;
                # re-propagate everything once (consumers dedupe).
                self._pending[r] = set(merged)
            if self._pending[r]:
                # Stale member entries in the heap still resolve here
                # via _find, but a freshly re-pended rep may have none.
                heappush(self._wl, (rank, r))
        self._next_rank = max(self._next_rank, total + 1)
        self._collapse_threshold = max(512, len(self._keys))

    # ------------------------------------------------------------------
    # Constraint generation
    # ------------------------------------------------------------------

    def _ensure_instance(self, fn_name: str, context: AbstractObject | None) -> None:
        if (fn_name, context) in self._processed:
            return
        self._processed.add((fn_name, context))
        self._instances[fn_name].add(context)
        self.call_graph.add_node(MethodInstance(fn_name, context))
        function = self.program.functions.get(fn_name)
        if function is None:
            return
        for instr in function.instructions():
            self._gen_constraints(function, context, instr)
        # Intraprocedural throw -> catch-entry flow, per try region.
        for region in function.try_regions:
            for block_id in region.blocks:
                block = function.blocks.get(block_id)
                if block is None:
                    continue
                for instr in block.instructions:
                    if isinstance(instr, ins.Throw):
                        self._add_edge(
                            self._id(VarKey(fn_name, instr.value, context)),
                            self._id(
                                VarKey(fn_name, region.catch_entry.dest, context)
                            ),
                        )

    def _var(
        self, fn_name: str, var: str, context: AbstractObject | None
    ) -> int:
        t = (fn_name, var, context)
        i = self._var_ids.get(t)
        if i is None:
            i = self._id(VarKey(fn_name, var, context))
            self._var_ids[t] = i
            return i
        return self._find(i)

    def _fid(self, o: int, field: str) -> int:
        """Representative id of ``FieldKey(self._objs[o], field)``."""
        t = (o, field)
        i = self._field_ids.get(t)
        if i is None:
            i = self._id(FieldKey(self._objs[o], field))
            self._field_ids[t] = i
            return i
        return self._find(i)

    def _gen_constraints(
        self,
        function: IRFunction,
        context: AbstractObject | None,
        instr: ins.Instruction,
    ) -> None:
        fn = function.name

        if isinstance(instr, ins.Const):
            if isinstance(instr.value, str):
                self._add_oids(
                    self._var(fn, instr.dest, context), {self._oid(STRING_OBJECT)}
                )
        elif isinstance(instr, ins.Move):
            self._add_edge(
                self._var(fn, instr.src, context), self._var(fn, instr.dest, context)
            )
        elif isinstance(instr, ins.Phi):
            dest = self._var(fn, instr.dest, context)
            for operand in instr.operands.values():
                if not operand.endswith(".undef"):
                    self._add_edge(self._var(fn, operand, context), dest)
        elif isinstance(instr, ins.Cast):
            self._add_edge(
                self._var(fn, instr.src, context),
                self._var(fn, instr.dest, context),
                instr.target_type if instr.target_type.is_reference() else None,
            )
        elif isinstance(instr, ins.BinOp):
            if getattr(instr, "result_is_string", False):
                self._add_oids(
                    self._var(fn, instr.dest, context), {self._oid(STRING_OBJECT)}
                )
        elif isinstance(instr, ins.New):
            obj = make_object(
                instr.uid,
                instr.class_name,
                "object",
                context,
                label=f"{fn}:{instr.position.line}",
                max_depth=self.max_context_depth,
            )
            self._add_oids(self._var(fn, instr.dest, context), {self._oid(obj)})
        elif isinstance(instr, ins.NewArray):
            obj = make_object(
                instr.uid,
                "Array",
                "array",
                context,
                label=f"{fn}:{instr.position.line}",
                max_depth=self.max_context_depth,
            )
            self._add_oids(self._var(fn, instr.dest, context), {self._oid(obj)})
        elif isinstance(instr, ins.FieldLoad):
            base = self._var(fn, instr.base, context)
            dest = self._var(fn, instr.dest, context)
            self._load_deps[base][(instr.field_name, dest)] = None
            for o in list(self._pts[base]):
                self._add_edge(self._fid(o, instr.field_name), dest)
        elif isinstance(instr, ins.FieldStore):
            base = self._var(fn, instr.base, context)
            src = self._var(fn, instr.value, context)
            self._store_deps[base][(instr.field_name, src, None)] = None
            for o in list(self._pts[base]):
                self._add_edge(src, self._fid(o, instr.field_name))
        elif isinstance(instr, ins.ArrayLoad):
            base = self._var(fn, instr.base, context)
            dest = self._var(fn, instr.dest, context)
            self._load_deps[base][(ARRAY_FIELD, dest)] = None
            for o in list(self._pts[base]):
                self._add_edge(self._fid(o, ARRAY_FIELD), dest)
        elif isinstance(instr, ins.ArrayStore):
            base = self._var(fn, instr.base, context)
            src = self._var(fn, instr.value, context)
            self._store_deps[base][(ARRAY_FIELD, src, None)] = None
            for o in list(self._pts[base]):
                self._add_edge(src, self._fid(o, ARRAY_FIELD))
        elif isinstance(instr, ins.StaticLoad):
            self._add_edge(
                self._id(StaticKey(instr.class_name, instr.field_name)),
                self._var(fn, instr.dest, context),
            )
        elif isinstance(instr, ins.StaticStore):
            self._add_edge(
                self._var(fn, instr.value, context),
                self._id(StaticKey(instr.class_name, instr.field_name)),
            )
        elif isinstance(instr, ins.Return):
            if instr.value is not None:
                self._add_edge(
                    self._var(fn, instr.value, context),
                    self._id(RetKey(fn, context)),
                )
        elif isinstance(instr, ins.Call):
            self._gen_call(function, context, instr)

    def _gen_call(
        self,
        function: IRFunction,
        context: AbstractObject | None,
        instr: ins.Call,
    ) -> None:
        fn = function.name
        if instr.kind == "builtin":
            return
        if instr.kind == "native":
            if instr.dest is not None and instr.method_name in _STRING_RETURNING_NATIVES:
                self._add_oids(
                    self._var(fn, instr.dest, context), {self._oid(STRING_OBJECT)}
                )
            return
        if instr.kind == "static":
            callee = f"{instr.owner}.{instr.method_name}"
            self._link_call(fn, context, instr, callee, None, receiver_obj=None)
            return
        # virtual / special: resolution depends on receiver objects.
        assert instr.receiver is not None
        site = _CallSite(instr, fn, context)
        receiver_key = self._var(fn, instr.receiver, context)
        self._dispatch_deps[receiver_key][(instr.uid, fn, context)] = site
        objs = self._objs
        for o in list(self._pts[receiver_key]):
            self._resolve_call(site, objs[o])

    def _resolve_call(self, site: _CallSite, obj: AbstractObject) -> None:
        instr = site.instr
        if obj.kind != "object":
            return  # strings/arrays have no analyzable methods
        if instr.kind == "special":
            callee = f"{instr.owner}.{instr.method_name}"
        else:
            found = self.table.lookup_method(obj.class_name, instr.method_name)
            if found is None:
                return
            owner, _ = found
            callee = f"{owner}.{instr.method_name}"
        if callee not in self.program.functions:
            return
        callee_context = obj if self._is_container_object(obj) else None
        self._link_call(
            site.caller, site.context, instr, callee, callee_context, receiver_obj=obj
        )

    def _is_container_object(self, obj: AbstractObject) -> bool:
        if not self.containers or obj.kind != "object":
            return False
        memo = self._container_memo
        verdict = memo.get(obj.class_name)
        if verdict is None:
            verdict = any(
                ancestor in self.containers
                for ancestor in self.table.ancestors(obj.class_name)
            )
            memo[obj.class_name] = verdict
        return verdict

    def _link_call(
        self,
        caller: str,
        caller_context: AbstractObject | None,
        instr: ins.Call,
        callee: str,
        callee_context: AbstractObject | None,
        receiver_obj: AbstractObject | None,
    ) -> None:
        self._ensure_instance(callee, callee_context)
        callee_fn = self.program.functions.get(callee)
        if callee_fn is None:
            return
        self.call_graph.add_edge(
            MethodInstance(caller, caller_context),
            instr.uid,
            MethodInstance(callee, callee_context),
        )
        formals = list(callee_fn.params)
        formal_types = list(callee_fn.param_types)
        if not callee_fn.is_static:
            this_formal = formals.pop(0)
            formal_types.pop(0)
            this_key = self._var(callee, this_formal, callee_context)
            if receiver_obj is not None:
                self._add_oids(this_key, {self._oid(receiver_obj)})
            elif instr.receiver is not None:
                self._add_edge(
                    self._var(caller, instr.receiver, caller_context), this_key
                )
        for actual, formal, formal_type in zip(instr.args, formals, formal_types):
            self._add_edge(
                self._var(caller, actual, caller_context),
                self._var(callee, formal, callee_context),
                formal_type if formal_type.is_reference() else None,
            )
        if instr.dest is not None:
            self._add_edge(
                self._id(RetKey(callee, callee_context)),
                self._var(caller, instr.dest, caller_context),
            )


def solve_points_to(
    program: IRProgram,
    containers: frozenset[str] | None = DEFAULT_CONTAINER_CLASSES,
    max_context_depth: int = 2,
    budget: Budget | None = None,
    warm_pts: dict | None = None,
) -> PointsToResult:
    """Run the analysis with the given container-cloning configuration.

    ``budget`` (a :class:`repro.budget.Budget`) is polled at the
    worklist head, so a cancelled request abandons the solve within
    milliseconds by raising :class:`~repro.budget.BudgetExceeded`.

    ``warm_pts`` pre-seeds the solver with a translated prior solution
    (incremental warm edits — the caller guarantees the prior
    constraint system is a subset of this one's).
    """
    return PointsToAnalysis(
        program, containers, max_context_depth, budget, warm_pts=warm_pts
    ).solve()
