"""Abstract heap model shared by points-to, mod-ref, and the SDG.

Objects are abstracted by allocation site, optionally qualified by a
receiver-object *context* — the object-sensitive cloning of Milanova et
al. that the paper applies to "key collections classes".  Contexts nest
(a Vector allocated inside a HashMap method is distinguished per map) up
to a configurable depth.

Heap locations are ``(abstract object, field)`` pairs; arrays use the
pseudo-field ``[]`` (array smashing); static fields are their own key.
"""

from __future__ import annotations

from dataclasses import dataclass

ARRAY_FIELD = "[]"

# Singleton abstract objects (created below, after the class definition).
STRING_SITE = -1
ARGS_ARRAY_SITE = -2

# History: these hash tuples used to route ``None`` fields through a
# ``_NIL = ()`` stand-in, because ``hash(None)`` is address-derived on
# Python < 3.12 and ASLR re-randomizes it per process even under
# ``PYTHONHASHSEED=0`` — set/frozenset iteration order (and therefore
# pickled artifact bytes) differed between worker processes, and the
# serialize-once pickle store needed byte-stable blobs.  The flat
# artifact format (repro.artifact) sorts edges at encode time, so its
# canonical bytes no longer depend on hash-driven iteration order and
# the substitution is retired; tests/test_artifact.py documents the
# history and asserts the canonical-bytes guarantee that replaced it.


class _CachedHash:
    """Mixin: lazily computed, cached ``__hash__`` for frozen dataclasses.

    Pointer keys and abstract objects are hashed millions of times per
    analysis (worklists, points-to dicts, SDG edge dedup), and context
    chains make the generated dataclass hash recursive.  The cache is
    dropped on pickle — a stored hash from another process would be
    stale under ``PYTHONHASHSEED`` randomization.
    """

    __hash_fields__: tuple[str, ...] = ()

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            value = hash(
                tuple(getattr(self, name) for name in self.__hash_fields__)
            )
            object.__setattr__(self, "_hash", value)
            return value

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)


@dataclass(frozen=True)
class AbstractObject(_CachedHash):
    """An allocation site, possibly cloned by receiver context."""

    site: int  # instruction uid of the New/NewArray, or a special site
    class_name: str  # runtime class, or 'Array'/'String'
    kind: str  # 'object' | 'array' | 'string'
    context: "AbstractObject | None" = None
    label: str = ""  # human-readable site description

    __hash_fields__ = ("site", "class_name", "kind", "context", "label")
    # Must be assigned in the class body: @dataclass(frozen=True) would
    # otherwise shadow the inherited cached hash with a generated one.
    def __hash__(self) -> int:  # specialized _CachedHash: no getattr loop
        try:
            return self._hash
        except AttributeError:
            value = hash(
                (self.site, self.class_name, self.kind, self.context, self.label)
            )
            object.__setattr__(self, "_hash", value)
            return value

    def depth(self) -> int:
        depth = 0
        cursor = self.context
        while cursor is not None:
            depth += 1
            cursor = cursor.context
        return depth

    def base(self) -> "AbstractObject":
        """The same site with its context stripped."""
        if self.context is None:
            return self
        return AbstractObject(self.site, self.class_name, self.kind, None, self.label)

    def __str__(self) -> str:
        ctx = f" in {self.context}" if self.context is not None else ""
        where = self.label or f"site{self.site}"
        return f"<{self.class_name}@{where}{ctx}>"


STRING_OBJECT = AbstractObject(STRING_SITE, "String", "string", None, "strings")
ARGS_ARRAY_OBJECT = AbstractObject(
    ARGS_ARRAY_SITE, "Array", "array", None, "main-args"
)


def make_object(
    site: int,
    class_name: str,
    kind: str,
    context: AbstractObject | None,
    label: str = "",
    max_depth: int = 2,
) -> AbstractObject:
    """Create an abstract object, truncating over-deep context chains."""
    if context is not None and context.depth() >= max_depth - 1:
        context = _truncate(context, max_depth - 1)
    return AbstractObject(site, class_name, kind, context, label)


def _truncate(obj: AbstractObject, levels: int) -> AbstractObject | None:
    """Keep at most ``levels`` levels of context on ``obj``."""
    if levels <= 0:
        return None
    if obj.context is None:
        return obj
    return AbstractObject(
        obj.site,
        obj.class_name,
        obj.kind,
        _truncate(obj.context, levels - 1),
        obj.label,
    )


# ---------------------------------------------------------------------------
# Pointer keys: the nodes of the constraint graph
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VarKey(_CachedHash):
    """An SSA variable in a (possibly context-cloned) function instance."""

    function: str
    var: str
    context: AbstractObject | None = None

    __hash_fields__ = ("function", "var", "context")
    def __hash__(self) -> int:  # specialized _CachedHash: no getattr loop
        try:
            return self._hash
        except AttributeError:
            value = hash((self.function, self.var, self.context))
            object.__setattr__(self, "_hash", value)
            return value

    def __str__(self) -> str:
        ctx = f"@{self.context}" if self.context is not None else ""
        return f"{self.function}{ctx}::{self.var}"


@dataclass(frozen=True)
class FieldKey(_CachedHash):
    """An instance field (or ``[]`` element slot) of an abstract object."""

    obj: AbstractObject
    field: str

    __hash_fields__ = ("obj", "field")
    def __hash__(self) -> int:  # specialized _CachedHash: no getattr loop
        try:
            return self._hash
        except AttributeError:
            value = hash((self.obj, self.field))
            object.__setattr__(self, "_hash", value)
            return value

    def __str__(self) -> str:
        return f"{self.obj}.{self.field}"


@dataclass(frozen=True)
class StaticKey(_CachedHash):
    class_name: str
    field: str

    __hash_fields__ = ("class_name", "field")
    def __hash__(self) -> int:  # specialized _CachedHash: no getattr loop
        try:
            return self._hash
        except AttributeError:
            value = hash((self.class_name, self.field))
            object.__setattr__(self, "_hash", value)
            return value

    def __str__(self) -> str:
        return f"{self.class_name}.{self.field}"


@dataclass(frozen=True)
class RetKey(_CachedHash):
    """The return value of a function instance."""

    function: str
    context: AbstractObject | None = None

    __hash_fields__ = ("function", "context")
    def __hash__(self) -> int:  # specialized _CachedHash: no getattr loop
        try:
            return self._hash
        except AttributeError:
            value = hash((self.function, self.context))
            object.__setattr__(self, "_hash", value)
            return value

    def __str__(self) -> str:
        ctx = f"@{self.context}" if self.context is not None else ""
        return f"ret({self.function}{ctx})"


PointerKey = object  # VarKey | FieldKey | StaticKey | RetKey
