"""Reference Andersen solver — the pre-optimization implementation.

This module preserves the original straightforward worklist solver
verbatim.  The optimized solver in :mod:`repro.analysis.pointsto`
(online cycle collapsing, interned keys, topological worklist) must
produce *identical* results; ``tests/test_differential.py`` checks the
two against each other on every suite program, and
``benchmarks/bench_pointsto.py`` uses this one as the timing baseline.

Keep this file boring: no performance work here, ever.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

from repro.analysis.heapmodel import (
    ARGS_ARRAY_OBJECT,
    ARRAY_FIELD,
    AbstractObject,
    FieldKey,
    PointerKey,
    RetKey,
    STRING_OBJECT,
    StaticKey,
    VarKey,
    make_object,
)
from repro.analysis.callgraph import CallGraph, MethodInstance
from repro.analysis.pointsto import (
    DEFAULT_CONTAINER_CLASSES,
    PointsToResult,
    _STRING_RETURNING_NATIVES,
)
from repro.ir import instructions as ins
from repro.ir.cfg import IRFunction, IRProgram
from repro.lang.types import ArrayType, ClassType, Type


@dataclass
class _CallSite:
    """A call awaiting receiver objects for resolution."""

    instr: ins.Call
    caller: str
    context: AbstractObject | None


class ReferencePointsToAnalysis:
    """One-shot constraint generation + naive worklist solver."""

    def __init__(
        self,
        program: IRProgram,
        containers: frozenset[str] | None = DEFAULT_CONTAINER_CLASSES,
        max_context_depth: int = 2,
    ) -> None:
        self.program = program
        self.table = program.table
        self.containers = frozenset(containers or ())
        self.max_context_depth = max_context_depth

        self._pts: dict[PointerKey, set[AbstractObject]] = defaultdict(set)
        self._edges: dict[PointerKey, set[tuple[PointerKey, Type | None]]] = (
            defaultdict(set)
        )
        self._pending: dict[PointerKey, set[AbstractObject]] = defaultdict(set)
        self._worklist: deque[PointerKey] = deque()
        self._load_deps: dict[PointerKey, list[tuple[str, PointerKey]]] = defaultdict(
            list
        )
        self._store_deps: dict[PointerKey, list[tuple[str, PointerKey, Type | None]]] = (
            defaultdict(list)
        )
        self._dispatch_deps: dict[PointerKey, list[_CallSite]] = defaultdict(list)
        self._processed: set[tuple[str, AbstractObject | None]] = set()
        self._instances: dict[str, set[AbstractObject | None]] = defaultdict(set)
        self.call_graph = CallGraph()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def solve(self) -> PointsToResult:
        for root in self.program.entry_points():
            self._ensure_instance(root, None)
            function = self.program.functions[root]
            if function.method_name == "main" and function.params:
                args_key = VarKey(root, function.params[-1], None)
                self._add_objects(args_key, {ARGS_ARRAY_OBJECT})
                self._add_objects(
                    FieldKey(ARGS_ARRAY_OBJECT, ARRAY_FIELD), {STRING_OBJECT}
                )
        self._iterate()
        return PointsToResult(
            pts={k: frozenset(v) for k, v in self._pts.items()},
            call_graph=self.call_graph,
            instances=dict(self._instances),
            containers=self.containers,
        )

    # ------------------------------------------------------------------
    # Worklist machinery
    # ------------------------------------------------------------------

    def _add_objects(self, key: PointerKey, objs) -> None:
        new = set(objs) - self._pts[key]
        if not new:
            return
        self._pts[key] |= new
        if key not in self._pending or not self._pending[key]:
            self._worklist.append(key)
        self._pending[key] |= new

    def _add_edge(
        self, src: PointerKey, dst: PointerKey, filter_type: Type | None = None
    ) -> None:
        edge = (dst, filter_type)
        if edge in self._edges[src]:
            return
        self._edges[src].add(edge)
        existing = self._pts.get(src)
        if existing:
            self._add_objects(dst, self._filter(existing, filter_type))

    def _filter(self, objs, filter_type: Type | None):
        if filter_type is None:
            return objs
        return {o for o in objs if self._passes(o, filter_type)}

    def _passes(self, obj: AbstractObject, declared: Type) -> bool:
        if isinstance(declared, ClassType):
            if declared.name == "Object":
                return True
            if declared.name == "String":
                return obj.kind == "string"
            return obj.kind == "object" and self.table.is_subclass(
                obj.class_name, declared.name
            )
        if isinstance(declared, ArrayType):
            return obj.kind == "array"
        return False

    def _iterate(self) -> None:
        while self._worklist:
            key = self._worklist.popleft()
            delta = self._pending.get(key)
            if not delta:
                continue
            self._pending[key] = set()
            for dst, filter_type in list(self._edges[key]):
                self._add_objects(dst, self._filter(delta, filter_type))
            for field_name, dest in list(self._load_deps.get(key, ())):
                for obj in delta:
                    self._add_edge(FieldKey(obj, field_name), dest)
            for field_name, src, filt in list(self._store_deps.get(key, ())):
                for obj in delta:
                    self._add_edge(src, FieldKey(obj, field_name), filt)
            for site in list(self._dispatch_deps.get(key, ())):
                for obj in delta:
                    self._resolve_call(site, obj)

    # ------------------------------------------------------------------
    # Constraint generation
    # ------------------------------------------------------------------

    def _ensure_instance(self, fn_name: str, context: AbstractObject | None) -> None:
        if (fn_name, context) in self._processed:
            return
        self._processed.add((fn_name, context))
        self._instances[fn_name].add(context)
        self.call_graph.add_node(MethodInstance(fn_name, context))
        function = self.program.functions.get(fn_name)
        if function is None:
            return
        for instr in function.instructions():
            self._gen_constraints(function, context, instr)
        # Intraprocedural throw -> catch-entry flow, per try region.
        for region in function.try_regions:
            for block_id in region.blocks:
                block = function.blocks.get(block_id)
                if block is None:
                    continue
                for instr in block.instructions:
                    if isinstance(instr, ins.Throw):
                        self._add_edge(
                            VarKey(fn_name, instr.value, context),
                            VarKey(fn_name, region.catch_entry.dest, context),
                        )

    def _var(
        self, fn_name: str, var: str, context: AbstractObject | None
    ) -> VarKey:
        return VarKey(fn_name, var, context)

    def _gen_constraints(
        self,
        function: IRFunction,
        context: AbstractObject | None,
        instr: ins.Instruction,
    ) -> None:
        fn = function.name

        if isinstance(instr, ins.Const):
            if isinstance(instr.value, str):
                self._add_objects(self._var(fn, instr.dest, context), {STRING_OBJECT})
        elif isinstance(instr, ins.Move):
            self._add_edge(
                self._var(fn, instr.src, context), self._var(fn, instr.dest, context)
            )
        elif isinstance(instr, ins.Phi):
            dest = self._var(fn, instr.dest, context)
            for operand in instr.operands.values():
                if not operand.endswith(".undef"):
                    self._add_edge(self._var(fn, operand, context), dest)
        elif isinstance(instr, ins.Cast):
            self._add_edge(
                self._var(fn, instr.src, context),
                self._var(fn, instr.dest, context),
                instr.target_type if instr.target_type.is_reference() else None,
            )
        elif isinstance(instr, ins.BinOp):
            if getattr(instr, "result_is_string", False):
                self._add_objects(self._var(fn, instr.dest, context), {STRING_OBJECT})
        elif isinstance(instr, ins.New):
            obj = make_object(
                instr.uid,
                instr.class_name,
                "object",
                context,
                label=f"{fn}:{instr.position.line}",
                max_depth=self.max_context_depth,
            )
            self._add_objects(self._var(fn, instr.dest, context), {obj})
        elif isinstance(instr, ins.NewArray):
            obj = make_object(
                instr.uid,
                "Array",
                "array",
                context,
                label=f"{fn}:{instr.position.line}",
                max_depth=self.max_context_depth,
            )
            self._add_objects(self._var(fn, instr.dest, context), {obj})
        elif isinstance(instr, ins.FieldLoad):
            base = self._var(fn, instr.base, context)
            dest = self._var(fn, instr.dest, context)
            self._load_deps[base].append((instr.field_name, dest))
            for obj in set(self._pts.get(base, ())):
                self._add_edge(FieldKey(obj, instr.field_name), dest)
        elif isinstance(instr, ins.FieldStore):
            base = self._var(fn, instr.base, context)
            src = self._var(fn, instr.value, context)
            self._store_deps[base].append((instr.field_name, src, None))
            for obj in set(self._pts.get(base, ())):
                self._add_edge(src, FieldKey(obj, instr.field_name))
        elif isinstance(instr, ins.ArrayLoad):
            base = self._var(fn, instr.base, context)
            dest = self._var(fn, instr.dest, context)
            self._load_deps[base].append((ARRAY_FIELD, dest))
            for obj in set(self._pts.get(base, ())):
                self._add_edge(FieldKey(obj, ARRAY_FIELD), dest)
        elif isinstance(instr, ins.ArrayStore):
            base = self._var(fn, instr.base, context)
            src = self._var(fn, instr.value, context)
            self._store_deps[base].append((ARRAY_FIELD, src, None))
            for obj in set(self._pts.get(base, ())):
                self._add_edge(src, FieldKey(obj, ARRAY_FIELD))
        elif isinstance(instr, ins.StaticLoad):
            self._add_edge(
                StaticKey(instr.class_name, instr.field_name),
                self._var(fn, instr.dest, context),
            )
        elif isinstance(instr, ins.StaticStore):
            self._add_edge(
                self._var(fn, instr.value, context),
                StaticKey(instr.class_name, instr.field_name),
            )
        elif isinstance(instr, ins.Return):
            if instr.value is not None:
                self._add_edge(
                    self._var(fn, instr.value, context), RetKey(fn, context)
                )
        elif isinstance(instr, ins.Call):
            self._gen_call(function, context, instr)

    def _gen_call(
        self,
        function: IRFunction,
        context: AbstractObject | None,
        instr: ins.Call,
    ) -> None:
        fn = function.name
        if instr.kind == "builtin":
            return
        if instr.kind == "native":
            if instr.dest is not None and instr.method_name in _STRING_RETURNING_NATIVES:
                self._add_objects(self._var(fn, instr.dest, context), {STRING_OBJECT})
            return
        if instr.kind == "static":
            callee = f"{instr.owner}.{instr.method_name}"
            self._link_call(fn, context, instr, callee, None, receiver_obj=None)
            return
        # virtual / special: resolution depends on receiver objects.
        assert instr.receiver is not None
        site = _CallSite(instr, fn, context)
        receiver_key = self._var(fn, instr.receiver, context)
        self._dispatch_deps[receiver_key].append(site)
        for obj in set(self._pts.get(receiver_key, ())):
            self._resolve_call(site, obj)

    def _resolve_call(self, site: _CallSite, obj: AbstractObject) -> None:
        instr = site.instr
        if obj.kind != "object":
            return  # strings/arrays have no analyzable methods
        if instr.kind == "special":
            callee = f"{instr.owner}.{instr.method_name}"
        else:
            found = self.table.lookup_method(obj.class_name, instr.method_name)
            if found is None:
                return
            owner, _ = found
            callee = f"{owner}.{instr.method_name}"
        if callee not in self.program.functions:
            return
        callee_context = obj if self._is_container_object(obj) else None
        self._link_call(
            site.caller, site.context, instr, callee, callee_context, receiver_obj=obj
        )

    def _is_container_object(self, obj: AbstractObject) -> bool:
        if not self.containers or obj.kind != "object":
            return False
        return any(
            ancestor in self.containers
            for ancestor in self.table.ancestors(obj.class_name)
        )

    def _link_call(
        self,
        caller: str,
        caller_context: AbstractObject | None,
        instr: ins.Call,
        callee: str,
        callee_context: AbstractObject | None,
        receiver_obj: AbstractObject | None,
    ) -> None:
        self._ensure_instance(callee, callee_context)
        callee_fn = self.program.functions.get(callee)
        if callee_fn is None:
            return
        self.call_graph.add_edge(
            MethodInstance(caller, caller_context),
            instr.uid,
            MethodInstance(callee, callee_context),
        )
        formals = list(callee_fn.params)
        formal_types = list(callee_fn.param_types)
        if not callee_fn.is_static:
            this_formal = formals.pop(0)
            formal_types.pop(0)
            this_key = self._var(callee, this_formal, callee_context)
            if receiver_obj is not None:
                self._add_objects(this_key, {receiver_obj})
            elif instr.receiver is not None:
                self._add_edge(
                    self._var(caller, instr.receiver, caller_context), this_key
                )
        for actual, formal, formal_type in zip(instr.args, formals, formal_types):
            self._add_edge(
                self._var(caller, actual, caller_context),
                self._var(callee, formal, callee_context),
                formal_type if formal_type.is_reference() else None,
            )
        if instr.dest is not None:
            self._add_edge(
                RetKey(callee, callee_context),
                self._var(caller, instr.dest, caller_context),
            )


def solve_points_to_reference(
    program: IRProgram,
    containers: frozenset[str] | None = DEFAULT_CONTAINER_CLASSES,
    max_context_depth: int = 2,
) -> PointsToResult:
    """Run the reference (unoptimized) analysis."""
    return ReferencePointsToAnalysis(program, containers, max_context_depth).solve()
