"""Tracing interpreter: exact dynamic dependences for dynamic slicing.

A second AST interpreter (same semantics as :mod:`repro.interp`, cross-
checked by tests) in which every value is *tagged* with the event that
produced it.  Heap cells store tagged values, so a load's producer is
exactly the store that wrote the cell — no points-to approximation.
Branch decisions form a dynamic control context; dereferenced pointers
become base parents.  The result is the dynamic counterpart of the
paper's dependence taxonomy, enabling dynamic thin slices (§7 relates
them to Zhang et al.'s dynamic slicing line of work).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.dynamic.events import Event, EventFactory, TraceBudgetExceeded
from repro.interp.natives import NativeFault, call_native
from repro.interp.values import FuelExhausted, stringify, values_equal
from repro.lang import ast
from repro.lang.symbols import ClassTable
from repro.lang.types import ArrayType, BOOLEAN, ClassType, INT, Type

_MAX_FRAMES = 900


@dataclass
class TV:
    """A tagged value: the raw value plus its producing event."""

    value: object
    event: Event


class TracedObject:
    """Heap object whose fields hold tagged values."""

    __slots__ = ("class_name", "fields")

    def __init__(self, class_name: str, fields: dict[str, TV]) -> None:
        self.class_name = class_name
        self.fields = fields

    def __repr__(self) -> str:
        return f"{self.class_name}@traced"


class TracedArray:
    """Array of tagged values, plus the event that produced its length."""

    __slots__ = ("elements", "length_event")

    def __init__(self, elements: list[TV], length_event: Event) -> None:
        self.elements = elements
        self.length_event = length_event


class _Signal(Exception):
    pass


class _Break(_Signal):
    pass


class _Continue(_Signal):
    pass


class _Return(_Signal):
    def __init__(self, tv: TV | None) -> None:
        self.tv = tv
        super().__init__()


class _Throw(_Signal):
    def __init__(self, tv: TV) -> None:
        self.tv = tv
        super().__init__()


class _Frame:
    __slots__ = ("this", "scopes")

    def __init__(self, this: TracedObject | None) -> None:
        self.this = this
        self.scopes: list[dict[str, TV]] = [{}]

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, tv: TV) -> None:
        self.scopes[-1][name] = tv

    def get(self, name: str) -> TV:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise KeyError(name)

    def set(self, name: str, tv: TV) -> None:
        for scope in reversed(self.scopes):
            if name in scope:
                scope[name] = tv
                return
        raise KeyError(name)


@dataclass
class DynamicTrace:
    """The result of a traced execution."""

    output: list[str]
    output_events: list[Event]
    error: str | None
    error_class: str | None
    error_event: Event | None
    events_created: int
    timed_out: bool = False
    # Producing events of the thrown exception's fields (the message and
    # any payload): slicing a crash should chase the values the
    # exception *carries*, not just the throw itself.
    error_field_events: tuple[Event, ...] = ()

    @property
    def failed(self) -> bool:
        return self.error is not None or self.timed_out


class TracingInterpreter:
    """Runs a checked program, producing a :class:`DynamicTrace`."""

    def __init__(
        self,
        program: ast.Program,
        table: ClassTable,
        max_steps: int = 2_000_000,
        max_events: int = 2_000_000,
    ) -> None:
        self.program = program
        self.table = table
        self.max_steps = max_steps
        self.factory = EventFactory(max_events)
        self.statics: dict[tuple[str, str], TV] = {}
        self.output: list[str] = []
        self.output_events: list[Event] = []
        self.steps = 0
        self._frame_depth = 0
        self._control: list[Event] = []

    # ------------------------------------------------------------------
    # Event helpers
    # ------------------------------------------------------------------

    def _event(
        self,
        node: ast.Node,
        kind: str,
        parents: tuple[Event, ...] = (),
        bases: tuple[Event, ...] = (),
    ) -> Event:
        control = self._control[-1] if self._control else None
        return self.factory.make(node.position.line, kind, parents, bases, control)

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise FuelExhausted()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run_main(self, args: list[str] | None = None) -> DynamicTrace:
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(200_000)
        try:
            self._run_static_initializers()
            class_name, method = self._find_main()
            seed = self.factory.make(0, "input")
            array = TracedArray(
                [TV(a, self.factory.make(0, "input")) for a in (args or [])],
                seed,
            )
            self._invoke(method, None, [TV(array, seed)])
            return self._finish(None)
        except _Throw as thrown:
            return self._finish(thrown.tv)
        except (FuelExhausted, TraceBudgetExceeded):
            trace = self._finish(None)
            trace.timed_out = True
            return trace
        finally:
            sys.setrecursionlimit(old_limit)

    def _finish(self, thrown: TV | None) -> DynamicTrace:
        error = error_class = None
        error_event = None
        field_events: tuple[Event, ...] = ()
        if thrown is not None:
            obj = thrown.value
            error_class = getattr(obj, "class_name", "Object")
            message = None
            if isinstance(obj, TracedObject):
                field = obj.fields.get("message")
                if field is not None and isinstance(field.value, str):
                    message = field.value
                field_events = tuple(tv.event for tv in obj.fields.values())
            error = f"{error_class}: {message}" if message else error_class
            error_event = thrown.event
        return DynamicTrace(
            output=self.output,
            output_events=self.output_events,
            error=error,
            error_class=error_class,
            error_event=error_event,
            events_created=self.factory.count,
            error_field_events=field_events,
        )

    def _find_main(self) -> tuple[str, ast.MethodDecl]:
        for decl in self.program.classes:
            method = self.table.info(decl.name).methods.get("main")
            if method is not None and method.is_static:
                return decl.name, method
        raise RuntimeError("program has no static main method")

    def _run_static_initializers(self) -> None:
        for decl in self.program.classes:
            for field_decl in decl.fields:
                if field_decl.is_static:
                    event = self.factory.make(field_decl.position.line, "default")
                    self.statics[(decl.name, field_decl.name)] = TV(
                        self._default(field_decl.declared_type), event
                    )
        for decl in self.program.classes:
            frame = _Frame(None)
            for field_decl in decl.fields:
                if field_decl.is_static and field_decl.init is not None:
                    tv = self._expr(field_decl.init, frame)
                    store = self._event(field_decl, "static-store", (tv.event,))
                    self.statics[(decl.name, field_decl.name)] = TV(tv.value, store)

    # ------------------------------------------------------------------
    # Objects and calls
    # ------------------------------------------------------------------

    def _default(self, declared: Type):
        if declared == INT:
            return 0
        if declared == BOOLEAN:
            return False
        return None

    def _construct(self, node: ast.Node, class_name: str, args: list[TV]) -> TV:
        alloc = self._event(node, "new")
        fields: dict[str, TV] = {}
        for ancestor in self.table.ancestors(class_name):
            for name, decl in self.table.info(ancestor).fields.items():
                if not decl.is_static and name not in fields:
                    fields[name] = TV(self._default(decl.declared_type), alloc)
        obj = TracedObject(class_name, fields)
        self._run_constructor(class_name, obj, args)
        return TV(obj, alloc)

    def _run_constructor(
        self, class_name: str, obj: TracedObject, args: list[TV]
    ) -> None:
        if class_name == "Object":
            return
        info = self.table.info(class_name)
        ctor = info.constructor
        superclass = info.superclass or "Object"
        frame = _Frame(obj)
        body: list[ast.Stmt] = []
        explicit_super: ast.SuperCall | None = None
        if ctor is not None:
            for param, arg in zip(ctor.params, args):
                frame.declare(param.name, arg)
            body = list(ctor.body.statements)
            if body and isinstance(body[0], ast.ExprStmt):
                first = body[0].expr
                if isinstance(first, ast.SuperCall):
                    explicit_super = first
                    body = body[1:]
        if explicit_super is not None:
            super_args = []
            for a in explicit_super.args:
                tv = self._expr(a, frame)
                super_args.append(
                    TV(tv.value, self._event(explicit_super, "pass", (tv.event,)))
                )
            self._run_constructor(superclass, obj, super_args)
        else:
            self._run_constructor(superclass, obj, [])
        decl = info.decl
        if decl is not None:
            init_frame = _Frame(obj)
            for field_decl in decl.fields:
                if not field_decl.is_static and field_decl.init is not None:
                    tv = self._expr(field_decl.init, init_frame)
                    store = self._event(field_decl, "store", (tv.event,))
                    obj.fields[field_decl.name] = TV(tv.value, store)
        for stmt in body:
            try:
                self._stmt(stmt, frame)
            except _Return:
                break

    def _invoke(
        self, method: ast.MethodDecl, this: TracedObject | None, args: list[TV]
    ) -> TV | None:
        self._frame_depth += 1
        if self._frame_depth > _MAX_FRAMES:
            self._frame_depth -= 1
            self._throw_builtin(method, "StackOverflowError", "recursion too deep")
        frame = _Frame(this)
        for param, arg in zip(method.params, args):
            frame.declare(param.name, arg)
        try:
            self._stmt(method.body, frame)
        except _Return as signal:
            return signal.tv
        finally:
            self._frame_depth -= 1
        return None

    def _throw_builtin(self, node: ast.Node, exc_class: str, message: str) -> None:
        event = self._event(node, "throw")
        msg = TV(message, event)
        obj = TracedObject(exc_class, {"message": msg})
        raise _Throw(TV(obj, event))

    def _exception_matches(self, value: TracedObject, exc_type: Type) -> bool:
        if not isinstance(exc_type, ClassType):
            return False
        if exc_type.name == "Object":
            return True
        if self.table.has_class(value.class_name):
            return self.table.is_subclass(value.class_name, exc_type.name)
        return value.class_name == exc_type.name

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt, frame: _Frame) -> None:
        self._tick()
        getattr(self, "_stmt_" + type(stmt).__name__)(stmt, frame)

    def _stmt_Block(self, stmt: ast.Block, frame: _Frame) -> None:
        frame.push()
        try:
            for child in stmt.statements:
                self._stmt(child, frame)
        finally:
            frame.pop()

    def _stmt_VarDecl(self, stmt: ast.VarDecl, frame: _Frame) -> None:
        if stmt.init is not None:
            tv = self._expr(stmt.init, frame)
            copied = self._event(stmt, "copy", (tv.event,))
            frame.declare(stmt.name, TV(tv.value, copied))
        else:
            frame.declare(
                stmt.name,
                TV(self._default(stmt.declared_type), self._event(stmt, "default")),
            )

    def _stmt_ExprStmt(self, stmt: ast.ExprStmt, frame: _Frame) -> None:
        self._expr(stmt.expr, frame)

    def _stmt_Assign(self, stmt: ast.Assign, frame: _Frame) -> None:
        tv = self._expr(stmt.value, frame)
        if stmt.op is not None:
            old = self._expr(stmt.target, frame)
            raw = self._binop_raw(stmt.op, old.value, tv.value, stmt)
            tv = TV(raw, self._event(stmt, "binop", (old.event, tv.event)))
        self._write_lvalue(stmt.target, tv, stmt, frame)

    def _stmt_If(self, stmt: ast.If, frame: _Frame) -> None:
        cond = self._expr(stmt.condition, frame)
        branch = self._event(stmt, "branch", (cond.event,))
        self._control.append(branch)
        try:
            if cond.value:
                self._stmt(stmt.then_branch, frame)
            elif stmt.else_branch is not None:
                self._stmt(stmt.else_branch, frame)
        finally:
            self._control.pop()

    def _stmt_While(self, stmt: ast.While, frame: _Frame) -> None:
        while True:
            cond = self._expr(stmt.condition, frame)
            if not cond.value:
                return
            self._tick()
            branch = self._event(stmt, "branch", (cond.event,))
            self._control.append(branch)
            try:
                self._stmt(stmt.body, frame)
            except _Break:
                return
            except _Continue:
                continue
            finally:
                self._control.pop()

    def _stmt_For(self, stmt: ast.For, frame: _Frame) -> None:
        frame.push()
        try:
            if stmt.init is not None:
                self._stmt(stmt.init, frame)
            while True:
                if stmt.condition is not None:
                    cond = self._expr(stmt.condition, frame)
                    if not cond.value:
                        return
                    branch = self._event(stmt, "branch", (cond.event,))
                else:
                    branch = self._event(stmt, "branch")
                self._tick()
                self._control.append(branch)
                try:
                    self._stmt(stmt.body, frame)
                except _Break:
                    return
                except _Continue:
                    pass
                finally:
                    self._control.pop()
                if stmt.update is not None:
                    self._stmt(stmt.update, frame)
        finally:
            frame.pop()

    def _stmt_Return(self, stmt: ast.Return, frame: _Frame) -> None:
        if stmt.value is None:
            raise _Return(None)
        tv = self._expr(stmt.value, frame)
        raise _Return(TV(tv.value, self._event(stmt, "return", (tv.event,))))

    def _stmt_Break(self, stmt, frame) -> None:
        raise _Break()

    def _stmt_Continue(self, stmt, frame) -> None:
        raise _Continue()

    def _stmt_Throw(self, stmt: ast.Throw, frame: _Frame) -> None:
        tv = self._expr(stmt.value, frame)
        if tv.value is None:
            self._throw_builtin(stmt, "NullPointerException", "throw null")
        raise _Throw(TV(tv.value, self._event(stmt, "throw", (tv.event,))))

    def _stmt_TryCatch(self, stmt: ast.TryCatch, frame: _Frame) -> None:
        try:
            self._stmt(stmt.try_block, frame)
        except _Throw as thrown:
            obj = thrown.tv.value
            if not isinstance(obj, TracedObject) or not self._exception_matches(
                obj, stmt.exc_type
            ):
                raise
            frame.push()
            try:
                caught = self._event(stmt, "catch", (thrown.tv.event,))
                frame.declare(stmt.exc_name, TV(obj, caught))
                for child in stmt.catch_block.statements:
                    self._stmt(child, frame)
            finally:
                frame.pop()

    # ------------------------------------------------------------------
    # L-values
    # ------------------------------------------------------------------

    def _write_lvalue(
        self, target: ast.Expr, tv: TV, site: ast.Node, frame: _Frame
    ) -> None:
        if isinstance(target, ast.VarRef):
            kind, owner = target.resolution or ("", "")
            stored = TV(tv.value, self._event(site, "copy", (tv.event,)))
            if kind == "local":
                frame.set(target.name, stored)
                return
            if kind == "field":
                assert frame.this is not None
                frame.this.fields[target.name] = TV(
                    tv.value, self._event(site, "store", (tv.event,))
                )
                return
            if kind == "static_field":
                self.statics[(owner, target.name)] = TV(
                    tv.value, self._event(site, "static-store", (tv.event,))
                )
                return
            raise RuntimeError("bad assignment target")
        if isinstance(target, ast.FieldAccess):
            kind, owner = target.resolution or ("", "")
            if kind == "static_field":
                self.statics[(owner, target.name)] = TV(
                    tv.value, self._event(site, "static-store", (tv.event,))
                )
                return
            base = self._expr(target.target, frame)
            if base.value is None:
                self._throw_builtin(site, "NullPointerException", "store to null")
            store = self._event(site, "store", (tv.event,), (base.event,))
            base.value.fields[target.name] = TV(tv.value, store)
            return
        if isinstance(target, ast.ArrayAccess):
            base = self._expr(target.target, frame)
            index = self._expr(target.index, frame)
            if base.value is None:
                self._throw_builtin(site, "NullPointerException", "null array")
            array = base.value
            assert isinstance(array, TracedArray)
            if not 0 <= index.value < len(array.elements):
                self._throw_builtin(
                    site, "ArrayIndexOutOfBoundsException", f"index {index.value}"
                )
            store = self._event(
                site, "store", (tv.event,), (base.event, index.event)
            )
            array.elements[index.value] = TV(tv.value, store)
            return
        raise RuntimeError("bad assignment target")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _expr(self, expr: ast.Expr, frame: _Frame) -> TV:
        return getattr(self, "_expr_" + type(expr).__name__)(expr, frame)

    def _expr_IntLit(self, expr: ast.IntLit, frame) -> TV:
        return TV(expr.value, self._event(expr, "const"))

    def _expr_BoolLit(self, expr: ast.BoolLit, frame) -> TV:
        return TV(expr.value, self._event(expr, "const"))

    def _expr_StringLit(self, expr: ast.StringLit, frame) -> TV:
        return TV(expr.value, self._event(expr, "const"))

    def _expr_NullLit(self, expr, frame) -> TV:
        return TV(None, self._event(expr, "const"))

    def _expr_This(self, expr, frame: _Frame) -> TV:
        return TV(frame.this, self._event(expr, "this"))

    def _expr_VarRef(self, expr: ast.VarRef, frame: _Frame) -> TV:
        kind, owner = expr.resolution or ("", "")
        if kind == "local":
            return frame.get(expr.name)
        if kind == "field":
            assert frame.this is not None
            stored = frame.this.fields.get(expr.name)
            assert stored is not None
            load = self._event(expr, "load", (stored.event,))
            return TV(stored.value, load)
        if kind == "static_field":
            stored = self.statics[(owner, expr.name)]
            return TV(stored.value, self._event(expr, "load", (stored.event,)))
        raise RuntimeError(f"class name {expr.name} used as value")

    def _expr_FieldAccess(self, expr: ast.FieldAccess, frame: _Frame) -> TV:
        kind, owner = expr.resolution or ("", "")
        if kind == "static_field":
            stored = self.statics[(owner, expr.name)]
            return TV(stored.value, self._event(expr, "load", (stored.event,)))
        base = self._expr(expr.target, frame)
        if kind == "array_length":
            if base.value is None:
                self._throw_builtin(expr, "NullPointerException", "null array")
            array = base.value
            assert isinstance(array, TracedArray)
            load = self._event(
                expr, "load", (array.length_event,), (base.event,)
            )
            return TV(len(array.elements), load)
        if base.value is None:
            self._throw_builtin(
                expr, "NullPointerException", f"read {expr.name} of null"
            )
        stored = base.value.fields.get(expr.name)
        assert stored is not None, expr.name
        load = self._event(expr, "load", (stored.event,), (base.event,))
        return TV(stored.value, load)

    def _expr_ArrayAccess(self, expr: ast.ArrayAccess, frame: _Frame) -> TV:
        base = self._expr(expr.target, frame)
        index = self._expr(expr.index, frame)
        if base.value is None:
            self._throw_builtin(expr, "NullPointerException", "null array")
        array = base.value
        assert isinstance(array, TracedArray)
        if not 0 <= index.value < len(array.elements):
            self._throw_builtin(
                expr, "ArrayIndexOutOfBoundsException", f"index {index.value}"
            )
        stored = array.elements[index.value]
        load = self._event(
            expr, "load", (stored.event,), (base.event, index.event)
        )
        return TV(stored.value, load)

    def _expr_Call(self, expr: ast.Call, frame: _Frame) -> TV:
        self._tick()
        kind, owner = expr.resolution or ("", "")
        if kind == "builtin":
            args = [self._expr(a, frame) for a in expr.args]
            if expr.name == "print":
                event = self._event(expr, "output", (args[0].event,))
                self.output.append(self._stringify(args[0].value))
                self.output_events.append(event)
                return TV(None, event)
            raise RuntimeError(f"unknown builtin {expr.name}")
        if kind == "native":
            assert expr.receiver is not None
            receiver = self._expr(expr.receiver, frame)
            args = [self._expr(a, frame) for a in expr.args]
            if receiver.value is None:
                self._throw_builtin(
                    expr, "NullPointerException", "call on null String"
                )
            try:
                result = call_native(
                    expr.name, receiver.value, [a.value for a in args]
                )
            except NativeFault as fault:
                self._throw_builtin(expr, fault.exc_class, fault.message)
            event = self._event(
                expr, "native", (receiver.event, *(a.event for a in args))
            )
            return TV(result, event)
        if kind == "static":
            args = self._pass_args(expr, [self._expr(a, frame) for a in expr.args])
            found = self.table.lookup_method(owner, expr.name)
            assert found is not None
            return self._call_with_context(expr, found[1], None, args)
        # virtual
        if expr.receiver is not None:
            receiver = self._expr(expr.receiver, frame)
        else:
            receiver = TV(frame.this, self._event(expr, "this"))
        args = self._pass_args(expr, [self._expr(a, frame) for a in expr.args])
        if receiver.value is None:
            self._throw_builtin(
                expr, "NullPointerException", f"call {expr.name}() on null"
            )
        obj = receiver.value
        assert isinstance(obj, TracedObject)
        target_owner, method = self.table.resolve_virtual(obj.class_name, expr.name)
        return self._call_with_context(expr, method, obj, args, receiver.event)

    def _pass_args(self, site: ast.Node, args: list[TV]) -> list[TV]:
        return [
            TV(a.value, self._event(site, "pass", (a.event,))) for a in args
        ]

    def _call_with_context(
        self,
        site: ast.Expr,
        method: ast.MethodDecl,
        this: TracedObject | None,
        args: list[TV],
        receiver_event: Event | None = None,
    ) -> TV:
        bases = (receiver_event,) if receiver_event is not None else ()
        call_event = self._event(site, "call", (), bases)
        self._control.append(call_event)
        try:
            result = self._invoke(method, this, args)
        finally:
            self._control.pop()
        if result is None:
            return TV(None, call_event)
        return TV(result.value, self._event(site, "call-result", (result.event,)))

    def _expr_SuperCall(self, expr, frame):  # consumed by _run_constructor
        raise RuntimeError("super(...) outside constructor prologue")

    def _expr_New(self, expr: ast.New, frame: _Frame) -> TV:
        self._tick()
        args = self._pass_args(expr, [self._expr(a, frame) for a in expr.args])
        return self._construct(expr, expr.class_name, args)

    def _expr_NewArray(self, expr: ast.NewArray, frame: _Frame) -> TV:
        length = self._expr(expr.length, frame)
        if length.value < 0:
            self._throw_builtin(
                expr, "NegativeArraySizeException", str(length.value)
            )
        alloc = self._event(expr, "new-array", (length.event,))
        default = self._default(expr.element_type)
        elements = [TV(default, alloc) for _ in range(length.value)]
        return TV(TracedArray(elements, alloc), alloc)

    def _expr_Binary(self, expr: ast.Binary, frame: _Frame) -> TV:
        op = expr.op
        if op in ("&&", "||"):
            left = self._expr(expr.left, frame)
            if op == "&&" and not left.value:
                return TV(False, self._event(expr, "binop", (left.event,)))
            if op == "||" and left.value:
                return TV(True, self._event(expr, "binop", (left.event,)))
            right = self._expr(expr.right, frame)
            return TV(
                bool(right.value),
                self._event(expr, "binop", (left.event, right.event)),
            )
        left = self._expr(expr.left, frame)
        right = self._expr(expr.right, frame)
        raw = self._binop_raw(op, left.value, right.value, expr)
        return TV(raw, self._event(expr, "binop", (left.event, right.event)))

    def _stringify(self, value) -> str:
        if isinstance(value, TracedObject):
            return f"{value.class_name}@traced"
        if isinstance(value, TracedArray):
            return f"array[{len(value.elements)}]@traced"
        return stringify(value)

    def _binop_raw(self, op: str, left, right, node: ast.Node):
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                return self._stringify(left) + self._stringify(right)
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                self._throw_builtin(node, "ArithmeticException", "/ by zero")
            q = abs(left) // abs(right)
            return q if (left < 0) == (right < 0) else -q
        if op == "%":
            if right == 0:
                self._throw_builtin(node, "ArithmeticException", "% by zero")
            q = abs(left) // abs(right)
            q = q if (left < 0) == (right < 0) else -q
            return left - q * right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "==":
            return values_equal(left, right)
        if op == "!=":
            return not values_equal(left, right)
        raise RuntimeError(f"unknown operator {op}")

    def _expr_Unary(self, expr: ast.Unary, frame: _Frame) -> TV:
        operand = self._expr(expr.operand, frame)
        raw = (not operand.value) if expr.op == "!" else -operand.value
        return TV(raw, self._event(expr, "unop", (operand.event,)))

    def _expr_Cast(self, expr: ast.Cast, frame: _Frame) -> TV:
        tv = self._expr(expr.expr, frame)
        value = tv.value
        target = expr.target_type
        ok = True
        if value is None:
            ok = True
        elif isinstance(target, ClassType):
            if target.name == "Object":
                ok = True
            elif target.name == "String":
                ok = isinstance(value, str)
            elif isinstance(value, TracedObject) and self.table.has_class(
                value.class_name
            ):
                ok = self.table.is_subclass(value.class_name, target.name)
            else:
                ok = False
        elif isinstance(target, ArrayType):
            ok = isinstance(value, TracedArray)
        if not ok:
            self._throw_builtin(expr, "ClassCastException", f"to {target}")
        return TV(value, self._event(expr, "cast", (tv.event,)))

    def _expr_InstanceOf(self, expr: ast.InstanceOf, frame: _Frame) -> TV:
        tv = self._expr(expr.expr, frame)
        value = tv.value
        if value is None:
            result = False
        elif expr.class_name == "Object":
            result = True
        elif expr.class_name == "String":
            result = isinstance(value, str)
        elif isinstance(value, TracedObject) and self.table.has_class(
            value.class_name
        ):
            result = self.table.is_subclass(value.class_name, expr.class_name)
        else:
            result = False
        return TV(result, self._event(expr, "instanceof", (tv.event,)))

    def _expr_PostfixIncDec(self, expr: ast.PostfixIncDec, frame: _Frame) -> TV:
        old = self._expr(expr.target, frame)
        delta = 1 if expr.op == "+" else -1
        one = self._event(expr, "const")
        updated = TV(
            old.value + delta, self._event(expr, "binop", (old.event, one))
        )
        self._write_lvalue(expr.target, updated, expr, frame)
        return old


def trace_program(
    program: ast.Program,
    table: ClassTable,
    args: list[str] | None = None,
    max_steps: int = 2_000_000,
    max_events: int = 2_000_000,
) -> DynamicTrace:
    """Run ``main`` under the tracing interpreter."""
    interpreter = TracingInterpreter(program, table, max_steps, max_events)
    return interpreter.run_main(args)
