"""Dynamic dependence events.

The tracing interpreter (see :mod:`repro.dynamic.tracer`) tags every
runtime value with the :class:`Event` that produced it.  An event
records its *producer* parents (dynamic flow dependences — the dynamic
analog of the paper's producer statements), its *base* parents (the
events that produced dereferenced base pointers / array indices /
dispatch receivers), and its *control* parent (the most recent branch
decision governing it).

A dynamic thin slice is the transitive closure over producer parents; a
dynamic traditional slice additionally follows base and control parents
— mirroring §3's static definitions exactly, but over the execution
instead of the SDG.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_event_ids = itertools.count()


@dataclass(eq=False)
class Event:
    """One dynamic occurrence of a value-producing statement."""

    line: int
    kind: str  # 'const', 'binop', 'load', 'store', 'call', 'branch', ...
    parents: tuple["Event", ...] = ()
    base_parents: tuple["Event", ...] = ()
    control_parent: "Event | None" = None
    uid: int = field(default_factory=lambda: next(_event_ids), init=False)

    def __repr__(self) -> str:
        return f"<{self.kind}@{self.line}#{self.uid}>"


class TraceBudgetExceeded(Exception):
    """The execution produced more events than the configured cap."""


class EventFactory:
    """Creates events, enforcing a budget and tracking totals."""

    def __init__(self, max_events: int = 2_000_000) -> None:
        self.max_events = max_events
        self.count = 0

    def make(
        self,
        line: int,
        kind: str,
        parents: tuple[Event, ...] = (),
        base_parents: tuple[Event, ...] = (),
        control_parent: Event | None = None,
    ) -> Event:
        self.count += 1
        if self.count > self.max_events:
            raise TraceBudgetExceeded(
                f"dynamic trace exceeded {self.max_events} events"
            )
        return Event(line, kind, parents, base_parents, control_parent)


def thin_closure(roots: list[Event]) -> set[Event]:
    """Dynamic thin slice: producer parents only."""
    seen: set[Event] = set()
    stack = list(roots)
    while stack:
        event = stack.pop()
        if event in seen:
            continue
        seen.add(event)
        stack.extend(event.parents)
    return seen


def traditional_closure(roots: list[Event]) -> set[Event]:
    """Dynamic traditional slice: producers + bases + control."""
    seen: set[Event] = set()
    stack = list(roots)
    while stack:
        event = stack.pop()
        if event in seen:
            continue
        seen.add(event)
        stack.extend(event.parents)
        stack.extend(event.base_parents)
        if event.control_parent is not None:
            stack.append(event.control_parent)
    return seen


def lines_of(events: set[Event]) -> set[int]:
    return {e.line for e in events if e.line > 0}
