"""Dynamic thin slicing: exact dependences from traced executions (§7)."""

from repro.dynamic.events import (
    Event,
    EventFactory,
    TraceBudgetExceeded,
    lines_of,
    thin_closure,
    traditional_closure,
)
from repro.dynamic.slicer import (
    DynamicSlice,
    TracedRun,
    dynamic_thin_slice,
    dynamic_traditional_slice,
    failure_seeds,
    trace_and_slice,
)
from repro.dynamic.tracer import DynamicTrace, TracingInterpreter, trace_program

__all__ = [
    "DynamicSlice",
    "DynamicTrace",
    "Event",
    "EventFactory",
    "TraceBudgetExceeded",
    "TracedRun",
    "TracingInterpreter",
    "dynamic_thin_slice",
    "dynamic_traditional_slice",
    "failure_seeds",
    "lines_of",
    "thin_closure",
    "trace_and_slice",
    "trace_program",
    "traditional_closure",
]
