"""Dynamic slicing over traced executions.

Given a :class:`~repro.dynamic.tracer.DynamicTrace`, a dynamic thin
slice follows producer parents from a seed event; a dynamic traditional
slice adds base parents and control parents.  Seeds are usually one of
the recorded output events or the uncaught-exception event — the natural
"failure points" of the SIR protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dynamic.events import Event, lines_of, thin_closure, traditional_closure
from repro.dynamic.tracer import DynamicTrace
from repro.frontend import compile_source
from repro.dynamic.tracer import trace_program


@dataclass
class DynamicSlice:
    """A dynamic slice: events plus the source-line view."""

    seeds: list[Event]
    events: set[Event]

    @property
    def lines(self) -> set[int]:
        return lines_of(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def source_view(self, source_text: str) -> str:
        """Render the sliced lines of ``source_text``, starred."""
        rows = []
        all_lines = source_text.splitlines()
        for lineno in sorted(self.lines):
            if 1 <= lineno <= len(all_lines):
                rows.append(f"*{lineno:5d}  {all_lines[lineno - 1]}")
        return "\n".join(rows)

    def event_counts_by_kind(self) -> dict[str, int]:
        """How many events of each kind the slice contains."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


def dynamic_thin_slice(seeds: list[Event]) -> DynamicSlice:
    return DynamicSlice(seeds, thin_closure(seeds))


def dynamic_traditional_slice(seeds: list[Event]) -> DynamicSlice:
    return DynamicSlice(seeds, traditional_closure(seeds))


def failure_seeds(trace: DynamicTrace) -> list[Event]:
    """The failure point: the uncaught exception (plus the events that
    produced the values it carries — its message names the bad index or
    key, so the user's slice chases those values), else the last output
    event (where a wrong value typically surfaces)."""
    if trace.error_event is not None:
        return [trace.error_event, *trace.error_field_events]
    if trace.output_events:
        return [trace.output_events[-1]]
    return []


@dataclass
class TracedRun:
    """Convenience bundle: trace + both dynamic slices from a seed."""

    trace: DynamicTrace
    thin: DynamicSlice
    traditional: DynamicSlice


def trace_and_slice(
    source: str,
    args: list[str],
    filename: str = "<input>",
    include_stdlib: bool = True,
    seed_output_index: int | None = None,
) -> TracedRun:
    """Compile, trace, and slice from the failure point (or a chosen
    output event by index)."""
    compiled = compile_source(source, filename, include_stdlib=include_stdlib)
    trace = trace_program(compiled.ast, compiled.table, args)
    if seed_output_index is not None:
        seeds = [trace.output_events[seed_output_index]]
    else:
        seeds = failure_seeds(trace)
    return TracedRun(
        trace=trace,
        thin=dynamic_thin_slice(seeds),
        traditional=dynamic_traditional_slice(seeds),
    )
